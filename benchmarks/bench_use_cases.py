"""E8 — §5.5 use cases: RDT-1, IMDB-1 and WDC-4 exploratory search.

Three realistic analytics scenarios:

* **RDT-1** — social network analysis with mandatory + optional edges:
  5 prototypes at k=1; the paper finds 708K matches (24K precise) in the
  14B-edge Reddit graph;
* **IMDB-1** — information mining: 7 prototypes at k=2, 303K matches (78K
  precise);
* **WDC-4 exploratory** — top-down 6-Clique relaxation: no match until
  k=4, where 144 vertices participate; 1,941 prototypes sifted (the
  scaled-down instance plants a k=2-relaxed clique, so the walk stops at
  k=2 after 121 prototypes).
"""

import pytest

from repro.analysis import format_seconds, format_table
from repro.core import exploratory_search, run_pipeline, stopping_distance
from repro.core.patterns import imdb1_template, rdt1_template, wdc4_template
from common import (
    default_options,
    imdb_background,
    print_header,
    reddit_background,
    wdc_background,
)


@pytest.mark.benchmark(group="usecase-rdt1")
def test_usecase_rdt1(benchmark):
    graph = reddit_background()
    template = rdt1_template()

    result = benchmark.pedantic(
        lambda: run_pipeline(
            graph, template, 1, default_options(count_matches=True)
        ),
        rounds=1, iterations=1,
    )

    root = result.prototype_set.at(0)[0]
    precise = result.outcome_for(root.id)
    total = result.total_match_mappings()
    print_header("§5.5 — RDT-1 adversarial poster-commenter (Reddit-like)")
    print(format_table(
        ["prototypes", "total mappings", "precise mappings",
         "matched vertices", "time"],
        [[
            len(result.prototype_set), total, precise.match_mappings,
            len(result.match_vectors),
            format_seconds(result.total_simulated_seconds),
        ]],
    ))
    assert len(result.prototype_set) == 5  # paper: "a total of five prototypes"
    assert precise.match_mappings >= 10    # the planted instances
    assert total > precise.match_mappings  # relaxed matches dominate


@pytest.mark.benchmark(group="usecase-imdb1")
def test_usecase_imdb1(benchmark):
    graph = imdb_background()
    template = imdb1_template()

    result = benchmark.pedantic(
        lambda: run_pipeline(
            graph, template, 2, default_options(count_matches=True)
        ),
        rounds=1, iterations=1,
    )

    root = result.prototype_set.at(0)[0]
    precise = result.outcome_for(root.id)
    total = result.total_match_mappings()
    print_header("§5.5 — IMDB-1 shared-cast mining (IMDb-like)")
    print(format_table(
        ["prototypes", "total mappings", "precise mappings",
         "matched vertices", "time"],
        [[
            len(result.prototype_set), total, precise.match_mappings,
            len(result.match_vectors),
            format_seconds(result.total_simulated_seconds),
        ]],
    ))
    assert len(result.prototype_set) == 7  # paper: "a total of seven"
    assert precise.match_mappings >= 10    # planted x automorphism
    assert total > precise.match_mappings


@pytest.mark.benchmark(group="usecase-exploratory")
def test_usecase_wdc4_exploratory(benchmark):
    graph = wdc_background()
    template = wdc4_template()

    result = benchmark.pedantic(
        lambda: exploratory_search(
            graph, template, max_k=4, options=default_options()
        ),
        rounds=1, iterations=1,
    )

    stop = stopping_distance(result)
    searched = sum(level.num_prototypes for level in result.levels)
    print_header("§5.5 — WDC-4 exploratory search (top-down 6-Clique "
                 "relaxation)")
    rows = [
        [level.distance, level.num_prototypes, level.union_vertices,
         format_seconds(level.search_seconds)]
        for level in result.levels
    ]
    print(format_table(["k", "prototypes", "matched vertices", "time"], rows))
    print(f"\nFirst matches at k={stop}; {searched} prototypes sifted "
          f"(paper: first matches at k=4 after 1,941 prototypes, 144 "
          f"matching vertices)")

    assert stop == 2, "the planted relaxed clique sits at edit-distance 2"
    assert searched == 1 + 15 + 105  # exact prototype counts of a 6-clique
    assert result.levels[-1].union_vertices > 0
    for level in result.levels[:-1]:
        assert level.union_vertices == 0  # nothing matches before the stop
