"""E-B1 — template-library batching: one shared census vs a pipeline loop.

Not a paper figure: this benchmark guards the PR that added the
template-library batch executor (``core/batch.py``).  The workload is a
4-vertex motif census on MOTIF-BATCH — a small single-label core carrying
the actual motif population plus triangle "dust" carrying the vast
majority of the graph's edges that no 4-vertex motif can touch.  Two
ways to run the census:

* *sequential* — ``count_motifs_sequential``: one independent exact
  ``run_pipeline`` per motif (six for size 4), each recompiling the role
  kernel, regenerating prototypes, re-running the ``M*`` traversal and
  re-scanning the dust (the R7-flagged loop shape);
* *batched* — ``count_motifs(..., batched=True)``: family absorption
  folds all six motifs back into one clique-rooted pipeline, the shared
  caches compile everything once, and after the deepest level the run
  drops onto a core-only :meth:`GraphCsr.induced_view` auxiliary view.

Both paths must report **bit-identical** induced and non-induced counts
for every motif — the speedup can never come from counting differently —
and the batched run must report auxiliary-view reuse (pruned-view
prototype searches) in its stats document.  The end-to-end ratio is
tracked as ``speedup_batched_census`` in ``BENCH_HISTORY.jsonl`` by
``compare_bench.py``; the acceptance bar is >=2x on MOTIF-BATCH.

Writes ``BENCH_BATCH.json`` at the repo root.  Run directly
(``python benchmarks/bench_batch.py``) for the full suite, ``--smoke``
for the CI-sized subset, or via pytest-benchmark.
"""

import json
import platform
import sys
import time
from pathlib import Path

import pytest

from repro.analysis import format_table, speedup
from repro.core import PipelineOptions, count_motifs, count_motifs_sequential
from common import (
    DEFAULT_RANKS,
    motif_batch_background,
    print_header,
)

REPEATS = 3
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_BATCH.json"

#: the workload the acceptance bar is pinned to
ACCEPTANCE_WORKLOAD = "MOTIF-BATCH"
#: required end-to-end sequential-over-batched ratio on the acceptance row
SPEEDUP_BAR = 2.0
#: census size (6 connected motifs, the §5.6 four-vertex set)
MOTIF_SIZE = 4


def batch_workloads():
    """(name, graph factory, motif size) rows for this bench."""
    return [
        ("MOTIF-BATCH", motif_batch_background, MOTIF_SIZE),
    ]


def _options():
    return PipelineOptions(num_ranks=DEFAULT_RANKS)


def _census_digest(counts):
    """Order-independent count digest: motif name → (non-induced, induced)."""
    noninduced = counts.by_name(induced=False)
    induced = counts.by_name(induced=True)
    return {name: (noninduced[name], induced[name]) for name in noninduced}


def _batched_once(graph, size):
    start = time.perf_counter()
    counts = count_motifs(graph, size, _options(), batched=True)
    wall = time.perf_counter() - start
    return wall, counts


def _sequential_once(graph, size):
    start = time.perf_counter()
    counts = count_motifs_sequential(graph, size, _options())
    wall = time.perf_counter() - start
    return wall, counts


def run_suite(repeats=REPEATS, workloads=None):
    """Benchmark every workload in both census modes; returns the payload."""
    rows = []
    for name, graph_factory, size in (workloads or batch_workloads()):
        graph = graph_factory()
        timings = {"sequential": [], "batched": []}
        digests = {}
        batch_stats = None
        for _ in range(repeats):
            wall, counts = _sequential_once(graph, size)
            timings["sequential"].append(wall)
            digest = _census_digest(counts)
            assert digests.setdefault("sequential", digest) == digest, (
                f"{name}: sequential counts vary across repeats"
            )
            wall, counts = _batched_once(graph, size)
            timings["batched"].append(wall)
            digest = _census_digest(counts)
            assert digests.setdefault("batched", digest) == digest, (
                f"{name}: batched counts vary across repeats"
            )
            batch_stats = counts.batch.stats_document()
        aux = batch_stats["aux_views"]
        rows.append({
            "name": name,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "motifs": len(digests["batched"]),
            "census": {
                mode: {"wall_seconds": min(walls)}
                for mode, walls in timings.items()
            },
            "speedup_batched_census": speedup(
                min(timings["sequential"]), min(timings["batched"])
            ),
            "counts_equal": digests["sequential"] == digests["batched"],
            "counts": {
                motif: list(pair)
                for motif, pair in sorted(digests["batched"].items())
            },
            "batch": {
                "root_runs": batch_stats["root_runs"],
                "classes": batch_stats["classes"],
                "families": batch_stats["families"],
                "mstar_memo": batch_stats["mstar_memo"],
                "aux_views_built": aux["built"],
                "aux_view_reuse": aux["reuse"],
            },
        })
    return {
        "experiment": "E-B1 template-library batched census benchmark",
        "methodology": {
            "timer": (
                "time.perf_counter around the whole census call "
                "(count_motifs_sequential vs count_motifs(batched=True))"
            ),
            "repeats": repeats,
            "aggregation": "best-of (min wall time per mode)",
            "ranks": DEFAULT_RANKS,
            "motif_size": MOTIF_SIZE,
            "python": platform.python_version(),
            "acceptance": (
                f">={SPEEDUP_BAR:.0f}x end-to-end speedup for the "
                f"{MOTIF_SIZE}-vertex motif census on "
                f"{ACCEPTANCE_WORKLOAD} vs the sequential per-template "
                "loop; bit-identical induced and non-induced counts; "
                "auxiliary-view reuse > 0 in the batch stats document"
            ),
        },
        "workloads": rows,
    }


def check_acceptance(payload):
    """Assert counts parity, view reuse and the speedup bar."""
    for row in payload["workloads"]:
        assert row["counts_equal"], (
            f"{row['name']}: batched census counts diverge from sequential"
        )
    target = next(
        r for r in payload["workloads"] if r["name"] == ACCEPTANCE_WORKLOAD
    )
    assert target["batch"]["aux_view_reuse"] > 0, (
        f"{target['name']}: no prototype search started on an auxiliary "
        "view (aux_view_reuse == 0)"
    )
    assert target["speedup_batched_census"] >= SPEEDUP_BAR, (
        f"{target['name']}: batched census speedup "
        f"{target['speedup_batched_census']:.2f}x < {SPEEDUP_BAR:.0f}x"
    )
    return target


def report(payload):
    rows = []
    for row in payload["workloads"]:
        census = row["census"]
        batch = row["batch"]
        rows.append([
            row["name"] + (" *" if row["name"] == ACCEPTANCE_WORKLOAD else ""),
            f"{row['vertices']}/{row['edges']}",
            row["motifs"],
            f"{census['sequential']['wall_seconds']:.2f}s",
            f"{census['batched']['wall_seconds']:.2f}s",
            f"{row['speedup_batched_census']:.2f}x",
            f"{batch['root_runs']}/{batch['classes']}",
            batch["aux_view_reuse"],
            "yes" if row["counts_equal"] else "NO",
        ])
    print(format_table(
        ["workload", "V/E", "motifs", "sequential", "batched", "speedup",
         "runs/classes", "view reuse", "same counts"],
        rows,
    ))
    print(f"* acceptance workload (>={SPEEDUP_BAR:.0f}x batched census)")


@pytest.mark.benchmark(group="batch")
def test_batched_census_speedup(benchmark):
    print_header("E-B1 — batched motif census vs per-template pipeline loop")
    payload = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    report(payload)
    target = check_acceptance(payload)
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    assert target["speedup_batched_census"] >= SPEEDUP_BAR


def smoke_suite():
    """The CI-sized subset: the acceptance workload at fewer repeats."""
    return run_suite(repeats=2)


def main(argv):
    smoke = "--smoke" in argv
    if smoke:
        payload = smoke_suite()
        report(payload)
        check_acceptance(payload)
        print("smoke OK")
        return 0
    payload = run_suite()
    report(payload)
    check_acceptance(payload)
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
