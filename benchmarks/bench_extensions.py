"""E14 — extensions ablation (beyond the paper's measured experiments).

The paper sketches several "small update" generalizations and cites the
walk-cost estimation companion work; this benchmark exercises each
implemented extension at workload scale and quantifies the claims around
them:

* wildcard queries: instantiation fan-out and total cost vs a single
  labeled query;
* edge-flip families: family size and candidate-set sharing via the
  envelope template;
* walk-cost constraint ordering vs the frequency heuristic (identical
  results, comparable or better NLCC traffic);
* the graph-simulation family (§6): polynomial but imprecise — the
  measured precision gap against the exact pipeline.
"""

import pytest

from repro.analysis import format_count, format_seconds, format_table
from repro.baselines import dual_simulation
from repro.core import run_pipeline, run_wildcard_pipeline
from repro.core.flips import run_flip_pipeline
from repro.core.patterns import wdc1_template, wdc2_template
from repro.core.template import PatternTemplate
from repro.core.wildcards import WILDCARD
from repro.graph.generators.webgraph import domain_label
from common import default_options, print_header, wdc_background


@pytest.mark.benchmark(group="ext-wildcards")
def test_extension_wildcards(benchmark):
    graph = wdc_background()
    template = PatternTemplate.from_edges(
        [(0, 1), (1, 2), (2, 0)],
        labels={0: domain_label("org"), 1: domain_label("edu"), 2: WILDCARD},
        name="org-edu-?",
    )
    result = benchmark.pedantic(
        lambda: run_wildcard_pipeline(
            graph, template, 1, default_options(), max_instantiations=400
        ),
        rounds=1, iterations=1,
    )
    closing = result.instantiations_with_matches()
    print_header("E14 — wildcard query fan-out (org-edu-? triangle, k=1)")
    print(format_table(
        ["instantiations", "with matches", "matched vertices", "time"],
        [[
            len(result.per_instantiation),
            len(closing),
            len(result.matched_vertices()),
            format_seconds(result.total_simulated_seconds),
        ]],
    ))
    assert len(result.per_instantiation) >= 2
    assert closing, "the planted WDC triangles must close for some label"


@pytest.mark.benchmark(group="ext-flips")
def test_extension_flips(benchmark):
    graph = wdc_background()
    template = wdc1_template()
    result = benchmark.pedantic(
        lambda: run_flip_pipeline(
            graph, template, flips=1, options=default_options(),
            max_variants=400,
        ),
        rounds=1, iterations=1,
    )
    print_header("E14 — edge-flip family (WDC-1, 1 flip)")
    print(format_table(
        ["variants", "with matches", "family M* vertices", "time"],
        [[
            len(result.variants),
            len(result.variants_with_matches()),
            result.candidate_set_vertices,
            format_seconds(result.total_simulated_seconds),
        ]],
    ))
    assert result.variants[0].graph == template.graph
    assert template.name in result.variants_with_matches()[0] or (
        result.variants_with_matches()
    )


@pytest.mark.benchmark(group="ext-walk-cost")
def test_extension_walk_cost_ordering(benchmark):
    graph = wdc_background()
    template = wdc2_template()
    results = {}

    def run_both():
        results["frequency"] = run_pipeline(
            graph, template, 2, default_options()
        )
        results["walk-cost"] = run_pipeline(
            graph, template, 2, default_options(constraint_ordering="walk-cost")
        )
        return results

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    frequency, walk_cost = results["frequency"], results["walk-cost"]
    assert frequency.match_vectors == walk_cost.match_vectors
    rows = [
        [name, format_count(r.message_summary["phases"]["nlcc"]["messages"]),
         format_seconds(r.total_simulated_seconds)]
        for name, r in results.items()
    ]
    print_header("E14 — constraint ordering: frequency heuristic vs "
                 "walk-cost estimator ([65])")
    print(format_table(["ordering", "NLCC messages", "time"], rows))
    ratio = (
        frequency.message_summary["phases"]["nlcc"]["messages"]
        / max(walk_cost.message_summary["phases"]["nlcc"]["messages"], 1)
    )
    print(f"walk-cost vs frequency NLCC message ratio: {ratio:.2f}x")
    assert 0.5 < ratio < 2.0, "orderings should be in the same cost regime"


@pytest.mark.benchmark(group="ext-simulation")
def test_extension_simulation_precision_gap(benchmark):
    graph = wdc_background()
    template = wdc2_template()
    results = {}

    def run_both():
        results["exact"] = run_pipeline(graph, template, 0, default_options())
        results["dual-sim"] = dual_simulation(graph, template)
        return results

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    exact_vertices = results["exact"].matched_vertices()
    sim_vertices = results["dual-sim"].matched_vertices()
    false_positives = sim_vertices - exact_vertices
    print_header("E14 — dual simulation vs exact matching (WDC-2, k=0)")
    print(format_table(
        ["system", "matched vertices", "false positives", "precision"],
        [
            ["exact pipeline", len(exact_vertices), 0, "100%"],
            [
                "dual simulation",
                len(sim_vertices),
                len(false_positives),
                f"{len(exact_vertices) / len(sim_vertices):.1%}"
                if sim_vertices else "n/a",
            ],
        ],
    ))
    assert exact_vertices <= sim_vertices, "simulation must never miss"
    assert false_positives, (
        "WDC-2's duplicate labels + shared cycles must fool dual simulation"
    )
