"""CI guard: the interprocedural analyzer is fast, armed, and clean.

Three assertions, in order of what usually breaks first:

* **armed** — every deep rule R9–R13 fires on its known-bad fixture
  under ``tests/analysis/fixtures/``.  A rule that stops firing there
  has been silently defanged (a refactor broke its call-graph or CFG
  plumbing) and would report the real tree as "clean" forever after.
* **clean** — the full deep run over ``src/repro`` reports zero
  violations.  Genuine findings are fixed, not baselined away, so any
  violation here is a regression in the runtime/core code itself.
* **fast** — the deep run (call graph + per-function CFGs + effect
  summaries + five interprocedural rules over the whole tree) finishes
  inside ``BUDGET_SECONDS`` wall-clock.  The analyzer runs on every
  push; an accidental quadratic blowup in the fixpoints must fail CI,
  not quietly triple the job time.

Writes a JSON report (timings, per-rule fixture hits, violation dump)
to ``--out`` for the artifact upload.

Run from the repo root::

    PYTHONPATH=src python benchmarks/analyze_selfcheck.py --out analyze-report.json
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis.lint import run_lint

REPO_ROOT = Path(__file__).resolve().parents[1]
REPO_SRC = REPO_ROOT / "src" / "repro"
FIXTURES = REPO_ROOT / "tests" / "analysis" / "fixtures"

#: hard wall-clock ceiling for the full-tree deep run (seconds)
BUDGET_SECONDS = 30.0

DEEP_RULES = ("R9", "R10", "R11", "R12", "R13")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", type=Path, default=Path("analyze-report.json"),
        help="where to write the JSON report (default: analyze-report.json)",
    )
    parser.add_argument(
        "--budget", type=float, default=BUDGET_SECONDS,
        help=f"wall-clock budget in seconds (default: {BUDGET_SECONDS})",
    )
    args = parser.parse_args(argv)

    failures = []

    started = time.perf_counter()
    fixture_report = run_lint(FIXTURES, deep=True)
    fixture_seconds = time.perf_counter() - started
    fired = {}
    for violation in fixture_report.violations:
        fired.setdefault(violation.rule, []).append(
            f"{violation.path}:{violation.line}"
        )
    for rule in DEEP_RULES:
        if rule not in fired:
            failures.append(
                f"{rule} no longer fires on its known-bad fixture — "
                "the rule has been defanged"
            )

    started = time.perf_counter()
    tree_report = run_lint(REPO_SRC, deep=True)
    tree_seconds = time.perf_counter() - started
    if not tree_report.clean:
        for violation in tree_report.violations:
            failures.append(f"violation: {violation.render()}")
    if tree_seconds > args.budget:
        failures.append(
            f"deep analyze took {tree_seconds:.1f}s — over the "
            f"{args.budget:.0f}s CI budget"
        )

    report = {
        "budget_seconds": args.budget,
        "tree_seconds": round(tree_seconds, 3),
        "tree_files": tree_report.files_checked,
        "tree_violations": [v.to_json() for v in tree_report.violations],
        "fixture_seconds": round(fixture_seconds, 3),
        "fixture_hits": {rule: sorted(fired.get(rule, [])) for rule in DEEP_RULES},
        "failures": failures,
    }
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    print(
        f"analyze self-check: {tree_report.files_checked} files in "
        f"{tree_seconds:.1f}s (budget {args.budget:.0f}s), "
        f"fixture rules fired: "
        + ", ".join(f"{r}x{len(fired.get(r, []))}" for r in DEEP_RULES)
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
