"""E-P1 — worker-pool shipping: dict pickles vs shared-memory bitmaps.

Not a paper figure: this benchmark guards the PR that rebuilt the worker
pool around one shared-memory CSR segment (``runtime/shm.py``) with
packed-bitmap task payloads (``PoolTask`` kind ``"array"``).  Three
measurements per workload:

* *payload bytes* — the pickled wire size of every level-0/1 task in
  legacy ``dict`` form vs packed ``array`` form (bitmaps over the shared
  CSR); the acceptance bar is a >=10x reduction on SHM-NLCC-STRESS,
  deterministic, no timer involved;
* *ship + setup* — round-trip ``pickle.dumps``/``loads`` plus the
  worker-side starting-state rebuild (dict: ``SearchState`` from
  candidate/edge lists; array: ``ArraySearchState.from_scope_payload``
  over the memoized CSR), best-of-``REPEATS``;
* *pooled end to end* — ``run_pipeline`` with ``worker_processes=2``,
  ``shm_pool`` on vs off, whole-call wall clock; the ratio is tracked as
  ``speedup_shm_pool`` in ``BENCH_HISTORY.jsonl`` by ``compare_bench.py``.

Workload names carry an ``SHM-`` prefix so the history rows never
collide with the kernel/NLCC benches' rows for the same graphs.  Both
pooled modes and the sequential oracle must report identical matched
vertices and match mappings — the speedup can never come from searching
a different scope.

Writes ``BENCH_PARALLEL.json`` at the repo root.  Run directly
(``python benchmarks/bench_parallel.py``) for the full suite, ``--smoke``
for the CI-sized subset, or via pytest-benchmark.
"""

import json
import pickle
import platform
import sys
import time
from pathlib import Path

import pytest

from repro.analysis import format_table, speedup
from repro.core import PipelineOptions, SearchState, run_pipeline
from repro.core.arraystate import ArraySearchState, csr_of
from repro.core.candidate_set import max_candidate_set
from repro.core.prototypes import generate_prototypes
from repro.runtime import Engine, MessageStats, PartitionedGraph
from repro.runtime.parallel import array_task, dict_task
from common import (
    DEFAULT_RANKS,
    kernel_stress_background,
    kernel_stress_template,
    nlcc_stress_background,
    nlcc_stress_template,
    print_header,
)

REPEATS = 3
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_PARALLEL.json"

#: the workload the acceptance bar is pinned to
ACCEPTANCE_WORKLOAD = "SHM-NLCC-STRESS"
#: required dict-over-array wire-size ratio on the acceptance workload
PAYLOAD_REDUCTION_BAR = 10.0
#: pool size of the end-to-end runs
WORKERS = 2
#: edit distance of every run (level 1 has multiple prototypes → pooled)
K = 1
#: end-to-end pooled runs are seconds each — best-of-2 tames scheduler
#: noise without stretching the gate
PIPELINE_REPEATS = 2


def shm_workloads():
    """(name, graph factory, template factory) rows for this bench."""
    return [
        ("SHM-KERNEL-STRESS", kernel_stress_background,
         kernel_stress_template),
        ("SHM-NLCC-STRESS", nlcc_stress_background, nlcc_stress_template),
    ]


def _options(**overrides):
    """The array-eligible pool configuration (shm bitmaps by default)."""
    base = dict(
        num_ranks=DEFAULT_RANKS, count_matches=True,
        array_state=True, array_nlcc=True,
    )
    base.update(overrides)
    return PipelineOptions(**base)


def _level_scopes(graph, template):
    """Every prototype's starting scope, cut from M* in both forms."""
    engine = Engine(
        PartitionedGraph(graph, DEFAULT_RANKS), MessageStats(DEFAULT_RANKS)
    )
    base_state = max_candidate_set(
        graph, template, engine, array_state=True
    )
    base_astate = ArraySearchState.from_search_state(
        base_state, roles=sorted(template.graph.vertices())
    )
    scopes = []
    for proto in generate_prototypes(template, K, None):
        scopes.append((
            proto,
            base_state.for_prototype_search(proto),
            base_astate.for_prototype_search(proto),
        ))
    return scopes


def _payload_bytes(scopes):
    """Total pickled wire size of the level's tasks, per payload kind."""
    dict_bytes = sum(
        len(pickle.dumps(dict_task(proto.id, state)))
        for proto, state, _astate in scopes
    )
    array_bytes = sum(
        len(pickle.dumps(array_task(proto.id, astate)))
        for proto, _state, astate in scopes
    )
    return dict_bytes, array_bytes


def _ship_setup_once(graph, scopes, kind):
    """One timed dumps → loads → worker-side state rebuild pass."""
    csr = csr_of(graph)
    start = time.perf_counter()
    for proto, state, astate in scopes:
        if kind == "dict":
            task = pickle.loads(pickle.dumps(dict_task(proto.id, state)))
            candidates_payload, edges_payload = task.data
            candidates = {v: set(roles) for v, roles in candidates_payload}
            active_edges = {v: set() for v in candidates}
            for u, v in edges_payload:
                active_edges.setdefault(u, set()).add(v)
                active_edges.setdefault(v, set()).add(u)
            SearchState(graph, candidates, active_edges)
        else:
            task = pickle.loads(pickle.dumps(array_task(proto.id, astate)))
            vertex_bits, edge_bits, _warm = task.data
            ArraySearchState.from_scope_payload(
                graph, csr, proto, vertex_bits, edge_bits
            )
    return time.perf_counter() - start


def _pipeline_once(graph, template, shm_pool):
    """One pooled end-to-end run; returns (wall, result digest)."""
    start = time.perf_counter()
    result = run_pipeline(
        graph, template, K,
        _options(worker_processes=WORKERS, shm_pool=shm_pool),
    )
    wall = time.perf_counter() - start
    return wall, {
        "matched_vertices": len(result.match_vectors),
        "match_mappings": result.total_match_mappings(),
    }


def run_suite(repeats=REPEATS, workloads=None, pipeline=True):
    """Benchmark every workload x payload kind; returns the JSON payload."""
    rows = []
    for name, graph_factory, template_factory in (
        workloads or shm_workloads()
    ):
        graph = graph_factory()
        template = template_factory()
        scopes = _level_scopes(graph, template)
        dict_bytes, array_bytes = _payload_bytes(scopes)

        ship = {}
        for kind in ("dict", "array"):
            best = min(
                _ship_setup_once(graph, scopes, kind)
                for _ in range(repeats)
            )
            ship[kind] = {"wall_seconds": best}
        row = {
            "name": name,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "tasks": len(scopes),
            "payload_bytes": {"dict": dict_bytes, "array": array_bytes},
            "payload_bytes_reduction": speedup(dict_bytes, array_bytes),
            "ship_setup": ship,
            "speedup_ship_setup": speedup(
                ship["dict"]["wall_seconds"], ship["array"]["wall_seconds"]
            ),
        }

        if pipeline:
            sequential = run_pipeline(graph, template, K, _options())
            oracle = {
                "matched_vertices": len(sequential.match_vectors),
                "match_mappings": sequential.total_match_mappings(),
            }
            pipe = {}
            digests = {}
            for label, shm_pool in (("dict", False), ("shm", True)):
                best, digest = None, None
                for _ in range(PIPELINE_REPEATS):
                    wall, run_digest = _pipeline_once(
                        graph, template, shm_pool
                    )
                    assert digest is None or run_digest == digest, (
                        f"{name}: {label}-pooled results vary across runs"
                    )
                    digest = run_digest
                    if best is None or wall < best:
                        best = wall
                pipe[label] = dict(wall_seconds=best, **digest)
                digests[label] = digest
            row["pipeline"] = pipe
            row["speedup_shm_pool"] = speedup(
                pipe["dict"]["wall_seconds"], pipe["shm"]["wall_seconds"]
            )
            row["results_equal"] = (
                digests["dict"] == oracle and digests["shm"] == oracle
            )
        rows.append(row)
    return {
        "experiment": "E-P1 worker-pool payload shipping benchmark",
        "methodology": {
            "timer": (
                "time.perf_counter around dumps/loads/state-rebuild "
                "(ship+setup) / run_pipeline (end to end); payload bytes "
                "are len(pickle.dumps(task)), no timer"
            ),
            "repeats": repeats,
            "pipeline_repeats": PIPELINE_REPEATS,
            "aggregation": "best-of (min wall time per payload kind)",
            "ranks": DEFAULT_RANKS,
            "workers": WORKERS,
            "k": K,
            "python": platform.python_version(),
            "acceptance": (
                f">={PAYLOAD_REDUCTION_BAR:.0f}x smaller pickled task "
                "payloads (array bitmaps vs dict lists) on "
                f"{ACCEPTANCE_WORKLOAD}; identical matched vertices and "
                "match mappings across sequential, dict-pooled and "
                "shm-pooled runs"
            ),
        },
        "workloads": rows,
    }


def check_acceptance(payload):
    """Assert the wire-size bar; returns the acceptance workload's row."""
    for row in payload["workloads"]:
        if "results_equal" in row:
            assert row["results_equal"], (
                f"{row['name']}: pooled results diverge from sequential"
            )
    target = next(
        r for r in payload["workloads"] if r["name"] == ACCEPTANCE_WORKLOAD
    )
    assert target["payload_bytes_reduction"] >= PAYLOAD_REDUCTION_BAR, (
        f"{target['name']}: payload reduction "
        f"{target['payload_bytes_reduction']:.2f}x < "
        f"{PAYLOAD_REDUCTION_BAR:.0f}x"
    )
    return target


def report(payload):
    rows = []
    for row in payload["workloads"]:
        pipe = row.get("pipeline")
        rows.append([
            row["name"] + (" *" if row["name"] == ACCEPTANCE_WORKLOAD else ""),
            f"{row['vertices']}/{row['edges']}",
            f"{row['payload_bytes']['dict'] / 1024:.0f}K",
            f"{row['payload_bytes']['array'] / 1024:.1f}K",
            f"{row['payload_bytes_reduction']:.0f}x",
            f"{row['speedup_ship_setup']:.1f}x",
            f"{pipe['dict']['wall_seconds']:.2f}s" if pipe else "-",
            f"{pipe['shm']['wall_seconds']:.2f}s" if pipe else "-",
            f"{row['speedup_shm_pool']:.2f}x" if pipe else "-",
            ("yes" if row["results_equal"] else "NO") if pipe else "-",
        ])
    print(format_table(
        ["workload", "V/E", "dict bytes", "array bytes", "reduction",
         "ship speedup", "pool dict", "pool shm", "pool speedup",
         "same results"],
        rows,
    ))
    print(f"* acceptance workload "
          f"(>={PAYLOAD_REDUCTION_BAR:.0f}x payload reduction)")


@pytest.mark.benchmark(group="parallel")
def test_shm_payload_reduction(benchmark):
    print_header("E-P1 — pool shipping: dict pickles vs shared-memory bitmaps")
    payload = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    report(payload)
    target = check_acceptance(payload)
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    assert target["payload_bytes_reduction"] >= PAYLOAD_REDUCTION_BAR


def smoke_suite():
    """The CI-sized subset: acceptance workload only, fewer repeats.

    Keeps the end-to-end pooled runs (single repeat) because the gate
    tracks ``speedup_shm_pool`` across history; the deterministic
    payload-bytes bar is what actually fails fast on a regression.
    """
    workloads = [w for w in shm_workloads() if w[0] == ACCEPTANCE_WORKLOAD]
    return run_suite(repeats=2, workloads=workloads, pipeline=True)


def main(argv):
    smoke = "--smoke" in argv
    if smoke:
        payload = smoke_suite()
        report(payload)
        check_acceptance(payload)
        print("smoke OK")
        return 0
    payload = run_suite()
    report(payload)
    check_acceptance(payload)
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
