"""E3 — Fig. 7: time-to-solution, naïve approach vs HGT.

The paper compares the full pipeline against the naïve approach (generate
all prototypes, search each independently in the background graph) across
RMAT-1, WDC-1..4, RDT-1, IMDB-1 and 4-Motif, reporting a 3.8x average
speedup; the naïve WDC-4 bar exceeds the plot's axis.

Here the same pattern suite runs on the scaled-down workloads; results are
asserted identical (both pipelines guarantee 100% precision/recall — only
cost differs).  Reported per pattern: simulated time for both systems, the
speedup, and the message-count ratio.
"""

import dataclasses

import pytest

from repro.analysis import format_count, format_seconds, format_table, speedup
from repro.core import count_motifs, naive_options, naive_search, run_pipeline
from repro.core.patterns import wdc4_template
from repro.graph.generators import gnm_graph
from common import (
    default_options,
    figure7_workloads,
    print_header,
    wdc_background,
)


@pytest.mark.benchmark(group="fig7-naive-vs-hgt")
def test_fig7_naive_comparison(benchmark):
    rows = []
    speedups = []

    def run_all():
        # Labeled pattern workloads.
        for name, graph_factory, template_factory, k in figure7_workloads():
            graph = graph_factory()
            template = template_factory()
            hgt = run_pipeline(graph, template, k, default_options())
            nve = naive_search(graph, template, k, default_options())
            assert hgt.match_vectors == nve.match_vectors
            rows.append(_row(name, k, hgt, nve))
            speedups.append(
                speedup(nve.total_simulated_seconds, hgt.total_simulated_seconds)
            )

        # WDC-4 (6-clique): searched at k=2 here — at the paper's k=4 the
        # naïve side, like Fig. 7's off-axis bar, dominates the benchmark.
        graph = wdc_background()
        hgt = run_pipeline(graph, wdc4_template(), 2, default_options())
        nve = naive_search(graph, wdc4_template(), 2, default_options())
        assert hgt.match_vectors == nve.match_vectors
        rows.append(_row("WDC-4", 2, hgt, nve))
        speedups.append(
            speedup(nve.total_simulated_seconds, hgt.total_simulated_seconds)
        )

        # 4-Motif (unlabeled) with explicit match counting, as in Fig. 7.
        motif_graph = gnm_graph(250, 625, num_labels=1, seed=0)
        hgt_m = count_motifs(motif_graph, 4, default_options())
        naive_opts = naive_options(default_options())
        nve_m = count_motifs(
            motif_graph, 4,
            dataclasses.replace(naive_opts, count_matches=True),
            use_extension=False,
        )
        assert hgt_m.induced == nve_m.induced
        rows.append(_row("4-Motif", 3, hgt_m.result, nve_m.result))
        speedups.append(
            speedup(
                nve_m.result.total_simulated_seconds,
                hgt_m.result.total_simulated_seconds,
            )
        )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_header("Fig. 7 — Naïve approach vs HGT (identical results, "
                 "different cost)")
    print(format_table(
        ["pattern", "k", "naive", "HGT", "speedup", "naive msgs", "HGT msgs",
         "msg ratio"],
        rows,
    ))
    average = sum(speedups) / len(speedups)
    print(f"\nAverage speedup: {average:.2f}x "
          f"(paper: 3.8x average at cluster scale)")
    assert all(s > 0.9 for s in speedups), "HGT must never lose badly"
    assert average > 1.2, "the optimized pipeline must win on average"


def _row(name, k, hgt, nve):
    return [
        name,
        k,
        format_seconds(nve.total_simulated_seconds),
        format_seconds(hgt.total_simulated_seconds),
        f"{speedup(nve.total_simulated_seconds, hgt.total_simulated_seconds):.2f}x",
        format_count(nve.message_summary["total_messages"]),
        format_count(hgt.message_summary["total_messages"]),
        f"{speedup(nve.message_summary['total_messages'], hgt.message_summary['total_messages']):.2f}x",
    ]
