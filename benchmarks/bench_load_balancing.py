"""E5 — Fig. 9(a): impact of load balancing on the WDC patterns.

After pruning to the max candidate set, matches concentrate on few ranks;
reshuffling the pruned graph evens the edge-endpoint load.  The paper
reports 3.8x (WDC-1), 2x (WDC-2) and 1.3x (WDC-3) gains from one
rebalancing pass (LB) over none (NLB).

Here the NLB configuration uses block partitioning (contiguous vertex ids
per rank — the skew-prone layout; planted matches are id-contiguous, so
they land on one rank, exactly the concentration effect §4 describes),
and LB adds the reshuffle step.  The rebalancing time itself is included
in LB's total, as in the paper.
"""

import pytest

from repro.analysis import format_seconds, format_table, speedup
from repro.core import run_pipeline
from repro.core.patterns import wdc1_template, wdc2_template, wdc3_template
from common import default_options, print_header, wdc_background

PATTERNS = [
    ("WDC-1", wdc1_template, 2),
    ("WDC-2", wdc2_template, 2),
    ("WDC-3", wdc3_template, 3),
]


@pytest.mark.benchmark(group="fig9a-load-balancing")
def test_fig9a_load_balancing(benchmark):
    graph = wdc_background()
    results = {}

    def run_all():
        for name, template_factory, k in PATTERNS:
            template = template_factory()
            nlb = run_pipeline(
                graph, template, k,
                default_options(partition_strategy="block"),
            )
            lb = run_pipeline(
                graph, template, k,
                default_options(
                    partition_strategy="block", load_balance="reshuffle"
                ),
            )
            results[name] = (nlb, lb)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_header("Fig. 9(a) — Load balancing: none (NLB) vs reshuffle (LB)")
    rows = []
    gains = {}
    for name, (nlb, lb) in results.items():
        gain = speedup(nlb.total_simulated_seconds, lb.total_simulated_seconds)
        gains[name] = gain
        rows.append([
            name,
            format_seconds(nlb.total_simulated_seconds),
            format_seconds(lb.total_simulated_seconds),
            format_seconds(lb.total_infrastructure_seconds),
            f"{gain:.2f}x",
        ])
        assert nlb.match_vectors == lb.match_vectors
    print(format_table(
        ["pattern", "NLB", "LB", "LB rebalance cost", "LB speedup"], rows
    ))
    print("\n(paper: 3.8x WDC-1, 2x WDC-2, 1.3x WDC-3)")

    assert any(g > 1.1 for g in gains.values()), (
        "rebalancing must pay off for at least one skewed pattern"
    )
    assert all(g > 0.7 for g in gains.values()), (
        "rebalancing must never be catastrophic"
    )
