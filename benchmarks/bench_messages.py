"""E10 — §5.7 message analysis: naïve vs HGT on WDC-2.

The paper's table (64 nodes, WDC-2): the naïve approach exchanges 647e9
messages vs HGT's 39e9 — 16.6x better message efficiency yielding 3.6x
time speedup; ~88-90% of messages are remote for both; 82.5% of HGT's
messages are spent generating the max candidate set (paid once, amortized
over every prototype search).

The same four rows are regenerated here.
"""

import pytest

from repro.analysis import format_count, format_seconds, format_table, speedup
from repro.core import naive_search, run_pipeline
from repro.core.patterns import wdc2_template
from common import default_options, print_header, wdc_background


@pytest.mark.benchmark(group="t57-messages")
def test_message_analysis(benchmark):
    graph = wdc_background()
    template = wdc2_template()
    results = {}

    def run_all():
        results["hgt"] = run_pipeline(graph, template, 2, default_options())
        results["naive"] = naive_search(graph, template, 2, default_options())
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    hgt, nve = results["hgt"], results["naive"]
    assert hgt.match_vectors == nve.match_vectors

    hgt_summary = hgt.message_summary
    nve_summary = nve.message_summary
    mcs_fraction = (
        hgt_summary["phases"].get("max_candidate_set", {}).get("messages", 0)
        / hgt_summary["total_messages"]
    )
    message_ratio = speedup(
        nve_summary["total_messages"], hgt_summary["total_messages"]
    )
    time_ratio = speedup(
        nve.total_simulated_seconds, hgt.total_simulated_seconds
    )

    print_header("§5.7 — Message analysis, WDC-2 (naïve vs HGT)")
    print(format_table(
        ["metric", "naive", "HGT", "improvement"],
        [
            ["total messages",
             format_count(nve_summary["total_messages"]),
             format_count(hgt_summary["total_messages"]),
             f"{message_ratio:.2f}x"],
            ["% remote",
             f"{nve_summary['remote_fraction']:.1%}",
             f"{hgt_summary['remote_fraction']:.1%}",
             "-"],
            ["% due to max-candidate set",
             "N/A",
             f"{mcs_fraction:.1%}",
             "-"],
            ["time",
             format_seconds(nve.total_simulated_seconds),
             format_seconds(hgt.total_simulated_seconds),
             f"{time_ratio:.2f}x"],
        ],
    ))
    print("\n(paper: 16.6x messages, 3.6x time; 82.5% of HGT messages in M*)")

    assert message_ratio > 1.2, "HGT must be more message-efficient"
    assert time_ratio > 1.0
    # Remote fractions are comparable between systems (same partitioning).
    assert abs(
        hgt_summary["remote_fraction"] - nve_summary["remote_fraction"]
    ) < 0.25
    # A visible share of HGT's messages goes into M* (paid once).
    assert mcs_fraction > 0.005
