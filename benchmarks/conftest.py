"""Benchmark harness configuration.

Makes the sibling ``common`` module importable from every benchmark file,
prints the experiment banner once per session, and replays every
benchmark's printed output in the terminal summary: the tables and charts
each benchmark prints ARE the regenerated paper artifacts, so they must
reach the terminal (and any ``tee``) even without ``-s``.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

_CAPTURED = []


def pytest_sessionstart(session):
    print(
        "\nBenchmark harness — regenerates every table/figure of "
        "'Approximate Pattern Matching in Massive Graphs with Precision "
        "and Recall Guarantees' (SIGMOD'20) at simulation scale.\n"
        "Experiment index: DESIGN.md §4; paper-vs-measured: EXPERIMENTS.md."
    )


def pytest_runtest_logreport(report):
    if report.when == "call" and report.capstdout:
        _CAPTURED.append((report.nodeid, report.capstdout))


def pytest_terminal_summary(terminalreporter):
    if not _CAPTURED:
        return
    terminalreporter.section("regenerated paper artifacts")
    for nodeid, text in _CAPTURED:
        terminalreporter.write_line(f"\n--- {nodeid} ---")
        terminalreporter.write_line(text.rstrip())
