"""E12 — Fig. 12: impact of locality at a fixed process count.

The paper fixes 768 MPI processes over the same partitioning and varies
the number of physical nodes from 16 (48 processes per node — more than
the 36 cores, i.e. oversubscribed) to 768 (one process per node — every
message crosses the network).  The sweet spot sits in between: enough
node-local communication without oversubscribing cores.

Here 24 simulated ranks run the WDC-2 workload with ranks-per-node swept
over {24, 12, 8, 4, 2, 1} and a 6-core node model (mirroring the paper's
48-processes-on-36-cores extreme, our packed end oversubscribes 4x):
configurations with more ranks than cores pay a proportional
oversubscription factor on compute, and the cost model distinguishes
intra-rank, same-node (shared-memory) and cross-node (network) message
costs.  The U-shaped curve of Fig. 12 should emerge: both extremes lose
to a middle configuration.
"""

import pytest

from repro.analysis import bar_chart, format_seconds, format_table
from repro.core import run_pipeline
from repro.core.patterns import wdc2_template
from repro.runtime import CostModel
from common import default_options, print_header, wdc_background

TOTAL_RANKS = 24
CORES_PER_NODE = 6
RANKS_PER_NODE = [24, 12, 8, 4, 2, 1]


@pytest.mark.benchmark(group="fig12-locality")
def test_fig12_locality(benchmark):
    graph = wdc_background()
    template = wdc2_template()
    results = {}

    def run_all():
        for rpn in RANKS_PER_NODE:
            oversubscription = max(1.0, rpn / CORES_PER_NODE)
            options = default_options(
                num_ranks=TOTAL_RANKS,
                ranks_per_node=rpn,
                cost_model=CostModel(oversubscription=oversubscription),
            )
            results[rpn] = run_pipeline(graph, template, 2, options)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_header(f"Fig. 12 — locality sweep ({TOTAL_RANKS} ranks, "
                 f"{CORES_PER_NODE}-core nodes)")
    rows = []
    times = {}
    for rpn in RANKS_PER_NODE:
        result = results[rpn]
        nodes = (TOTAL_RANKS + rpn - 1) // rpn
        times[rpn] = result.total_simulated_seconds
        rows.append([
            nodes,
            rpn,
            f"{max(1.0, rpn / CORES_PER_NODE):.2f}",
            format_seconds(result.total_simulated_seconds),
        ])
    best = min(times, key=times.get)
    for row, rpn in zip(rows, RANKS_PER_NODE):
        row.append("<-- best" if rpn == best else "")
    print(format_table(
        ["nodes", "ranks/node", "oversubscription", "time", ""], rows
    ))

    print("\nTime vs locality (the Fig. 12 U-shape):")
    print(bar_chart(
        [f"{rpn} ranks/node" for rpn in RANKS_PER_NODE],
        [times[rpn] for rpn in RANKS_PER_NODE],
        unit="s",
    ))

    # Results invariant, U-shape present: the best configuration is neither
    # the fully-packed oversubscribed one nor the fully-spread one.
    reference = results[RANKS_PER_NODE[0]].match_vectors
    for result in results.values():
        assert result.match_vectors == reference
    assert best not in (RANKS_PER_NODE[0], RANKS_PER_NODE[-1]), (
        f"expected an interior optimum, got ranks/node={best}"
    )
    assert times[best] < times[RANKS_PER_NODE[0]]
    assert times[best] < times[RANKS_PER_NODE[-1]]
