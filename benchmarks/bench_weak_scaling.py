"""E1 — Fig. 4: weak scaling on R-MAT graphs with the RMAT-1 pattern.

The paper scales R-MAT from Scale 28 on 4 nodes to Scale 35 (~1.1T edges)
on 256 nodes: doubling the graph with the rank count, labels from the
degree rule, RMAT-1 searched at k=2 (24 prototypes).  A flat runtime line
indicates perfect weak scaling; the paper sees "mostly consistent scaling"
with ~70% of time in actual search and ~30% in infrastructure management.

Here R-MAT scales 8→11 run on 2→16 simulated ranks.  Reported: simulated
makespan per configuration, search vs infrastructure fraction, and the
weak-scaling efficiency (time relative to the smallest configuration).
"""

import pytest

from repro.analysis import bar_chart, format_seconds, format_table
from repro.core import generate_prototypes, run_pipeline
from common import default_options, print_header, rmat1_for, rmat_background

#: (R-MAT scale, simulated ranks): graph doubles with the deployment.
CONFIGURATIONS = [(8, 2), (9, 4), (10, 8), (11, 16)]


def run_configuration(scale: int, ranks: int):
    graph = rmat_background(scale)
    template = rmat1_for(scale)
    options = default_options(
        num_ranks=ranks, load_balance="reshuffle", count_matches=True
    )
    return run_pipeline(graph, template, 2, options)


@pytest.mark.benchmark(group="fig4-weak-scaling")
def test_fig4_weak_scaling(benchmark):
    results = {}

    def run_all():
        for scale, ranks in CONFIGURATIONS:
            results[(scale, ranks)] = run_configuration(scale, ranks)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    template = rmat1_for(CONFIGURATIONS[0][0])
    prototype_set = generate_prototypes(template, 2)
    assert prototype_set.level_counts() == [1, 7, 16]  # paper: 24 prototypes

    print_header(
        "Fig. 4 — Weak scaling, RMAT-1 (k=2, "
        f"{len(prototype_set)} prototypes)"
    )
    base_time = None
    rows = []
    for (scale, ranks), result in results.items():
        graph = rmat_background(scale)
        total = result.total_simulated_seconds
        if base_time is None:
            base_time = total
        search = sum(level.search_seconds for level in result.levels)
        infra = (
            result.candidate_set_seconds + result.total_infrastructure_seconds
        )
        rows.append([
            scale,
            ranks,
            graph.num_vertices,
            graph.num_edges,
            format_seconds(total),
            f"{search / total:.0%}" if total else "-",
            f"{infra / total:.0%}" if total else "-",
            f"{total / base_time:.2f}x",
            result.total_match_mappings(),
        ])
    print(format_table(
        ["scale", "ranks", "|V|", "|E|", "time", "search", "infra",
         "vs smallest", "mappings"],
        rows,
    ))

    print("\nRuntime by configuration (flat = perfect weak scaling):")
    print(bar_chart(
        [f"scale {s} / {r} ranks" for s, r in CONFIGURATIONS],
        [results[c].total_simulated_seconds for c in CONFIGURATIONS],
        unit="s",
    ))

    # Weak-scaling shape: runtime grows far slower than the 8x problem size.
    times = [results[c].total_simulated_seconds for c in CONFIGURATIONS]
    assert times[-1] < 4.0 * times[0], "weak scaling severely degraded"
    # Every configuration finds matches (labels generated at every scale).
    for result in results.values():
        assert result.total_labels_generated() > 0
