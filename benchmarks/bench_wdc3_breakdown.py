"""E4 — Fig. 8: WDC-3 runtime broken down by edit-distance level.

The paper's central ablation: four scenarios on the WDC-3 pattern,

* naïve — independent prototype searches on the background graph;
* X — bottom-up with search-space reduction only (M* + containment rule);
* Y — X plus redundant work elimination (NLCC result recycling);
* Z — Y plus load balancing and relaunching on smaller deployments,
  searching prototypes in parallel (total gain ~3.4x over naïve; work
  recycling alone contributes up to 2x at some levels).

The X-axis annotations of Fig. 8 — per-level prototype counts, matching
vertex set sizes |V*_k| and the number of vertex/prototype labels
generated — are reproduced as table rows.
"""

import pytest

from repro.analysis import format_seconds, format_table, speedup
from repro.core import generate_prototypes, naive_options, run_pipeline
from repro.core.patterns import wdc3_template
from common import default_options, print_header, wdc_background

K = 3

SCENARIOS = [
    ("naive", lambda: naive_options(default_options())),
    ("X (space reduction)", lambda: default_options(work_recycling=False)),
    ("Y (X + work recycling)", lambda: default_options()),
    (
        "Z (Y + balance + parallel)",
        lambda: default_options(
            load_balance="reshuffle", parallel_deployments=2,
            prototype_cost_source="measured",
        ),
    ),
]


@pytest.mark.benchmark(group="fig8-wdc3-breakdown")
def test_fig8_wdc3_breakdown(benchmark):
    graph = wdc_background()
    template = wdc3_template()
    results = {}

    def run_all():
        for name, options_factory in SCENARIOS:
            results[name] = run_pipeline(graph, template, K, options_factory())
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    prototype_set = generate_prototypes(template, K)
    reference = results["naive"]

    print_header(f"Fig. 8 — WDC-3 per-level breakdown (k={K}, "
                 f"{len(prototype_set)} prototypes)")
    rows = []
    for name, _factory in SCENARIOS:
        result = results[name]
        per_level = {lvl.distance: lvl.search_seconds for lvl in result.levels}
        rows.append([
            name,
            *[format_seconds(per_level.get(d, 0.0)) for d in range(K, -1, -1)],
            format_seconds(result.total_simulated_seconds),
            f"{speedup(reference.total_simulated_seconds, result.total_simulated_seconds):.2f}x",
        ])
    headers = (["scenario"] + [f"k={d}" for d in range(K, -1, -1)]
               + ["total", "vs naive"])
    print(format_table(headers, rows))

    # The Fig. 8 X-axis annotations, from the (identical) exact results.
    annotation_rows = []
    for distance in range(K, -1, -1):
        level = reference.level_for(distance)
        annotation_rows.append([
            distance,
            level.num_prototypes,
            level.union_vertices,
            level.labels_generated(),
        ])
    print("\nPer-level annotations (prototypes / |V*_k| / labels):")
    print(format_table(["k", "#p_k", "|V*_k|", "labels"], annotation_rows))

    # All scenarios produce identical results.
    for name, _factory in SCENARIOS:
        assert results[name].match_vectors == reference.match_vectors

    # Cost ordering: each added optimization must not hurt, and the final
    # configuration beats naive (paper: ~3.4x).
    times = {n: results[n].total_simulated_seconds for n, _f in SCENARIOS}
    assert times["Y (X + work recycling)"] <= times["X (space reduction)"] * 1.05
    assert times["X (space reduction)"] < times["naive"]
    best = min(times["Y (X + work recycling)"], times["Z (Y + balance + parallel)"])
    print(f"\nBest optimized vs naive: {times['naive'] / best:.2f}x "
          f"(paper: ~3.4x)")
    assert times["naive"] / best > 1.3
