"""E0 — Table 1: dataset characteristics.

The paper's Table 1 lists every evaluation dataset with |V|, 2|E|, d_max,
d_avg, d_stdev and storage size.  This benchmark regenerates the same
table for the repository's stand-ins (at their benchmark sizes) and prints
the paper's values alongside, so the scale-down factor is explicit.
"""

import pytest

from repro.analysis import dataset_row, format_table
from common import (
    imdb_background,
    print_header,
    reddit_background,
    rmat_background,
    wdc_background,
)
from repro.graph.generators import suite_graphs

#: paper's Table 1 rows: |V|, 2|E|, d_max, d_avg, d_stdev, size
PAPER_ROWS = {
    "WDC": ("3.5B", "257B", "95M", "72.3", "3.6K", "2.5TB"),
    "Reddit": ("3.9B", "14B", "19M", "3.7", "483.3", "460GB"),
    "IMDb": ("5M", "29M", "552K", "5.8", "342.6", "581MB"),
    "R-MAT": ("34.4B", "1.1T", "222M", "32", "3.5K", "17TB"),
    "CiteSeer": ("3.3K", "9.4K", "99", "3.6", "3.4", "741KB"),
    "Mico": ("100K", "2.2M", "1.4K", "22", "37.1", "36MB"),
    "Patent": ("2.7M", "28M", "789", "10.2", "10.8", "480MB"),
    "YouTube": ("4.6M", "88M", "2.5K", "19.2", "21.7", "1.4GB"),
    "LiveJournal": ("4.8M", "69M", "20K", "17", "36", "1.2GB"),
}


@pytest.mark.benchmark(group="table1-datasets")
def test_table1_dataset_characteristics(benchmark):
    graphs = {}

    def build_all():
        graphs["WDC"] = wdc_background()
        graphs["Reddit"] = reddit_background()
        graphs["IMDb"] = imdb_background()
        graphs["R-MAT"] = rmat_background()
        for name, graph in suite_graphs():
            graphs[name.capitalize() if name != "livejournal" else "LiveJournal"] = (
                graph
            )
        return graphs

    benchmark.pedantic(build_all, rounds=1, iterations=1)

    name_map = {"Citeseer": "CiteSeer", "Youtube": "YouTube", "Mico": "Mico",
                "Patent": "Patent"}
    print_header("Table 1 — dataset characteristics (stand-ins vs paper)")
    rows = []
    for name, graph in graphs.items():
        paper_name = name_map.get(name, name)
        row = dataset_row(name, graph)
        paper = PAPER_ROWS[paper_name]
        rows.append(row + [f"paper: |V|={paper[0]} 2|E|={paper[1]} "
                           f"d_max={paper[2]} size={paper[5]}"])
    print(format_table(
        ["dataset", "type", "|V|", "2|E|", "d_max", "d_avg", "d_stdev",
         "size", "paper reference"],
        rows,
    ))

    # Structural sanity: the WDC stand-in keeps the skew signature that
    # makes strong scaling hard (d_max far above d_avg), and the suite
    # preserves the size ordering.
    wdc_stats = graphs["WDC"].degree_statistics()
    assert wdc_stats.d_max > 10 * wdc_stats.d_avg
    assert graphs["Citeseer"].num_vertices < graphs["LiveJournal"].num_vertices
