"""E6 — Fig. 9(b): ordering heuristics and the enumeration optimization.

Three ablations from §5.4:

* (top) *constraint ordering* — orchestrating NLCC walks so rare labels
  are visited early reduces circulating tokens;
* (middle) *prototype ordering* — when searching prototypes in parallel on
  replica deployments, overlapping the most expensive searches (LPT by
  measured cost, the paper's manually-reordered upper bound) improves the
  level makespan over naive round-robin;
* (bottom) *match enumeration optimization* — deriving a level-δ
  prototype's matches by extending level-δ+1 matches by one edge instead
  of re-searching (paper: ~3.9x on 4-Motif/Youtube).
"""

import pytest

from repro.analysis import format_count, format_seconds, format_table, speedup
from repro.core import count_motifs, run_pipeline
from repro.core.patterns import wdc2_template, wdc3_template
from repro.graph.generators import gnm_graph
from common import default_options, print_header, wdc_background


@pytest.mark.benchmark(group="fig9b-constraint-ordering")
def test_fig9b_constraint_ordering(benchmark):
    graph = wdc_background()
    template = wdc2_template()  # NLCC-heavy: duplicate labels + shared cycles
    results = {}

    def run_all():
        results["ordered"] = run_pipeline(graph, template, 2, default_options())
        results["unordered"] = run_pipeline(
            graph, template, 2, default_options(constraint_ordering=False)
        )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    ordered, unordered = results["ordered"], results["unordered"]
    assert ordered.match_vectors == unordered.match_vectors
    ordered_nlcc = ordered.message_summary["phases"]["nlcc"]["messages"]
    unordered_nlcc = unordered.message_summary["phases"]["nlcc"]["messages"]

    print_header("Fig. 9(b) top — NLCC constraint ordering (rare labels first)")
    print(format_table(
        ["config", "NLCC messages", "total time"],
        [
            ["rare-first", format_count(ordered_nlcc),
             format_seconds(ordered.total_simulated_seconds)],
            ["unordered", format_count(unordered_nlcc),
             format_seconds(unordered.total_simulated_seconds)],
        ],
    ))
    print(f"NLCC message reduction: {unordered_nlcc / max(ordered_nlcc, 1):.2f}x")
    assert ordered_nlcc <= unordered_nlcc * 1.10, (
        "rare-label-first ordering should not increase token traffic"
    )


@pytest.mark.benchmark(group="fig9b-prototype-ordering")
def test_fig9b_prototype_ordering(benchmark):
    graph = wdc_background()
    template = wdc3_template()  # many prototypes -> parallel search matters
    results = {}

    def run_all():
        for name, ordering in (("LPT", True), ("round-robin", False)):
            results[name] = run_pipeline(
                graph, template, 3,
                default_options(
                    parallel_deployments=4,
                    prototype_ordering=ordering,
                    prototype_cost_source="measured",
                ),
            )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lpt, rr = results["LPT"], results["round-robin"]
    assert lpt.match_vectors == rr.match_vectors
    print_header("Fig. 9(b) middle — prototype ordering for parallel search")
    print(format_table(
        ["config", "level-parallel time"],
        [
            ["LPT (overlap expensive)", format_seconds(lpt.total_simulated_seconds)],
            ["round-robin", format_seconds(rr.total_simulated_seconds)],
        ],
    ))
    gain = speedup(rr.total_simulated_seconds, lpt.total_simulated_seconds)
    print(f"Prototype-ordering gain: {gain:.2f}x "
          f"(paper reports this as an upper bound from manual reordering)")
    assert gain >= 0.95


@pytest.mark.benchmark(group="fig9b-enumeration-optimization")
def test_fig9b_enumeration_optimization(benchmark):
    graph = gnm_graph(250, 625, num_labels=1, seed=0)
    results = {}

    def run_all():
        results["extension"] = count_motifs(
            graph, 4, default_options(), use_extension=True
        )
        results["re-search"] = count_motifs(
            graph, 4, default_options(), use_extension=False
        )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    fast, slow = results["extension"], results["re-search"]
    assert fast.induced == slow.induced
    print_header("Fig. 9(b) bottom — match enumeration by one-edge extension "
                 "(4-Motif)")
    print(format_table(
        ["config", "simulated time", "wall time"],
        [
            ["extend child matches",
             format_seconds(fast.result.total_simulated_seconds),
             format_seconds(fast.result.total_wall_seconds)],
            ["re-search every level",
             format_seconds(slow.result.total_simulated_seconds),
             format_seconds(slow.result.total_wall_seconds)],
        ],
    ))
    gain = speedup(
        slow.result.total_simulated_seconds,
        fast.result.total_simulated_seconds,
    )
    print(f"Enumeration-optimization gain: {gain:.2f}x (paper: ~3.9x)")
    assert gain > 1.2, "extending child matches must beat re-searching"
