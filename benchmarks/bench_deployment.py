"""E7 — §5.4 deployment table: reloading the pruned graph on fewer ranks.

Once the max candidate set is orders of magnitude smaller than the
background graph, it can be reloaded on one or more smaller deployments.
The paper explores two optimization criteria for WDC-3:

* minimize *time-to-solution*: keep all nodes, split them into replica
  deployments searching prototypes in parallel (a smaller per-deployment
  size can even win through better locality — their 4-node deployments
  beat the full 128-node one by 10.3x);
* minimize *CPU-hours*: run sequentially on few ranks (two nodes cost 50x
  fewer CPU-hours than 128).

The same trade-off table is regenerated here on 16 simulated ranks.
"""

import pytest

from repro.analysis import format_seconds, format_table
from repro.core import run_pipeline
from repro.core.patterns import wdc3_template
from common import print_header, wdc_background, default_options

TOTAL_RANKS = 16
PARALLEL_SPLITS = [1, 2, 4, 8]     # deployments of 16/8/4/2 ranks each
SEQUENTIAL_RANKS = [16, 8, 4, 2]


@pytest.mark.benchmark(group="t54-deployments")
def test_deployment_tradeoffs(benchmark):
    graph = wdc_background()
    template = wdc3_template()
    parallel = {}
    sequential = {}

    def run_all():
        for splits in PARALLEL_SPLITS:
            parallel[splits] = run_pipeline(
                graph, template, 3,
                default_options(
                    num_ranks=TOTAL_RANKS,
                    parallel_deployments=splits,
                    load_balance="reshuffle",
                    prototype_cost_source="measured",
                ),
            )
        for ranks in SEQUENTIAL_RANKS:
            sequential[ranks] = run_pipeline(
                graph, template, 3,
                default_options(
                    num_ranks=TOTAL_RANKS,
                    reload_ranks=ranks,
                    load_balance="reshuffle",
                ),
            )
        return parallel, sequential

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_header("§5.4 — Reloading on smaller deployments (WDC-3, "
                 f"{TOTAL_RANKS} ranks total)")
    rows = []
    base_time = parallel[1].total_simulated_seconds
    for splits in PARALLEL_SPLITS:
        result = parallel[splits]
        rows.append([
            f"parallel x{splits} ({TOTAL_RANKS // splits} ranks each)",
            format_seconds(result.total_simulated_seconds),
            f"{base_time / result.total_simulated_seconds:.2f}x",
        ])
    print("Minimize time-to-solution (parallel prototype search):")
    print(format_table(["deployment", "time", "vs full deployment"], rows))

    rows = []
    base_cpu = (
        sequential[SEQUENTIAL_RANKS[-1]].total_simulated_seconds
        * SEQUENTIAL_RANKS[-1]
    )
    cpu_hours = {}
    for ranks in SEQUENTIAL_RANKS:
        result = sequential[ranks]
        cpu = result.total_simulated_seconds * ranks
        cpu_hours[ranks] = cpu
        rows.append([
            f"{ranks} ranks (sequential)",
            format_seconds(result.total_simulated_seconds),
            f"{cpu:.4f}",
            f"{cpu / base_cpu:.2f}x",
        ])
    print("\nMinimize CPU cost (sequential prototype search):")
    print(format_table(
        ["deployment", "time", "CPU-seconds", "overhead vs smallest"], rows
    ))

    # All configurations agree on results.
    reference = parallel[1].match_vectors
    for result in list(parallel.values()) + list(sequential.values()):
        assert result.match_vectors == reference

    # Shapes: parallel search helps time; small deployments cost fewer
    # CPU-seconds than the full one (paper: 50x between 128 and 2 nodes).
    assert min(
        parallel[s].total_simulated_seconds for s in PARALLEL_SPLITS[1:]
    ) < parallel[1].total_simulated_seconds
    assert cpu_hours[SEQUENTIAL_RANKS[-1]] < cpu_hours[SEQUENTIAL_RANKS[0]]
    print(f"\nCPU-cost overhead of the full deployment over the smallest: "
          f"{cpu_hours[SEQUENTIAL_RANKS[0]] / cpu_hours[SEQUENTIAL_RANKS[-1]]:.1f}x "
          f"(paper: 50x)")
