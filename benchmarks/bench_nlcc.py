"""E-N1 — NLCC microbenchmark: dict token walk vs batched array frontier.

Not a paper figure: this benchmark guards the PR that rebuilt NLCC as a
batched token frontier over the CSR (``core/arraystate.array_token_walk``)
with per-(vertex, hop, initiator) dedup.  Two measurements per workload:

* *token walk* — every non-local constraint of the workload's template
  checked sequentially on a copy of the post-LCC state, dict visitor walk
  (``array_nlcc=False``) vs array frontier (``array_nlcc=True``, including
  the per-constraint dict->CSR->dict round trip, exactly as a
  non-persistent pipeline pays it);
* *pipeline* — the full ``run_pipeline`` end to end, array NLCC off vs on
  (the on-configuration additionally engages the level-persistent array
  state and warm-seeded LCC rounds).

Writes ``BENCH_NLCC.json`` at the repo root.  The acceptance bar is a
>=3x token-walk speedup on NLCC-STRESS (a two-label hub-storm workload)
with *identical* results: per-constraint checked/satisfied/eliminated
counts, walk completions, and the final pruned state must match between
the two modes, so the speedup can never come from doing less checking.
Match counts of the pipeline runs must agree as well.

Methodology: best-of-``REPEATS`` wall time via ``time.perf_counter``
around the constraint loop / pipeline call only, fresh state and engine
per run, both variants on the same cached graph objects, single process.

Run directly (``python benchmarks/bench_nlcc.py``) for the full suite,
``--smoke`` for the CI-sized subset, or via pytest-benchmark.
"""

import json
import platform
import sys
import time
from pathlib import Path

import pytest

from repro.analysis import format_table, speedup
from repro.core import (
    PipelineOptions,
    SearchState,
    generate_constraints,
    local_constraint_checking,
    non_local_constraint_checking,
    run_pipeline,
)
from repro.core.kernels import compile_role_kernel
from repro.core.ordering import order_constraints
from repro.runtime import Engine, MessageStats, PartitionedGraph
from common import DEFAULT_RANKS, nlcc_workloads, print_header

REPEATS = 3
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_NLCC.json"

#: the workload the acceptance bar is pinned to
ACCEPTANCE_WORKLOAD = "NLCC-STRESS"
#: edit distance of the end-to-end pipeline runs
PIPELINE_K = 1
#: pipeline runs are end-to-end minutes in dict mode — time them once
PIPELINE_REPEATS = 1


def _post_lcc_state(graph, template):
    """The shared starting point: LCC fixed point of the initial state."""
    state = SearchState.initial(graph, template)
    engine = Engine(
        PartitionedGraph(graph, DEFAULT_RANKS), MessageStats(DEFAULT_RANKS)
    )
    local_constraint_checking(state, template.graph, engine, array_state=True)
    return state


def _constraints_for(graph, template):
    constraint_set = generate_constraints(template.graph, graph.label_counts())
    constraint_set.non_local = order_constraints(
        constraint_set.non_local, graph.label_counts()
    )
    return constraint_set.non_local


def _run_walk(graph, template, base_state, constraints, array_nlcc):
    """One timed pass over all non-local constraints; returns (wall, digest)."""
    state = base_state.copy()
    kernel = compile_role_kernel(template.graph)
    stats = MessageStats(DEFAULT_RANKS)
    engine = Engine(PartitionedGraph(graph, DEFAULT_RANKS), stats)
    digest = []
    start = time.perf_counter()
    for constraint in constraints:
        result = non_local_constraint_checking(
            state, constraint, engine, recycle=False, kernel=kernel,
            array_nlcc=array_nlcc,
        )
        digest.append((
            constraint.kind,
            len(result.checked),
            len(result.satisfied),
            result.eliminated_roles,
            result.completions,
        ))
    wall = time.perf_counter() - start
    fixpoint = (
        {v: frozenset(r) for v, r in state.candidates.items()},
        frozenset(state.active_edge_list()),
    )
    counters = {
        "completions": sum(d[4] for d in digest),
        "tokens_launched": sum(d[1] for d in digest),
    }
    return wall, counters, (tuple(digest), fixpoint)


def _run_pipeline_once(graph, template, array_nlcc):
    options = PipelineOptions(
        num_ranks=DEFAULT_RANKS, count_matches=True, array_nlcc=array_nlcc
    )
    start = time.perf_counter()
    result = run_pipeline(graph, template, PIPELINE_K, options)
    wall = time.perf_counter() - start
    doc = result.stats_document()
    return wall, {
        "matched_vertices": len(result.match_vectors),
        "match_mappings": result.total_match_mappings(),
        "nlcc": doc["nlcc"],
    }


def run_suite(repeats=REPEATS, workloads=None, pipeline=True):
    """Benchmark every workload x mode; returns the JSON payload."""
    rows = []
    for name, graph_factory, template_factory in (
        workloads or nlcc_workloads()
    ):
        graph = graph_factory()
        template = template_factory()
        base_state = _post_lcc_state(graph, template)
        constraints = _constraints_for(graph, template)

        walk = {}
        digests = {}
        for label, array_nlcc in (("dict", False), ("array", True)):
            best, counters = None, None
            for _ in range(repeats):
                wall, run_counters, digest = _run_walk(
                    graph, template, base_state, constraints, array_nlcc
                )
                if best is None or wall < best:
                    best, counters = wall, run_counters
            walk[label] = dict(wall_seconds=best, **counters)
            digests[label] = digest
        row = {
            "name": name,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "constraints": len(constraints),
            "walk": walk,
            "speedup_array_nlcc": speedup(
                walk["dict"]["wall_seconds"], walk["array"]["wall_seconds"]
            ),
            "results_equal": digests["dict"] == digests["array"],
        }

        if pipeline:
            pipe = {}
            pipe_stats = {}
            for label, array_nlcc in (("dict", False), ("array", True)):
                best, info = None, None
                for _ in range(PIPELINE_REPEATS):
                    wall, run_info = _run_pipeline_once(
                        graph, template, array_nlcc
                    )
                    if best is None or wall < best:
                        best, info = wall, run_info
                pipe[label] = dict(wall_seconds=best, **info)
                pipe_stats[label] = (
                    info["matched_vertices"], info["match_mappings"]
                )
            row["pipeline"] = pipe
            row["speedup_pipeline_nlcc"] = speedup(
                pipe["dict"]["wall_seconds"], pipe["array"]["wall_seconds"]
            )
            row["pipeline_matches_equal"] = (
                pipe_stats["dict"] == pipe_stats["array"]
            )
        rows.append(row)
    return {
        "experiment": "E-N1 NLCC token walk microbenchmark",
        "methodology": {
            "timer": (
                "time.perf_counter around the non-local constraint loop "
                "(token walk) / run_pipeline (end to end) only"
            ),
            "repeats": repeats,
            "pipeline_repeats": PIPELINE_REPEATS,
            "aggregation": "best-of (min wall time per mode)",
            "ranks": DEFAULT_RANKS,
            "pipeline_k": PIPELINE_K,
            "fresh_state_per_run": True,
            "python": platform.python_version(),
            "acceptance": (
                ">=3x array token-walk speedup over the dict walk on "
                "NLCC-STRESS with identical per-constraint results and "
                "final states; identical pipeline match counts"
            ),
        },
        "workloads": rows,
    }


def check_acceptance(payload):
    """Assert the perf bar; returns the acceptance workload's row."""
    for row in payload["workloads"]:
        assert row["results_equal"], f"{row['name']}: walk results diverge"
        if "pipeline" in row:
            assert row["pipeline_matches_equal"], (
                f"{row['name']}: pipeline match counts diverge"
            )
    target = next(
        r for r in payload["workloads"] if r["name"] == ACCEPTANCE_WORKLOAD
    )
    assert target["speedup_array_nlcc"] >= 3.0, (
        f"{target['name']}: array token-walk speedup "
        f"{target['speedup_array_nlcc']:.2f}x < 3x"
    )
    return target


def report(payload):
    rows = []
    for row in payload["workloads"]:
        pipe = row.get("pipeline")
        rows.append([
            row["name"] + (" *" if row["name"] == ACCEPTANCE_WORKLOAD else ""),
            f"{row['vertices']}/{row['edges']}",
            f"{row['walk']['dict']['wall_seconds']:.3f}s",
            f"{row['walk']['array']['wall_seconds']:.3f}s",
            f"{row['speedup_array_nlcc']:.1f}x",
            f"{pipe['dict']['wall_seconds']:.2f}s" if pipe else "-",
            f"{pipe['array']['wall_seconds']:.2f}s" if pipe else "-",
            f"{row['speedup_pipeline_nlcc']:.1f}x" if pipe else "-",
            "yes" if row["results_equal"] else "NO",
        ])
    print(format_table(
        ["workload", "V/E", "walk dict", "walk array", "walk speedup",
         "pipe dict", "pipe array", "pipe speedup", "same results"],
        rows,
    ))
    print("* acceptance workload (>=3x walk speedup)")


@pytest.mark.benchmark(group="nlcc")
def test_nlcc_walk_speedup(benchmark):
    print_header("E-N1 — NLCC: dict token walk vs batched array frontier")
    payload = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    report(payload)
    target = check_acceptance(payload)
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    assert target["speedup_array_nlcc"] >= 3.0


def smoke_suite():
    """The CI-sized subset: acceptance workload, walk only, fewer repeats.

    The end-to-end pipeline runs are minutes in dict mode, so CI guards
    the token-walk speedup and result equality only; pipeline equality is
    covered by the tier-1 equivalence tests.
    """
    workloads = [w for w in nlcc_workloads() if w[0] == ACCEPTANCE_WORKLOAD]
    return run_suite(repeats=2, workloads=workloads, pipeline=False)


def main(argv):
    smoke = "--smoke" in argv
    if smoke:
        payload = smoke_suite()
        report(payload)
        check_acceptance(payload)
        print("smoke OK")
        return 0
    payload = run_suite()
    report(payload)
    check_acceptance(payload)
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
