"""CI guard: the motif census never leaves the array path.

The array takeover removed every capability-based dict fallback — the
only remaining ``array_fallback_reason`` values are the explicit option
switches (role kernel / array state / array NLCC off).  This script runs
the batched 4-motif census with default options on a MOTIF-BATCH-core
shaped graph and fails if any template class reports a fallback reason:
a non-None reason here means a code change silently re-introduced a dict
detour into the census's hot path.

The graph is the G(n, m) core of the MOTIF-BATCH workload without the
triangle dust — the fallback decision is per-template, not per-scale, so
the small graph gives the same verdict in a fraction of the bench gate's
budget.

Run from the repo root::

    PYTHONPATH=src:benchmarks python benchmarks/census_fallback_check.py
"""

import sys

from repro.core import PipelineOptions, count_motifs
from repro.graph.generators.random_labeled import gnm_graph

from common import (
    DEFAULT_RANKS,
    MOTIF_BATCH_CORE_EDGES,
    MOTIF_BATCH_CORE_VERTICES,
)

#: census size — the six connected 4-vertex motifs of §5.6
MOTIF_SIZE = 4


def main() -> int:
    graph = gnm_graph(
        MOTIF_BATCH_CORE_VERTICES, MOTIF_BATCH_CORE_EDGES,
        num_labels=1, seed=23,
    )
    counts = count_motifs(
        graph, MOTIF_SIZE, PipelineOptions(num_ranks=DEFAULT_RANKS),
        batched=True,
    )
    per_class = counts.batch.stats_document()["per_class"]
    failures = []
    for entry in per_class:
        reason = entry["array_fallback_reason"]
        verdict = "array" if reason is None else f"DICT ({reason})"
        print(f"  {entry['name']:<24} {verdict}")
        if reason is not None:
            failures.append(f"{entry['name']}: {reason}")
    if failures:
        print("census fallback check FAILED — dict detours in the census:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"census fallback check OK ({len(per_class)} template classes, "
          "all on the array path)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
