"""E2 — Fig. 6: strong scaling on the WDC-like graph, WDC-1/2/3 patterns.

The paper fixes the WDC graph (257B edges) and scales 64→256 nodes,
reporting time-to-solution broken down by edit-distance level plus the
max-candidate-set time (C) and infrastructure management (S), with
speedups over the smallest deployment on top of each stacked bar
(WDC-1: up to 2.7x, WDC-2: 2x, WDC-3: 2.4x with parallel prototype
search on replicated eight-node deployments).

Here the WDC-like graph is fixed and simulated ranks scale 2→16; WDC-3
additionally runs prototypes in parallel on replica deployments, exactly
as §5.2 describes.
"""

import pytest

from repro.analysis import format_seconds, format_table, speedup
from repro.core import run_pipeline
from repro.core.patterns import wdc1_template, wdc2_template, wdc3_template
from common import default_options, print_header, wdc_background

RANK_COUNTS = [2, 4, 8, 16]

PATTERNS = [
    ("WDC-1", wdc1_template, 2, {}),
    ("WDC-2", wdc2_template, 2, {}),
    # WDC-3: many prototypes -> replicate the pruned graph and search
    # prototypes in parallel (the paper uses eight-node replicas).
    ("WDC-3", wdc3_template, 3, {"parallel_deployments": 2,
                                 "load_balance": "reshuffle"}),
]


def run_configuration(template_factory, k, ranks, extra):
    graph = wdc_background()
    options = default_options(num_ranks=ranks, **extra)
    return run_pipeline(graph, template_factory(), k, options)


@pytest.mark.benchmark(group="fig6-strong-scaling")
@pytest.mark.parametrize("name,template_factory,k,extra",
                         PATTERNS, ids=[p[0] for p in PATTERNS])
def test_fig6_strong_scaling(benchmark, name, template_factory, k, extra):
    results = {}

    def run_all():
        for ranks in RANK_COUNTS:
            results[ranks] = run_configuration(template_factory, k, ranks, extra)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_header(f"Fig. 6 — Strong scaling, {name} (k={k})")
    rows = []
    base = results[RANK_COUNTS[0]].total_simulated_seconds
    for ranks in RANK_COUNTS:
        result = results[ranks]
        per_level = {
            level.distance: level.search_seconds for level in result.levels
        }
        rows.append([
            ranks,
            format_seconds(result.candidate_set_seconds),  # C
            *[format_seconds(per_level.get(d, 0.0)) for d in range(k, -1, -1)],
            format_seconds(result.total_infrastructure_seconds),  # S
            format_seconds(result.total_simulated_seconds),
            f"{speedup(base, result.total_simulated_seconds):.2f}x",
        ])
    headers = (
        ["ranks", "C (M*)"]
        + [f"k={d}" for d in range(k, -1, -1)]
        + ["S (infra)", "total", "speedup"]
    )
    print(format_table(headers, rows))

    # Results identical across deployments; speedup positive and bounded.
    vectors = [results[r].match_vectors for r in RANK_COUNTS]
    assert all(v == vectors[0] for v in vectors)
    final_speedup = speedup(base, results[RANK_COUNTS[-1]].total_simulated_seconds)
    assert final_speedup > 1.0, "no strong-scaling benefit at all"
    assert final_speedup <= RANK_COUNTS[-1] / RANK_COUNTS[0] * 1.5
    print(f"\n{name}: {RANK_COUNTS[-1]}-rank speedup over {RANK_COUNTS[0]} "
          f"ranks = {final_speedup:.2f}x (paper: 2-2.7x over 4x more nodes)")
