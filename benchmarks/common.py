"""Shared workloads and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(§5); DESIGN.md's experiment index maps experiment ids to files.  The
workloads here are the scaled-down counterparts of the paper's datasets
(see DESIGN.md §2 for the substitution rationale); they are cached so the
benchmark session generates each graph once.

Scale-down note: absolute runtimes are simulated seconds from the runtime
cost model; the *shapes* (who wins, how scaling curves bend, where the
crossovers sit) are the reproduction targets, recorded against the paper's
numbers in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import Counter
from functools import lru_cache
from typing import Dict, List, Tuple

from repro.core import PipelineOptions
from repro.core.patterns import (
    imdb1_template,
    rdt1_template,
    rmat1_template,
    wdc1_template,
    wdc2_template,
    wdc3_template,
    wdc4_template,
)
from repro.graph.generators import (
    imdb_graph,
    plant_pattern,
    reddit_graph,
    rmat_graph,
    webgraph,
)

#: ranks used by single-deployment benchmark runs
DEFAULT_RANKS = 8

#: WDC-like background graph size (paper: 3.5B vertices; here ~6K)
WDC_VERTICES = 6000
WDC_LABELS = 300


@lru_cache(maxsize=None)
def wdc_background() -> "Graph":
    """The shared WDC-like webgraph with planted WDC-1..4 instances."""
    graph = webgraph(
        WDC_VERTICES, num_labels=WDC_LABELS, seed=42, label_exponent=1.05
    )
    for template in (wdc1_template(), wdc2_template(), wdc3_template()):
        labels = [template.label(v) for v in sorted(template.graph.vertices())]
        plant_pattern(
            graph, template.edges(), labels, copies=4,
            seed=sum(map(ord, template.name)),
        )
    # WDC-4 (6-clique): plant relaxed copies (k=2 distance) so exploratory
    # search has something to find and exact search stays rare.
    clique = wdc4_template()
    labels = [clique.label(v) for v in sorted(clique.graph.vertices())]
    relaxed = [e for e in clique.edges() if e not in [(0, 1), (2, 3)]]
    plant_pattern(graph, relaxed, labels, copies=2, seed=99)
    return graph


@lru_cache(maxsize=None)
def rmat_background(scale: int = 10):
    """R-MAT graph with the paper's degree-class labels."""
    return rmat_graph(scale=scale, edge_factor=8, seed=5)


@lru_cache(maxsize=None)
def rmat1_for(scale: int = 10):
    """RMAT-1 template using the six most frequent labels of the graph.

    Mirrors the paper: "the template labels used are the most frequent and
    cover ~45% of the vertices in the background graph".
    """
    graph = rmat_background(scale)
    counts = Counter(graph.label(v) for v in graph.vertices())
    top6 = [label for label, _count in counts.most_common(6)]
    return rmat1_template(labels=top6)


@lru_cache(maxsize=None)
def reddit_background():
    return reddit_graph(
        num_authors=900, num_subreddits=30, posts_per_author=1.5,
        comments_per_post=3.0, planted_rdt1=10, seed=20,
    )


@lru_cache(maxsize=None)
def imdb_background():
    return imdb_graph(
        num_movies=250, num_genres=15, num_actresses=250, num_actors=250,
        num_directors=80, cast_size=3, planted_imdb1=5, seed=31,
    )


#: kernel-stress workload size — the *largest* cached workload (E-K1)
KERNEL_STRESS_VERTICES = 8000
KERNEL_STRESS_EDGES = 26000
KERNEL_STRESS_LABELS = 4


@lru_cache(maxsize=None)
def kernel_stress_background():
    """Low-label-diversity G(n, m) graph: the LCC-fixpoint stress workload.

    Four uniform labels over 8K vertices / 26K edges give every vertex a
    multi-role candidate set and a long pruning cascade — the regime the
    bitmask kernels and the semi-naive worklist are built for.
    """
    from repro.graph.generators.random_labeled import gnm_graph

    return gnm_graph(
        KERNEL_STRESS_VERTICES, KERNEL_STRESS_EDGES,
        num_labels=KERNEL_STRESS_LABELS, seed=7,
    )


@lru_cache(maxsize=None)
def kernel_stress_template():
    """8-vertex path with cycling labels: every candidate holds ~2 roles."""
    from repro.core.template import PatternTemplate

    labels = {v: v % KERNEL_STRESS_LABELS for v in range(8)}
    edges = [(v, v + 1) for v in range(7)]
    return PatternTemplate.from_edges(edges, labels, name="stress-path8")


#: CSR-stress workload size — exercises the vectorized array-state path
#: at ~5x the KERNEL-STRESS edge count (E-K1, array_state variant)
CSR_STRESS_VERTICES = 40000
CSR_STRESS_EDGES = 140000


@lru_cache(maxsize=None)
def csr_stress_background():
    """A 40K/140K G(n, m) graph in the KERNEL-STRESS regime.

    Same four-label low-diversity shape as KERNEL-STRESS, scaled until the
    per-round Python overhead of the dict paths dominates — the workload
    the CSR/bit-vector state is built for.
    """
    from repro.graph.generators.random_labeled import gnm_graph

    return gnm_graph(
        CSR_STRESS_VERTICES, CSR_STRESS_EDGES,
        num_labels=KERNEL_STRESS_LABELS, seed=11,
    )


#: WIDE-STRESS workload shape — the multi-word role-mask stressor.
#: The template is a 72-role star (center plus 71 leaves whose labels
#: cycle through 8 classes), so role masks need two uint64 words and the
#: array kernels take the wide (n, n_words) branches everywhere.  Over a
#: dense 9-label G(n, m) graph every leaf-labeled vertex holds ~9 leaf
#: roles — live bits in *both* words — and the star's radius-1 structure
#: converges in a handful of rounds that each touch most of the graph:
#: the dense-round regime where vectorized wide masks beat the per-vertex
#: dict worklist.  Centers survive only where one vertex's neighborhood
#: covers all eight leaf labels, so the fixed point is a non-trivial
#: subset of the graph.
WIDE_STRESS_ROLES = 72
WIDE_STRESS_LEAF_LABELS = 8
WIDE_STRESS_VERTICES = 6000
WIDE_STRESS_EDGES = 60000


@lru_cache(maxsize=None)
def wide_stress_background():
    """Dense 9-label G(n, m) graph (8 leaf labels + the center label)."""
    from repro.graph.generators.random_labeled import gnm_graph

    return gnm_graph(
        WIDE_STRESS_VERTICES, WIDE_STRESS_EDGES,
        num_labels=WIDE_STRESS_LEAF_LABELS + 1, seed=19,
    )


@lru_cache(maxsize=None)
def wide_stress_template():
    """A 72-vertex star with cycling leaf labels: masks span two words."""
    from repro.core.template import PatternTemplate

    labels = {0: WIDE_STRESS_LEAF_LABELS}
    labels.update(
        {v: (v - 1) % WIDE_STRESS_LEAF_LABELS
         for v in range(1, WIDE_STRESS_ROLES)}
    )
    edges = [(0, v) for v in range(1, WIDE_STRESS_ROLES)]
    return PatternTemplate.from_edges(edges, labels, name="stress-wide72")


def kernel_workloads() -> List[Tuple[str, object, object]]:
    """(name, graph factory, template factory) rows for the kernel bench."""
    return [
        ("RMAT-1", rmat_background, rmat1_for),
        ("WDC-1", wdc_background, wdc1_template),
        ("KERNEL-STRESS", kernel_stress_background, kernel_stress_template),
        ("CSR-STRESS", csr_stress_background, kernel_stress_template),
        ("WIDE-STRESS", wide_stress_background, wide_stress_template),
    ]


#: NLCC-stress workload size — token storms through high-degree hubs.
#: Sized so the *dict* walk stays in seconds: token counts scale with
#: (sum of squared degrees / sum of degrees)^walk_hops, so hub degree is
#: the knob that turns this exponential.
NLCC_STRESS_VERTICES = 2000
NLCC_STRESS_EDGES = 6000
NLCC_STRESS_LABELS = 2
NLCC_STRESS_HUBS = 4
NLCC_STRESS_HUB_DEGREE = 150


@lru_cache(maxsize=None)
def nlcc_stress_background():
    """Two-label G(n, m) graph with planted high-degree hubs.

    Two labels mean every vertex holds several candidate roles of the C4
    template below, and each hub fans every incoming token out ~150 ways —
    the combinatorial token-storm regime the batched array frontier's
    per-(vertex, hop, initiator) dedup fold is built to collapse.
    """
    import numpy as np

    from repro.graph.generators.random_labeled import gnm_graph

    graph = gnm_graph(
        NLCC_STRESS_VERTICES, NLCC_STRESS_EDGES,
        num_labels=NLCC_STRESS_LABELS, seed=13,
    )
    rng = np.random.default_rng(17)
    hubs = rng.choice(NLCC_STRESS_VERTICES, size=NLCC_STRESS_HUBS, replace=False)
    for hub in hubs.tolist():
        spokes = rng.choice(
            NLCC_STRESS_VERTICES, size=NLCC_STRESS_HUB_DEGREE, replace=False
        )
        for v in spokes.tolist():
            if v != hub and not graph.has_edge(hub, v):
                graph.add_edge(hub, v)
    return graph


@lru_cache(maxsize=None)
def nlcc_stress_template():
    """A C4 with mirrored repeated labels (0-1-1-0).

    The 4-cycle yields length-5 closed-walk cycle constraints whose hop-3
    frontier has two free path positions; because those two positions
    carry the *same* label, interior vertices can appear in either order
    and the per-(vertex, hop, initiator) dedup fold actually merges the
    swapped rows (alternating labels would make the free positions
    label-distinct and the fold a no-op).  The repeated labels also
    trigger path constraints and the full-walk TDS check.
    """
    from repro.core.template import PatternTemplate

    labels = {0: 0, 1: 1, 2: 1, 3: 0}
    edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
    return PatternTemplate.from_edges(edges, labels, name="stress-c4")


def nlcc_workloads() -> List[Tuple[str, object, object]]:
    """(name, graph factory, template factory) rows for the NLCC bench."""
    return [
        ("WDC-1", wdc_background, wdc1_template),
        ("NLCC-STRESS", nlcc_stress_background, nlcc_stress_template),
    ]


#: CASCADE-STRESS workload shape — the semi-naive worklist stressor.
#: Open label-paths 0-1-2-3 die under the C4 template in a class-by-class
#: elimination wave: round 1 kills both endpoints of every path at once,
#: queueing *all* surviving path middles for re-evaluation.  That wave
#: flows entirely through the fixpoint's witness-loss (``pending``) queue
#: — the broadcaster set stays empty — so the round-2 worklist covers
#: ~5/6 of the surviving scope and the adaptive dense/sparse switch has a
#: workload where running dense is the right call.  The planted true
#: 4-cycles survive everything and keep the match set non-empty.
CASCADE_STRESS_PATHS = 1000
CASCADE_STRESS_CYCLES = 100


@lru_cache(maxsize=None)
def cascade_stress_background():
    """Disjoint open label-paths plus planted 4-cycles (see above)."""
    from repro.graph import Graph

    graph = Graph()
    next_vertex = 0
    for _ in range(CASCADE_STRESS_PATHS):
        chain = list(range(next_vertex, next_vertex + 4))
        for offset, vertex in enumerate(chain):
            graph.add_vertex(vertex, offset)
        for u, v in zip(chain, chain[1:]):
            graph.add_edge(u, v)
        next_vertex += 4
    for _ in range(CASCADE_STRESS_CYCLES):
        ring = list(range(next_vertex, next_vertex + 4))
        for offset, vertex in enumerate(ring):
            graph.add_vertex(vertex, offset)
        for u, v in zip(ring, ring[1:] + ring[:1]):
            graph.add_edge(u, v)
        next_vertex += 4
    return graph


@lru_cache(maxsize=None)
def cascade_stress_template():
    """A C4 with four distinct labels: open paths fail its closure."""
    from repro.core.template import PatternTemplate

    labels = {0: 0, 1: 1, 2: 2, 3: 3}
    edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
    return PatternTemplate.from_edges(edges, labels, name="stress-cascade")


#: MOTIF-BATCH workload shape — a small unlabeled core surrounded by
#: "dust": thousands of sub-motif-sized components that no 4-vertex motif
#: can touch, but that every per-template pipeline must scan end to end
#: (single label + degree >= 2 everywhere keeps dust alive through ``M*``
#: and LCC; only the token walks rule it out).  Dust carries ~180x the
#: core's edges, so a census that runs six independent pipelines pays the
#: full graph six times while the batched executor pays it once (the
#: deepest level) and finishes on the core-only auxiliary view.
MOTIF_BATCH_CORE_VERTICES = 100
MOTIF_BATCH_CORE_EDGES = 250
MOTIF_BATCH_DUST_TRIANGLES = 15000
MOTIF_BATCH_PLANTED_CLIQUES = 4


@lru_cache(maxsize=None)
def motif_batch_background():
    """Single-label core + triangle dust: the batched-census workload.

    The G(n, m) core holds the actual 4-vertex motif population (plus a
    few planted 4-cliques so the densest motif count is non-zero); each
    dust component is a 3-vertex triangle — connected, degree 2
    everywhere, so neither ``M*`` nor LCC can discard it — that cannot
    contain any connected 4-vertex subgraph (every connected graph on
    >= 4 vertices contains a P4 or a 3-star, so any larger component
    would survive the deepest level and leak into the auxiliary view).
    Only the bottom-up sweep's token walks discover the dust is barren,
    which is exactly the per-template redundancy the template-library
    batch executor amortizes across the census.
    """
    from repro.graph.generators.random_labeled import gnm_graph

    graph = gnm_graph(
        MOTIF_BATCH_CORE_VERTICES, MOTIF_BATCH_CORE_EDGES,
        num_labels=1, seed=23,
    )
    clique_edges = [(u, v) for u in range(4) for v in range(u + 1, 4)]
    plant_pattern(
        graph, clique_edges, [0, 0, 0, 0],
        copies=MOTIF_BATCH_PLANTED_CLIQUES, seed=29,
    )
    next_vertex = MOTIF_BATCH_CORE_VERTICES
    for _ in range(MOTIF_BATCH_DUST_TRIANGLES):
        a, b, c = next_vertex, next_vertex + 1, next_vertex + 2
        for vertex in (a, b, c):
            graph.add_vertex(vertex, 0)
        graph.add_edge(a, b)
        graph.add_edge(b, c)
        graph.add_edge(c, a)
        next_vertex += 3
    return graph


def default_options(**overrides) -> PipelineOptions:
    """The fully-optimized HGT configuration used across benchmarks."""
    base = dict(num_ranks=DEFAULT_RANKS)
    base.update(overrides)
    return PipelineOptions(**base)


#: (name, graph factory, template factory, k) rows of the Fig. 7 comparison
def figure7_workloads() -> List[Tuple[str, object, object, int]]:
    return [
        ("RMAT-1", rmat_background, rmat1_for, 2),
        ("WDC-1", wdc_background, wdc1_template, 2),
        ("WDC-2", wdc_background, wdc2_template, 2),
        ("WDC-3", wdc_background, wdc3_template, 3),
        ("RDT-1", reddit_background, rdt1_template, 1),
        ("IMDB-1", imdb_background, imdb1_template, 2),
    ]


def print_header(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)
