"""E13 — prototype-count ground truth (Figs. 3, 4, 5; §5.5).

The paper pins exact prototype counts for several templates; they are hard
correctness anchors for the generation machinery:

* Fig. 3(a): the triangle+square template → 7 at k=1, 12 at k=2;
* Fig. 4: RMAT-1 → 24 prototypes total, 16 at k=2, disconnects beyond;
* Fig. 5: WDC-3 → 61 prototypes at k=3, 100+ within k=4;
* §5.5: the 6-Clique → 1,941 within k=4 (1,365 at k=4);
* §5.6: 2 three-vertex motifs, 6 four-vertex motifs.

This benchmark regenerates the counts (and times generation, which must
stay fast even for the 1,941-prototype clique sweep).
"""

import pytest

from repro.analysis import format_table
from repro.core import generate_prototypes
from repro.core.patterns import (
    imdb1_template,
    rdt1_template,
    rmat1_template,
    wdc1_template,
    wdc2_template,
    wdc3_template,
    wdc4_template,
)
from repro.core.motifs import motif_prototypes
from common import print_header

EXPECTED = {
    # name: (factory, k, expected level counts)
    "WDC-1 (Fig.3 shape)": (wdc1_template, 2, [1, 7, 12]),
    "RMAT-1": (rmat1_template, 2, [1, 7, 16]),
    "WDC-2": (wdc2_template, 2, [1, 7, 15]),
    "WDC-3": (wdc3_template, 4, [1, 9, 33, 61, 52]),
    "WDC-4 (6-Clique)": (wdc4_template, 4, [1, 15, 105, 455, 1365]),
    "RDT-1": (rdt1_template, 1, [1, 4]),
    "IMDB-1": (imdb1_template, 2, [1, 3, 3]),
}


@pytest.mark.benchmark(group="prototype-generation")
def test_prototype_counts(benchmark):
    generated = {}

    def run_all():
        for name, (factory, k, _expected) in EXPECTED.items():
            generated[name] = generate_prototypes(factory(), k)
        generated["3-motifs"] = motif_prototypes(3)
        generated["4-motifs"] = motif_prototypes(4)
        return generated

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_header("Prototype-count ground truth (Figs. 3/4/5, §5.5, §5.6)")
    rows = []
    for name, (factory, k, expected) in EXPECTED.items():
        counts = generated[name].level_counts()
        rows.append([name, k, counts, sum(counts), counts == expected])
        assert counts == expected, f"{name}: {counts} != {expected}"
    rows.append(["3-motifs", 1, generated["3-motifs"].level_counts(),
                 len(generated["3-motifs"]), len(generated["3-motifs"]) == 2])
    rows.append(["4-motifs", 3, generated["4-motifs"].level_counts(),
                 len(generated["4-motifs"]), len(generated["4-motifs"]) == 6])
    print(format_table(
        ["template", "k", "per-level counts", "total", "matches paper"], rows
    ))
    assert len(generated["3-motifs"]) == 2
    assert len(generated["4-motifs"]) == 6
    assert len(generated["WDC-4 (6-Clique)"]) == 1941
