"""E9 — §5.6 table: motif counting, HGT vs Arabesque.

The paper counts 3- and 4-vertex motifs on CiteSeer/Mico/Patent/Youtube/
LiveJournal with both systems on 20 nodes.  HGT wins everywhere (0.02s vs
9.2s on CiteSeer 3-motifs, up to hours-vs-minutes on the larger graphs),
and Arabesque dies with OOM on LiveJournal 4-motifs after an hour —
it replicates the graph per worker and materializes the embedding frontier.

The scaled-down stand-ins preserve the size/density ordering; the
simulated "cluster memory budget" is set so the densest stand-in's 4-motif
frontier exceeds it, reproducing the OOM row.  Both systems' counts are
cross-checked for equality wherever Arabesque survives.
"""

import pytest

from repro.analysis import format_bytes, format_seconds, format_table, speedup
from repro.baselines import arabesque_count_motifs
from repro.core import count_motifs
from repro.errors import MemoryLimitExceeded
from repro.graph.generators import suite_graph
from repro.graph.generators.suite import SUITE_SHAPES
from repro.graph.isomorphism import canonical_form
from common import DEFAULT_RANKS, default_options, print_header

#: simulated cluster memory budget — sized so every 3-motif run and all
#: 4-motif runs except the densest graph's fit (the paper's single-node
#: memory wall that OOMs Arabesque on LiveJournal 4-motifs)
MEMORY_BUDGET_BYTES = 8_000_000

#: paper-reported times for the same cells, for the EXPERIMENTS.md record
PAPER_TIMES = {
    ("citeseer", 3): ("9.2s", "0.02s"),
    ("mico", 3): ("34.0s", "11.0s"),
    ("patent", 3): ("2.9min", "1.6s"),
    ("youtube", 3): ("40min", "12.7s"),
    ("livejournal", 3): ("11min", "10.3s"),
    ("citeseer", 4): ("11.8s", "0.03s"),
    ("mico", 4): ("3.4hr", "57min"),
    ("patent", 4): ("3.3hr", "2.3min"),
    ("youtube", 4): ("7hr+", "34min"),
    ("livejournal", 4): ("OOM", "1.3hr"),
}


@pytest.mark.benchmark(group="t56-arabesque")
@pytest.mark.parametrize("size", [3, 4], ids=["3-motif", "4-motif"])
def test_arabesque_comparison(benchmark, size):
    rows = []
    outcomes = {}

    def run_all():
        for name in SUITE_SHAPES:
            graph = suite_graph(name)
            hgt = count_motifs(graph, size, default_options())
            try:
                arabesque = arabesque_count_motifs(
                    graph, size,
                    num_ranks=DEFAULT_RANKS,
                    memory_limit_bytes=MEMORY_BUDGET_BYTES,
                )
            except MemoryLimitExceeded as oom:
                outcomes[name] = (hgt, None, oom)
                continue
            outcomes[name] = (hgt, arabesque, None)
        return outcomes

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    oom_rows = []
    for name in SUITE_SHAPES:
        hgt, arabesque, oom = outcomes[name]
        paper_arabesque, paper_hgt = PAPER_TIMES[(name, size)]
        if oom is not None:
            oom_rows.append(name)
            rows.append([
                name, "OOM", format_seconds(hgt.result.total_simulated_seconds),
                "-", paper_arabesque, paper_hgt,
            ])
            continue
        # Cross-check per-motif induced counts between the two systems.
        ours = {
            canonical_form(p.graph): hgt.induced[p.id] for p in hgt.prototypes
        }
        for key, value in arabesque.counts.items():
            assert ours[key] == value, f"{name}: count mismatch"
        assert hgt.total_induced() == arabesque.total_embeddings()
        rows.append([
            name,
            format_seconds(arabesque.simulated_seconds),
            format_seconds(hgt.result.total_simulated_seconds),
            f"{speedup(arabesque.simulated_seconds, hgt.result.total_simulated_seconds):.1f}x",
            paper_arabesque,
            paper_hgt,
        ])

    print_header(f"§5.6 — {size}-motif counting: Arabesque vs HGT "
                 f"(budget {format_bytes(MEMORY_BUDGET_BYTES)})")
    print(format_table(
        ["graph", "arabesque", "HGT", "HGT speedup",
         "paper:arabesque", "paper:HGT"],
        rows,
    ))

    if size == 4:
        assert "livejournal" in oom_rows, (
            "the densest stand-in must reproduce the paper's OOM row"
        )
    else:
        assert not oom_rows, "3-motif runs all fit in the paper's budget"
    # HGT never OOMs and wins clearly on the small sparse graphs.
    hgt_citeseer = outcomes["citeseer"][0].result.total_simulated_seconds
    arabesque_citeseer = outcomes["citeseer"][1].simulated_seconds
    assert speedup(arabesque_citeseer, hgt_citeseer) > 3.0
