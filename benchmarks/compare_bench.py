"""Regression gate: diff fresh benchmark runs against tracked history.

``BENCH_HISTORY.jsonl`` (repo root) is an append-only log of the tracked
speedup ratios, one JSON entry per gate run, keyed by git commit.  This
script reruns the CI-sized smoke subsets of ``bench_kernels.py`` and
``bench_nlcc.py``, compares the *ratios* — not absolute wall times, which
vary across machines — against the most recent history entry (falling
back to the committed ``BENCH_KERNELS.json`` / ``BENCH_NLCC.json`` when
the history is empty), and appends the fresh ratios to the history on a
passing run:

* ``speedup_kernel_delta``   (kernel+delta over baseline),
* ``speedup_array_vs_delta`` (array over kernel+delta),
* ``visit_reduction_delta``  (delta's visitor-count saving),
* ``speedup_array_nlcc``     (array token frontier over the dict walk),
* ``speedup_shm_pool``       (shm-bitmap pool over dict-payload pool,
  end to end — ``bench_parallel.py``),
* ``speedup_batched_census`` (template-library batched motif census over
  the per-template pipeline loop — ``bench_batch.py``),
* ``speedup_wide_mask``      (multi-word-mask array fixpoint over
  kernel+delta on the 72-role WIDE-STRESS workload),
* ``speedup_array_enum``     (vectorized match enumeration over dict
  backtracking on the ENUM-STRESS row).

Each appended entry also records a ``metrics`` block of headline derived
metrics (NLCC cache hit ratio, dense-round fraction, adaptive dense
rounds, mean worklist density) from one instrumented CASCADE-STRESS
pipeline run — informational trend data from the always-on registry, not
gated.

A tracked ratio regressing by more than ``--tolerance`` (default 25%)
relative to its baseline value fails the gate; improvements always pass.
End-to-end pool wall clocks are scheduler-noisy on shared runners, so
``speedup_shm_pool`` gets a relaxed per-field tolerance (see
``RELAXED_TOLERANCE``); the deterministic >=10x payload-bytes bar
asserted by ``bench_parallel``'s own smoke run is the hard guard for
that subsystem.
Workloads present in only one of the two payloads are reported but do not
fail (the baseline may predate a new workload), and a ratio that neither
payload carries for a workload is skipped silently (the kernel and NLCC
benches track disjoint ratio sets).  Fixed-point/result equality and the
absolute >=2x / >=3x acceptance bars are asserted by the smoke runs
themselves before any comparison happens.

Run from the repo root::

    PYTHONPATH=src:benchmarks python benchmarks/compare_bench.py [--tolerance 0.25]
"""

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

from repro.analysis import format_table

from bench_kernels import OUTPUT as COMMITTED, check_acceptance, smoke_suite
from bench_nlcc import (
    OUTPUT as NLCC_COMMITTED,
    check_acceptance as nlcc_check_acceptance,
    smoke_suite as nlcc_smoke_suite,
)
from bench_parallel import (
    OUTPUT as PARALLEL_COMMITTED,
    check_acceptance as parallel_check_acceptance,
    smoke_suite as parallel_smoke_suite,
)
from bench_batch import (
    OUTPUT as BATCH_COMMITTED,
    check_acceptance as batch_check_acceptance,
    smoke_suite as batch_smoke_suite,
)

#: row-level ratio fields the gate tracks (higher is better for all)
TRACKED = ["speedup_kernel_delta", "speedup_array_vs_delta",
           "visit_reduction_delta", "speedup_array_nlcc",
           "speedup_shm_pool", "speedup_batched_census",
           "speedup_wide_mask", "speedup_array_enum"]

#: per-field minimum tolerance overrides for noise-dominated ratios
RELAXED_TOLERANCE = {"speedup_shm_pool": 0.60,
                     "speedup_batched_census": 0.60}

#: append-only ratio log, one JSON entry per passing gate run
HISTORY = Path(__file__).resolve().parents[1] / "BENCH_HISTORY.jsonl"

DEFAULT_TOLERANCE = 0.25


def _git_commit() -> str:
    """Short HEAD hash, or ``"unknown"`` outside a git checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
            cwd=Path(__file__).resolve().parents[1],
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


#: headline derived metrics recorded (not gated) with each history entry
HEADLINE_METRICS = ["nlcc_cache_hit_ratio", "dense_round_fraction",
                    "adaptive_dense_rounds", "mean_worklist_density"]


def headline_metrics() -> dict:
    """Headline ratios from one instrumented CASCADE-STRESS pipeline run.

    The cascade workload is the dense-round switch's reference workload
    (see ``common.cascade_stress_background``), so its dense-round
    fraction moving is the signal this block exists to make visible; the
    ``k=1`` sweep gives work recycling real NLCC cache traffic too.
    """
    from repro.analysis.metricsreport import derived_metrics
    from repro.core import PipelineOptions
    from repro.core.pipeline import run_pipeline

    from common import (
        DEFAULT_RANKS,
        cascade_stress_background,
        cascade_stress_template,
    )

    options = PipelineOptions(num_ranks=DEFAULT_RANKS)
    run_pipeline(
        cascade_stress_background(), cascade_stress_template(), 1, options
    )
    derived = derived_metrics(options.metrics.snapshot())
    return {name: derived[name] for name in HEADLINE_METRICS}


def history_entry(payload: dict, commit: str = None) -> dict:
    """Trim a bench payload to the commit-keyed tracked-ratio record."""
    return {
        "commit": commit if commit is not None else _git_commit(),
        "recorded_unix": time.time(),
        "workloads": [
            # only the ratios a row actually carries: the kernel and NLCC
            # benches track disjoint sets, and a None would read as a
            # perpetually-missing field in later comparisons
            {"name": row["name"],
             **{f: row[f] for f in TRACKED if row.get(f) is not None}}
            for row in payload["workloads"]
        ],
    }


def load_history(path: Path) -> list:
    """All history entries, oldest first; [] when the file is absent."""
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        if line.strip():
            entries.append(json.loads(line))
    return entries


def append_history(path: Path, entry: dict) -> None:
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry) + "\n")


def compare(baseline: dict, fresh: dict, tolerance: float):
    """Diff tracked ratios per workload; returns (table_rows, failures)."""
    committed_rows = {r["name"]: r for r in baseline["workloads"]}
    fresh_rows = {r["name"]: r for r in fresh["workloads"]}
    rows, failures = [], []
    for name, fresh_row in fresh_rows.items():
        base_row = committed_rows.get(name)
        if base_row is None:
            rows.append([name, "-", "-", "-", "new workload (not committed)"])
            continue
        for field in TRACKED:
            was = base_row.get(field)
            now = fresh_row.get(field)
            if was is None and now is None:
                continue  # ratio not applicable to this workload's bench
            if was is None or now is None:
                rows.append([name, field, str(was), str(now),
                             "field missing (not compared)"])
                continue
            field_tolerance = max(
                tolerance, RELAXED_TOLERANCE.get(field, 0.0)
            )
            floor = was * (1.0 - field_tolerance)
            ok = now >= floor
            rows.append([
                name, field, f"{was:.2f}", f"{now:.2f}",
                "ok" if ok else f"REGRESSED below {floor:.2f}",
            ])
            if not ok:
                failures.append(
                    f"{name}.{field}: {now:.2f} < {floor:.2f} "
                    f"(committed {was:.2f}, tolerance {field_tolerance:.0%})"
                )
    for name in committed_rows:
        if name not in fresh_rows:
            rows.append([name, "-", "-", "-", "missing from fresh run"])
    return rows, failures


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed relative drop per tracked ratio (default: 0.25)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=COMMITTED,
        help="committed benchmark JSON fallback when the history is empty",
    )
    parser.add_argument(
        "--history", type=Path, default=HISTORY,
        help="tracked ratio history (JSONL, appended to on a passing run)",
    )
    parser.add_argument(
        "--no-append", action="store_true",
        help="compare only; do not append this run to the history",
    )
    args = parser.parse_args(argv)

    history = load_history(args.history)
    if history:
        last = history[-1]
        baseline = {"workloads": last["workloads"]}
        baseline_label = f"history entry {last.get('commit', '?')}"
    elif args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())
        baseline_label = str(args.baseline)
        for committed in (NLCC_COMMITTED, PARALLEL_COMMITTED,
                          BATCH_COMMITTED):
            if committed.exists():
                extra = json.loads(committed.read_text())
                baseline["workloads"] = (
                    baseline["workloads"] + extra["workloads"]
                )
                baseline_label += f" + {committed}"
    else:
        print(f"no history at {args.history} and no committed baseline at "
              f"{args.baseline}; nothing to gate")
        return 1

    fresh = smoke_suite()
    check_acceptance(fresh)
    # The NLCC smoke covers only NLCC-STRESS, the parallel smoke only
    # SHM-prefixed rows and the batch smoke only MOTIF-BATCH, so the
    # merged payload never collides on names.
    fresh_nlcc = nlcc_smoke_suite()
    nlcc_check_acceptance(fresh_nlcc)
    fresh_parallel = parallel_smoke_suite()
    parallel_check_acceptance(fresh_parallel)
    fresh_batch = batch_smoke_suite()
    batch_check_acceptance(fresh_batch)
    fresh = {
        "workloads": (
            fresh["workloads"]
            + fresh_nlcc["workloads"]
            + fresh_parallel["workloads"]
            + fresh_batch["workloads"]
        )
    }

    rows, failures = compare(baseline, fresh, args.tolerance)
    print(f"baseline: {baseline_label}")
    print(format_table(
        ["workload", "ratio", "baseline", "fresh", "verdict"], rows
    ))
    if failures:
        print("\nregression gate FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"\nregression gate OK (tolerance {args.tolerance:.0%})")
    if not args.no_append:
        entry = history_entry(fresh)
        entry["metrics"] = headline_metrics()
        append_history(args.history, entry)
        print(f"ratios appended to {args.history} "
              f"(commit {entry['commit']}, {len(history) + 1} entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
