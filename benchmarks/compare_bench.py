"""Regression gate: diff a fresh kernel-bench run against the committed one.

``BENCH_KERNELS.json`` (repo root) records the speedup ratios the kernel
PRs were accepted with.  This script reruns the CI-sized smoke subset of
``bench_kernels.py`` and compares the *ratios* — not absolute wall times,
which vary across machines — against the committed baseline:

* ``speedup_kernel_delta``   (kernel+delta over baseline),
* ``speedup_array_vs_delta`` (array over kernel+delta),
* ``visit_reduction_delta``  (delta's visitor-count saving).

A tracked ratio regressing by more than ``--tolerance`` (default 25%)
relative to its committed value fails the gate; improvements always pass.
Workloads present in only one of the two payloads are reported but do not
fail (the committed file may predate a new workload).  Fixed-point
equality and the absolute >=2x acceptance bars are asserted by the smoke
run itself before any comparison happens.

Run from the repo root::

    PYTHONPATH=src:benchmarks python benchmarks/compare_bench.py [--tolerance 0.25]
"""

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import format_table

from bench_kernels import OUTPUT as COMMITTED, check_acceptance, smoke_suite

#: row-level ratio fields the gate tracks (higher is better for all)
TRACKED = ["speedup_kernel_delta", "speedup_array_vs_delta",
           "visit_reduction_delta"]

DEFAULT_TOLERANCE = 0.25


def compare(committed: dict, fresh: dict, tolerance: float):
    """Diff tracked ratios per workload; returns (table_rows, failures)."""
    committed_rows = {r["name"]: r for r in committed["workloads"]}
    fresh_rows = {r["name"]: r for r in fresh["workloads"]}
    rows, failures = [], []
    for name, fresh_row in fresh_rows.items():
        base_row = committed_rows.get(name)
        if base_row is None:
            rows.append([name, "-", "-", "-", "new workload (not committed)"])
            continue
        for field in TRACKED:
            was = base_row.get(field)
            now = fresh_row.get(field)
            if was is None or now is None:
                rows.append([name, field, str(was), str(now),
                             "field missing (not compared)"])
                continue
            floor = was * (1.0 - tolerance)
            ok = now >= floor
            rows.append([
                name, field, f"{was:.2f}", f"{now:.2f}",
                "ok" if ok else f"REGRESSED below {floor:.2f}",
            ])
            if not ok:
                failures.append(
                    f"{name}.{field}: {now:.2f} < {floor:.2f} "
                    f"(committed {was:.2f}, tolerance {tolerance:.0%})"
                )
    for name in committed_rows:
        if name not in fresh_rows:
            rows.append([name, "-", "-", "-", "missing from fresh run"])
    return rows, failures


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed relative drop per tracked ratio (default: 0.25)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=COMMITTED,
        help="committed benchmark JSON to compare against",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"no committed baseline at {args.baseline}; nothing to gate")
        return 1
    committed = json.loads(args.baseline.read_text())

    fresh = smoke_suite()
    check_acceptance(fresh)

    rows, failures = compare(committed, fresh, args.tolerance)
    print(format_table(
        ["workload", "ratio", "committed", "fresh", "verdict"], rows
    ))
    if failures:
        print("\nregression gate FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"\nregression gate OK (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
