"""E11 — Fig. 11: memory usage of topology vs algorithm state.

Fig. 11(a): on the WDC graph, ~86% of memory stores the CSR topology and
~14% the statically allocated algorithm state (match vectors, candidate
bitsets, per-edge active bitsets, satisfied-constraint sets, rank map) at
the 32-prototype/32-vertex/32-constraint sizing.

Fig. 11(b): cluster-wide *peak* usage for WDC-2 — the naïve approach vs
HGT's candidate-set phase (HGT-C) and prototype-search phase (HGT-P),
broken into topology / static / dynamic (message queues).  HGT-P's dynamic
state shrinks ~4.6x against the naïve approach because the queues operate
on the pruned graph.
"""

import pytest

from repro.analysis import (
    format_bytes,
    format_table,
    memory_breakdown,
    relative_breakdown,
)
from repro.analysis.memory import MESSAGE_BYTES, static_state_bytes, topology_bytes
from repro.core import naive_search, run_pipeline
from repro.core.patterns import wdc2_template
from common import DEFAULT_RANKS, default_options, print_header, wdc_background


@pytest.mark.benchmark(group="fig11-memory")
def test_fig11a_relative_breakdown(benchmark):
    graph = benchmark.pedantic(wdc_background, rounds=1, iterations=1)
    breakdown = memory_breakdown(graph)
    fractions = relative_breakdown(breakdown)

    print_header("Fig. 11(a) — relative memory: topology vs algorithm state")
    print(format_table(
        ["category", "bytes", "fraction"],
        [
            ["topology (CSR)", format_bytes(breakdown["topology"]),
             f"{fractions['topology']:.1%}"],
            ["static state", format_bytes(breakdown["static"]),
             f"{fractions['static']:.1%}"],
        ],
    ))
    print("\n(paper: ~86% topology, ~14% algorithm state)")
    assert 0.6 < fractions["topology"] < 0.95


@pytest.mark.benchmark(group="fig11-memory")
def test_fig11b_peak_memory_comparison(benchmark):
    graph = wdc_background()
    template = wdc2_template()
    results = {}

    def run_all():
        results["hgt"] = run_pipeline(graph, template, 2, default_options())
        results["naive"] = naive_search(graph, template, 2, default_options())
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    hgt, nve = results["hgt"], results["naive"]

    topology = topology_bytes(graph)
    static = static_state_bytes(graph)

    def dynamic_bytes(result):
        peak = result.message_summary["peak_interval_messages"]
        return peak * DEFAULT_RANKS * MESSAGE_BYTES

    # HGT-C: candidate-set phase operates on the full graph's queues; the
    # prototype phase (HGT-P) only on the pruned graph's.
    rows = []
    naive_dynamic = dynamic_bytes(nve)
    hgt_dynamic = dynamic_bytes(hgt)
    for name, dynamic in (
        ("naive", naive_dynamic),
        ("HGT (C + P peak)", hgt_dynamic),
    ):
        rows.append([
            name,
            format_bytes(topology),
            format_bytes(static),
            format_bytes(dynamic),
            format_bytes(topology + static + dynamic),
        ])
    print_header("Fig. 11(b) — peak memory, naïve vs HGT (WDC-2)")
    print(format_table(
        ["system", "topology", "static", "dynamic (queues)", "total"], rows
    ))
    improvement = naive_dynamic / max(hgt_dynamic, 1)
    print(f"\nDynamic-state improvement: {improvement:.2f}x (paper: ~4.6x "
          f"for the prototype-search phase)")
    assert hgt_dynamic <= naive_dynamic, (
        "pruning must not enlarge peak queue state"
    )
