"""E-K1 — kernel microbenchmark: baseline vs bitmask vs bitmask+delta LCC.

Not a paper figure: this benchmark guards the PR that introduced the
bitmask role kernels (``core/kernels.py``).  It times the full LCC
fixpoint (``local_constraint_checking``) on the cached workloads of
``common.py`` under three configurations

* ``baseline``       — the set-based reference path (``role_kernel=False``),
* ``kernel``         — bitmask tables, all-vertex rounds (``delta=False``),
* ``kernel+delta``   — bitmask tables plus the semi-naive worklist,

and writes ``BENCH_KERNELS.json`` at the repo root.  The acceptance bar is
a >=2x wall-time speedup of ``kernel+delta`` over ``baseline`` on the
largest cached workload (KERNEL-STRESS) together with a reduced visitor
count; fixed-point equality across all three variants is asserted on
every workload, so a speedup can never come from doing less pruning.

Methodology: best-of-``REPEATS`` wall time via ``time.perf_counter``
around the fixpoint call only (graph/template construction excluded), a
fresh ``SearchState``/``Engine``/``MessageStats`` per run, all variants on
the same cached graph objects, single process, no warmup beyond the
repeats themselves.

Run directly (``python benchmarks/bench_kernels.py``) for the full suite,
``--smoke`` for the CI-sized subset, or via pytest-benchmark as part of
the harness session.
"""

import json
import platform
import sys
import time
from pathlib import Path

import pytest

from repro.analysis import format_table, speedup
from repro.core import SearchState, local_constraint_checking
from repro.runtime import Engine, MessageStats, PartitionedGraph
from common import DEFAULT_RANKS, kernel_workloads, print_header

REPEATS = 3
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_KERNELS.json"

VARIANTS = [
    ("baseline", dict(role_kernel=False, delta=False)),
    ("kernel", dict(role_kernel=True, delta=False)),
    ("kernel+delta", dict(role_kernel=True, delta=True)),
]


def _run_once(graph, template, config):
    """One timed LCC fixpoint run; returns (wall, counters, fixpoint)."""
    state = SearchState.initial(graph, template)
    stats = MessageStats(DEFAULT_RANKS)
    engine = Engine(PartitionedGraph(graph, DEFAULT_RANKS), stats)
    start = time.perf_counter()
    iterations = local_constraint_checking(
        state, template.graph, engine, **config
    )
    wall = time.perf_counter() - start
    counters = {
        "iterations": iterations,
        "messages": stats.total_messages,
        "visits": stats.total_visits,
    }
    fixpoint = (
        {v: frozenset(r) for v, r in state.candidates.items()},
        frozenset(state.active_edge_list()),
    )
    return wall, counters, fixpoint


def run_suite(repeats=REPEATS, workloads=None):
    """Benchmark every workload x variant; returns the JSON payload."""
    rows = []
    for name, graph_factory, template_factory in (
        workloads or kernel_workloads()
    ):
        graph = graph_factory()
        template = template_factory()
        variants = {}
        fixpoints = {}
        for label, config in VARIANTS:
            best, counters = None, None
            for _ in range(repeats):
                wall, run_counters, fixpoint = _run_once(
                    graph, template, config
                )
                if best is None or wall < best:
                    best, counters = wall, run_counters
            variants[label] = dict(wall_seconds=best, **counters)
            fixpoints[label] = fixpoint
        base = variants["baseline"]
        rows.append({
            "name": name,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "template_roles": template.graph.num_vertices,
            "variants": variants,
            "speedup_kernel": speedup(
                base["wall_seconds"], variants["kernel"]["wall_seconds"]
            ),
            "speedup_kernel_delta": speedup(
                base["wall_seconds"], variants["kernel+delta"]["wall_seconds"]
            ),
            "visit_reduction_delta": (
                1 - variants["kernel+delta"]["visits"] / base["visits"]
                if base["visits"] else 0.0
            ),
            "fixpoint_equal": all(
                fp == fixpoints["baseline"] for fp in fixpoints.values()
            ),
        })
    largest = max(rows, key=lambda row: row["vertices"])
    for row in rows:
        row["largest"] = row is largest
    return {
        "experiment": "E-K1 kernel LCC fixpoint microbenchmark",
        "methodology": {
            "timer": "time.perf_counter around local_constraint_checking only",
            "repeats": repeats,
            "aggregation": "best-of (min wall time per variant)",
            "ranks": DEFAULT_RANKS,
            "fresh_state_per_run": True,
            "python": platform.python_version(),
            "acceptance": (
                ">=2x kernel+delta speedup and reduced visitor count on the "
                "largest cached workload; identical fixed points everywhere"
            ),
        },
        "workloads": rows,
    }


def check_acceptance(payload):
    """Assert the PR's perf bar; returns the largest workload's row."""
    for row in payload["workloads"]:
        assert row["fixpoint_equal"], f"{row['name']}: fixed points diverge"
    largest = next(r for r in payload["workloads"] if r["largest"])
    delta, base = largest["variants"]["kernel+delta"], largest["variants"]["baseline"]
    assert largest["speedup_kernel_delta"] >= 2.0, (
        f"{largest['name']}: kernel+delta speedup "
        f"{largest['speedup_kernel_delta']:.2f}x < 2x"
    )
    assert delta["visits"] < base["visits"], (
        f"{largest['name']}: delta did not reduce visitor count"
    )
    return largest


def report(payload):
    rows = [
        [
            row["name"] + (" *" if row["largest"] else ""),
            f"{row['vertices']}/{row['edges']}",
            f"{row['variants']['baseline']['wall_seconds']:.3f}s",
            f"{row['variants']['kernel']['wall_seconds']:.3f}s",
            f"{row['variants']['kernel+delta']['wall_seconds']:.3f}s",
            f"{row['speedup_kernel_delta']:.1f}x",
            f"{row['variants']['baseline']['visits']}",
            f"{row['variants']['kernel+delta']['visits']}",
            "yes" if row["fixpoint_equal"] else "NO",
        ]
        for row in payload["workloads"]
    ]
    print(format_table(
        ["workload", "V/E", "baseline", "kernel", "k+delta",
         "speedup", "visits(base)", "visits(delta)", "same fixpoint"],
        rows,
    ))
    print("* largest cached workload (the acceptance target)")


@pytest.mark.benchmark(group="kernels")
def test_kernel_fixpoint_speedup(benchmark):
    print_header(
        "E-K1 — LCC fixpoint: baseline vs bitmask kernel vs kernel+delta"
    )
    payload = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    report(payload)
    largest = check_acceptance(payload)
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    assert largest["speedup_kernel_delta"] >= 2.0


def main(argv):
    smoke = "--smoke" in argv
    if smoke:
        # CI-sized: the acceptance workload only, best-of-2, no JSON.
        workloads = [w for w in kernel_workloads() if w[0] == "KERNEL-STRESS"]
        payload = run_suite(repeats=2, workloads=workloads)
        report(payload)
        check_acceptance(payload)
        print("smoke OK")
        return 0
    payload = run_suite()
    report(payload)
    check_acceptance(payload)
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
