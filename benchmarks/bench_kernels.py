"""E-K1 — kernel microbenchmark: baseline vs bitmask vs delta vs array LCC.

Not a paper figure: this benchmark guards the PRs that introduced the
bitmask role kernels (``core/kernels.py``) and the array-backed CSR state
(``core/arraystate.py``).  It times the full LCC fixpoint
(``local_constraint_checking``) on the cached workloads of ``common.py``
under four configurations

* ``baseline``       — the set-based reference path (``role_kernel=False``),
* ``kernel``         — bitmask tables, all-vertex rounds (``delta=False``),
* ``kernel+delta``   — bitmask tables plus the semi-naive worklist,
* ``array``          — kernel+delta on the vectorized CSR array state,

and writes ``BENCH_KERNELS.json`` at the repo root.  The acceptance bars
are a >=2x wall-time speedup of ``kernel+delta`` over ``baseline`` and a
further >=2x speedup of ``array`` over ``kernel+delta``, both on
KERNEL-STRESS; fixed-point equality across all four variants is asserted
on every workload, so a speedup can never come from doing less pruning.
The ``array`` timing includes the dict->CSR->dict conversions at the
boundaries, exactly as the pipeline pays them.

Two additions guard the array-takeover PR:

* the WIDE-STRESS workload (72-role path, two-word role masks) pins the
  multi-word mask branches; its array-over-kernel+delta ratio is tracked
  as ``speedup_wide_mask`` so the wide path can never silently fall off
  the vectorized cliff;
* the ENUM-STRESS row times verification enumeration — dict backtracking
  (``enumerate_matches``) vs the vectorized frontier
  (``enumerate_matches_array``) — on the NLCC-STRESS LCC fixed point,
  asserting a >=3x ``speedup_array_enum`` with identical mapping sets.

Methodology: best-of-``REPEATS`` wall time via ``time.perf_counter``
around the fixpoint call only (graph/template construction excluded), a
fresh ``SearchState``/``Engine``/``MessageStats`` per run, all variants on
the same cached graph objects, single process, no warmup beyond the
repeats themselves.  Each timed region runs with the ambient heap
frozen (``gc.collect()`` + ``gc.freeze()``): collector pauses scale
with the whole live heap, so without this a variant's wall time depends
on what else the process imported or cached — the CSR-STRESS array
variant measurably doubled when other bench modules were loaded first.
Each run still pays for its own allocation churn.

Run directly (``python benchmarks/bench_kernels.py``) for the full suite,
``--smoke`` for the CI-sized subset, or via pytest-benchmark as part of
the harness session.
"""

import contextlib
import gc
import json
import platform
import sys
import time
from pathlib import Path

import pytest

from repro.analysis import format_table, speedup
from repro.core import SearchState, local_constraint_checking
from repro.runtime import Engine, MessageStats, PartitionedGraph
from common import (
    DEFAULT_RANKS,
    kernel_workloads,
    nlcc_stress_background,
    nlcc_stress_template,
    print_header,
)

REPEATS = 3
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_KERNELS.json"

VARIANTS = [
    ("baseline", dict(role_kernel=False, delta=False)),
    ("kernel", dict(role_kernel=True, delta=False)),
    ("kernel+delta", dict(role_kernel=True, delta=True)),
    ("array", dict(role_kernel=True, delta=True, array_state=True)),
]

#: the workload both acceptance bars are pinned to
ACCEPTANCE_WORKLOAD = "KERNEL-STRESS"

#: the multi-word role-mask workload (``speedup_wide_mask``)
WIDE_WORKLOAD = "WIDE-STRESS"

#: the enumeration comparison row (``speedup_array_enum``)
ENUM_WORKLOAD = "ENUM-STRESS"


@contextlib.contextmanager
def _ambient_heap_frozen():
    """Exclude pre-existing live objects from GC walks while timing.

    Collector pauses inside a timed region scale with the *whole* live
    heap, so a variant's wall time would otherwise depend on what the
    process happens to have imported or cached (earlier workloads, other
    bench modules) — measured as a reproducible ~2x swing on the
    CSR-STRESS array variant.  Collecting then freezing the ambient heap
    first means any collection triggered inside the region only walks
    the run's own allocations: each variant still pays for its own
    churn, but not for the bystanders.
    """
    gc.collect()
    gc.freeze()
    try:
        yield
    finally:
        gc.unfreeze()


def _run_once(graph, template, config):
    """One timed LCC fixpoint run; returns (wall, counters, fixpoint)."""
    state = SearchState.initial(graph, template)
    stats = MessageStats(DEFAULT_RANKS)
    engine = Engine(PartitionedGraph(graph, DEFAULT_RANKS), stats)
    with _ambient_heap_frozen():
        start = time.perf_counter()
        iterations = local_constraint_checking(
            state, template.graph, engine, **config
        )
        wall = time.perf_counter() - start
    counters = {
        "iterations": iterations,
        "messages": stats.total_messages,
        "visits": stats.total_visits,
    }
    fixpoint = (
        {v: frozenset(r) for v, r in state.candidates.items()},
        frozenset(state.active_edge_list()),
    )
    return wall, counters, fixpoint


def _enumeration_row(repeats):
    """Time verification enumeration: dict backtracking vs array frontier.

    Mirrors ``search.py``'s verification tail: both sides enumerate the
    distance-0 prototype on the LCC fixed point of NLCC-STRESS (the
    two-label hub-storm workload, whose repeated labels give the
    backtracker a wide branching factor).  The dict side pays
    ``state.to_graph()`` inside the timed region and the array side pays
    nothing but the frontier walk — exactly the costs the two pipeline
    tails pay.  Mapping-*set* equality is asserted by the caller.
    """
    from repro.core.arraystate import ArraySearchState
    from repro.core.enumeration import (
        enumerate_matches,
        enumerate_matches_array,
    )
    from repro.core.kernels import cached_role_kernel
    from repro.core.prototypes import generate_prototypes

    graph = nlcc_stress_background()
    template = nlcc_stress_template()
    prototype = generate_prototypes(template, 0).all()[0]
    state = SearchState.initial(graph, template)
    engine = Engine(
        PartitionedGraph(graph, DEFAULT_RANKS), MessageStats(DEFAULT_RANKS)
    )
    local_constraint_checking(state, template.graph, engine, array_state=True)
    kernel = cached_role_kernel(template.graph)
    astate = ArraySearchState.from_search_state(state, roles=kernel.roles)

    best_dict = best_array = None
    dict_matches = array_matches = None
    for _ in range(repeats):
        with _ambient_heap_frozen():
            start = time.perf_counter()
            matches = list(enumerate_matches(prototype, state))
            wall = time.perf_counter() - start
        if best_dict is None or wall < best_dict:
            best_dict, dict_matches = wall, matches
        with _ambient_heap_frozen():
            start = time.perf_counter()
            match_set = enumerate_matches_array(prototype, astate)
            wall = time.perf_counter() - start
        if best_array is None or wall < best_array:
            best_array, array_matches = wall, match_set.mappings()

    def mapping_set(mappings):
        return {frozenset(m.items()) for m in mappings}

    return {
        "name": ENUM_WORKLOAD,
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "template_roles": template.graph.num_vertices,
        "enum": {
            "dict": dict(wall_seconds=best_dict, matches=len(dict_matches)),
            "array": dict(
                wall_seconds=best_array, matches=len(array_matches)
            ),
        },
        "speedup_array_enum": speedup(best_dict, best_array),
        "mappings_equal": (
            mapping_set(dict_matches) == mapping_set(array_matches)
        ),
    }


def run_suite(repeats=REPEATS, workloads=None):
    """Benchmark every workload x variant; returns the JSON payload."""
    rows = []
    for name, graph_factory, template_factory in (
        workloads or kernel_workloads()
    ):
        graph = graph_factory()
        template = template_factory()
        variants = {}
        fixpoints = {}
        for label, config in VARIANTS:
            best, counters = None, None
            for _ in range(repeats):
                wall, run_counters, fixpoint = _run_once(
                    graph, template, config
                )
                if best is None or wall < best:
                    best, counters = wall, run_counters
            variants[label] = dict(wall_seconds=best, **counters)
            fixpoints[label] = fixpoint
        base = variants["baseline"]
        row = {
            "name": name,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "template_roles": template.graph.num_vertices,
            "variants": variants,
            "speedup_kernel": speedup(
                base["wall_seconds"], variants["kernel"]["wall_seconds"]
            ),
            "speedup_kernel_delta": speedup(
                base["wall_seconds"], variants["kernel+delta"]["wall_seconds"]
            ),
            "speedup_array": speedup(
                base["wall_seconds"], variants["array"]["wall_seconds"]
            ),
            "speedup_array_vs_delta": speedup(
                variants["kernel+delta"]["wall_seconds"],
                variants["array"]["wall_seconds"],
            ),
            "visit_reduction_delta": (
                1 - variants["kernel+delta"]["visits"] / base["visits"]
                if base["visits"] else 0.0
            ),
            "fixpoint_equal": all(
                fp == fixpoints["baseline"] for fp in fixpoints.values()
            ),
        }
        if name == WIDE_WORKLOAD:
            # The wide row's array-over-kernel+delta ratio gets its own
            # tracked name so the multi-word branches are gated
            # independently of the single-word acceptance workload.
            row["speedup_wide_mask"] = row["speedup_array_vs_delta"]
        rows.append(row)
    largest = max(rows, key=lambda row: row["vertices"])
    for row in rows:
        row["largest"] = row is largest
    rows.append(_enumeration_row(repeats))
    return {
        "experiment": "E-K1 kernel LCC fixpoint microbenchmark",
        "methodology": {
            "timer": "time.perf_counter around local_constraint_checking only",
            "repeats": repeats,
            "aggregation": "best-of (min wall time per variant)",
            "ranks": DEFAULT_RANKS,
            "fresh_state_per_run": True,
            "python": platform.python_version(),
            "acceptance": (
                ">=2x kernel+delta speedup over baseline, a further >=2x "
                "array speedup over kernel+delta, and a reduced visitor "
                "count, all on KERNEL-STRESS; >=3x array enumeration "
                "speedup over dict backtracking on ENUM-STRESS with "
                "identical mapping sets; identical fixed points everywhere"
            ),
        },
        "workloads": rows,
    }


def check_acceptance(payload):
    """Assert the perf bars; returns the acceptance workload's row."""
    for row in payload["workloads"]:
        if "variants" in row:
            assert row["fixpoint_equal"], (
                f"{row['name']}: fixed points diverge"
            )
        else:
            assert row["mappings_equal"], (
                f"{row['name']}: mapping sets diverge"
            )
    enum_row = next(
        (r for r in payload["workloads"] if r["name"] == ENUM_WORKLOAD), None
    )
    if enum_row is not None:
        assert enum_row["speedup_array_enum"] >= 3.0, (
            f"{enum_row['name']}: array enumeration speedup "
            f"{enum_row['speedup_array_enum']:.2f}x < 3x"
        )
    target = next(
        r for r in payload["workloads"] if r["name"] == ACCEPTANCE_WORKLOAD
    )
    delta, base = target["variants"]["kernel+delta"], target["variants"]["baseline"]
    assert target["speedup_kernel_delta"] >= 2.0, (
        f"{target['name']}: kernel+delta speedup "
        f"{target['speedup_kernel_delta']:.2f}x < 2x"
    )
    assert target["speedup_array_vs_delta"] >= 2.0, (
        f"{target['name']}: array speedup over kernel+delta "
        f"{target['speedup_array_vs_delta']:.2f}x < 2x"
    )
    assert delta["visits"] < base["visits"], (
        f"{target['name']}: delta did not reduce visitor count"
    )
    return target


def report(payload):
    rows = [
        [
            row["name"] + (" *" if row["name"] == ACCEPTANCE_WORKLOAD else ""),
            f"{row['vertices']}/{row['edges']}",
            f"{row['variants']['baseline']['wall_seconds']:.3f}s",
            f"{row['variants']['kernel']['wall_seconds']:.3f}s",
            f"{row['variants']['kernel+delta']['wall_seconds']:.3f}s",
            f"{row['variants']['array']['wall_seconds']:.3f}s",
            f"{row['speedup_kernel_delta']:.1f}x",
            f"{row['speedup_array_vs_delta']:.1f}x",
            f"{row['speedup_array']:.1f}x",
            "yes" if row["fixpoint_equal"] else "NO",
        ]
        for row in payload["workloads"]
        if "variants" in row
    ]
    print(format_table(
        ["workload", "V/E", "baseline", "kernel", "k+delta", "array",
         "delta/base", "array/delta", "array/base", "same fixpoint"],
        rows,
    ))
    print("* acceptance workload (both speedup bars)")
    enum_row = next(
        (r for r in payload["workloads"] if r["name"] == ENUM_WORKLOAD), None
    )
    if enum_row is not None:
        enum = enum_row["enum"]
        print(
            f"{enum_row['name']}: dict "
            f"{enum['dict']['wall_seconds']:.3f}s vs array "
            f"{enum['array']['wall_seconds']:.3f}s -> "
            f"{enum_row['speedup_array_enum']:.1f}x "
            f"({enum['array']['matches']} mappings, equal: "
            f"{'yes' if enum_row['mappings_equal'] else 'NO'})"
        )


@pytest.mark.benchmark(group="kernels")
def test_kernel_fixpoint_speedup(benchmark):
    print_header(
        "E-K1 — LCC fixpoint: baseline vs kernel vs kernel+delta vs array"
    )
    payload = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    report(payload)
    target = check_acceptance(payload)
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    assert target["speedup_kernel_delta"] >= 2.0


def smoke_suite():
    """The CI-sized subset: acceptance, CSR and wide-mask workloads.

    ``run_suite`` always appends the ENUM-STRESS row, so the smoke gate
    also covers ``speedup_array_enum``.
    """
    names = {ACCEPTANCE_WORKLOAD, "CSR-STRESS", WIDE_WORKLOAD}
    workloads = [w for w in kernel_workloads() if w[0] in names]
    return run_suite(repeats=2, workloads=workloads)


def main(argv):
    smoke = "--smoke" in argv
    if smoke:
        payload = smoke_suite()
        report(payload)
        check_acceptance(payload)
        print("smoke OK")
        return 0
    payload = run_suite()
    report(payload)
    check_acceptance(payload)
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
