"""CI smoke check for the tracing layer.

Runs a small traced ``repro search`` through the real CLI, asserts the
exported Chrome trace parses and contains the expected span taxonomy
(``pipeline`` → ``level`` → ``prototype`` → ``lcc``/``nlcc`` → ``round``),
then renders the ``repro trace`` report.  The same run also exports the
always-on metrics snapshot via ``--metrics-out``, which is sanity-checked
(the fixpoint counters must be populated) and rendered through ``repro
metrics``.  Both files are left on disk so CI can upload them as build
artifacts.

Run from the repo root::

    PYTHONPATH=src python benchmarks/trace_smoke.py \
        [--out trace.json] [--metrics-out metrics.json]
"""

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.cli import main as cli_main
from repro.analysis.metricsreport import derived_metrics, load_snapshot
from repro.analysis.metricsreport import render_report as render_metrics
from repro.analysis.tracereport import load_trace, render_report
from repro.graph import io as graph_io
from repro.graph.generators import planted_graph

TEMPLATE_EDGES = [(0, 1), (1, 2), (2, 0), (2, 3)]
TEMPLATE_LABELS = [1, 2, 3, 4]

#: spans the exported trace must contain, with the parent each must have
EXPECTED_NESTING = {
    "pipeline": None,
    "level": "pipeline",
    "prototype": "level",
    "lcc": "prototype",
    "nlcc": "prototype",
    "round": None,  # rounds appear under lcc / nlcc / max_candidate_set
}


def run(out_path: Path, metrics_path: Path) -> int:
    workdir = Path(tempfile.mkdtemp(prefix="trace_smoke_"))
    graph = planted_graph(
        60, 150, TEMPLATE_EDGES, TEMPLATE_LABELS, copies=3, seed=11
    )
    graph_path = workdir / "graph.edges"
    labels_path = workdir / "graph.labels"
    template_path = workdir / "template.json"
    graph_io.write_edge_list(graph, graph_path)
    graph_io.write_labels(graph, labels_path)
    template_path.write_text(json.dumps({
        "edges": [list(edge) for edge in TEMPLATE_EDGES],
        "labels": {str(i): l for i, l in enumerate(TEMPLATE_LABELS)},
        "name": "tri+tail",
    }))

    rc = cli_main([
        "search", str(graph_path), "--labels", str(labels_path),
        str(template_path), "-k", "1", "--trace", str(out_path),
        "--metrics-out", str(metrics_path),
    ])
    if rc != 0:
        print(f"traced search failed with exit code {rc}")
        return 1

    records = load_trace(out_path)
    names = {record["name"] for record in records}
    by_id = {record["span_id"]: record for record in records}
    problems = []
    for name, parent in EXPECTED_NESTING.items():
        if name not in names:
            problems.append(f"no '{name}' span in the trace")
            continue
        if parent is None:
            continue
        if not any(
            record["name"] == name
            and by_id.get(record["parent_id"], {}).get("name") == parent
            for record in records
        ):
            problems.append(f"no '{name}' span nested under '{parent}'")
    roots = [record for record in records if record["parent_id"] is None]
    if [record["name"] for record in roots] != ["pipeline"]:
        problems.append(
            f"expected a single 'pipeline' root, got "
            f"{[record['name'] for record in roots]}"
        )
    if not any(
        record["name"] == "round" and record["counters"].get("messages", 0) > 0
        for record in records
    ):
        problems.append("no 'round' span carries a positive message counter")

    snapshot = load_snapshot(metrics_path)
    counters = snapshot["counters"]
    for counter in ("fixpoint.rounds_dense", "engine.rounds_batched"):
        if counters.get(counter, 0) <= 0:
            problems.append(f"metrics snapshot has no '{counter}' counts")
    if derived_metrics(snapshot)["dense_round_fraction"] is None:
        problems.append("metrics snapshot derives no dense-round fraction")

    if problems:
        print("trace smoke FAILED:")
        for problem in problems:
            print(f"  {problem}")
        return 1

    print(f"trace smoke OK: {len(records)} spans, {len(names)} kinds -> "
          f"{out_path}; metrics snapshot -> {metrics_path}")
    print()
    print(render_report(records))
    print()
    print(render_metrics(snapshot))
    return 0


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=Path("trace.json"),
        help="where to leave the exported trace (default: ./trace.json)",
    )
    parser.add_argument(
        "--metrics-out", type=Path, default=Path("metrics.json"),
        help="where to leave the metrics snapshot (default: ./metrics.json)",
    )
    args = parser.parse_args(argv)
    return run(args.out, args.metrics_out)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
