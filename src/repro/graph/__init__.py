"""Graph substrate: labeled graphs, algorithms, isomorphism, I/O, generators."""

from . import generators, metrics
from .algorithms import (
    bfs_order,
    connected_components,
    is_connected,
    k_core,
    shortest_path,
    shortest_path_lengths,
    simple_cycles_upto,
)
from .builder import GraphBuilder, undirected_simple
from .graph import DegreeStatistics, Graph, canonical_edge, from_edges
from .io import (
    read_edge_list,
    read_json,
    read_label_file,
    write_edge_list,
    write_json,
    write_labels,
)
from .isomorphism import (
    are_isomorphic,
    automorphism_count,
    canonical_form,
    count_subgraph_isomorphisms,
    find_subgraph_isomorphisms,
    has_match,
)
from .labeling import (
    apply_degree_labels,
    coverage,
    degree_log2_label,
    label_frequency,
    zipf_labels,
)

__all__ = [
    "DegreeStatistics",
    "Graph",
    "GraphBuilder",
    "apply_degree_labels",
    "are_isomorphic",
    "automorphism_count",
    "bfs_order",
    "canonical_edge",
    "canonical_form",
    "connected_components",
    "count_subgraph_isomorphisms",
    "coverage",
    "degree_log2_label",
    "find_subgraph_isomorphisms",
    "from_edges",
    "generators",
    "metrics",
    "has_match",
    "is_connected",
    "k_core",
    "label_frequency",
    "read_edge_list",
    "read_json",
    "read_label_file",
    "shortest_path",
    "shortest_path_lengths",
    "simple_cycles_upto",
    "undirected_simple",
    "write_edge_list",
    "write_json",
    "write_labels",
    "zipf_labels",
]
