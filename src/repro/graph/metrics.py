"""Graph characterization metrics.

Beyond Table 1's degree summary, the evaluation narrative leans on
structural properties of the datasets — skewed degree distributions
("highly skewed degree distribution", §5.2), density, clustering (cyclic
patterns have "dense and highly concentrated matches", §5.4).  These
metrics quantify those properties for any graph, powering dataset reports
and workload sanity checks in the benchmarks.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from .graph import Graph


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """``degree -> number of vertices`` (empty graph → empty dict)."""
    histogram: Dict[int, int] = {}
    for vertex in graph.vertices():
        degree = graph.degree(vertex)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def degree_ccdf(graph: Graph) -> List[Tuple[int, float]]:
    """Complementary CDF of the degree distribution: P(deg >= d) per d.

    The straight-line-on-log-log signature of this curve is the usual
    check that a generator produced a power-law-ish graph.
    """
    if graph.num_vertices == 0:
        return []
    histogram = degree_histogram(graph)
    total = graph.num_vertices
    ccdf = []
    remaining = total
    for degree in sorted(histogram):
        ccdf.append((degree, remaining / total))
        remaining -= histogram[degree]
    return ccdf


def global_clustering_coefficient(graph: Graph) -> float:
    """Transitivity: ``3 x triangles / open-or-closed wedges``."""
    closed = 0  # counts each triangle 3 times (once per corner)
    wedges = 0
    for vertex in graph.vertices():
        neighbors = list(graph.neighbors(vertex))
        degree = len(neighbors)
        wedges += degree * (degree - 1) // 2
        for i, u in enumerate(neighbors):
            u_neighbors = graph.neighbors(u)
            for w in neighbors[i + 1 :]:
                if w in u_neighbors:
                    closed += 1
    return closed / wedges if wedges else 0.0


def average_local_clustering(graph: Graph) -> float:
    """Watts–Strogatz average of per-vertex clustering coefficients."""
    if graph.num_vertices == 0:
        return 0.0
    total = 0.0
    for vertex in graph.vertices():
        neighbors = list(graph.neighbors(vertex))
        degree = len(neighbors)
        if degree < 2:
            continue
        links = 0
        for i, u in enumerate(neighbors):
            u_neighbors = graph.neighbors(u)
            for w in neighbors[i + 1 :]:
                if w in u_neighbors:
                    links += 1
        total += 2 * links / (degree * (degree - 1))
    return total / graph.num_vertices


def degree_assortativity(graph: Graph) -> float:
    """Pearson correlation of endpoint degrees over edges.

    Negative on hub-and-spoke graphs (hubs attach to leaves), near zero on
    uniform random graphs.  Returns 0.0 for degenerate inputs.
    """
    xs: List[int] = []
    ys: List[int] = []
    for u, v in graph.edges():
        du, dv = graph.degree(u), graph.degree(v)
        xs.extend((du, dv))
        ys.extend((dv, du))
    n = len(xs)
    if n == 0:
        return 0.0
    mean_x = sum(xs) / n
    var = sum((x - mean_x) ** 2 for x in xs)
    if var == 0:
        return 0.0
    cov = sum((x - mean_x) * (y - mean_x) for x, y in zip(xs, ys))
    return cov / var


def density(graph: Graph) -> float:
    """``m / C(n, 2)`` — 1.0 for a clique, 0.0 for edgeless."""
    n = graph.num_vertices
    if n < 2:
        return 0.0
    return graph.num_edges / (n * (n - 1) / 2)


def degeneracy(graph: Graph) -> int:
    """The largest ``k`` such that the ``k``-core is non-empty.

    Computed by iterative minimum-degree peeling; bounds the clique number
    and therefore the feasibility of clique-like templates.
    """
    degrees = {v: graph.degree(v) for v in graph.vertices()}
    best = 0
    remaining = set(degrees)
    while remaining:
        vertex = min(remaining, key=lambda v: degrees[v])
        best = max(best, degrees[vertex])
        remaining.discard(vertex)
        for nbr in graph.neighbors(vertex):
            if nbr in remaining:
                degrees[nbr] -= 1
    return best


def power_law_exponent_estimate(graph: Graph, d_min: int = 2) -> float:
    """MLE estimate of the degree power-law exponent (Clauset et al.).

    ``alpha = 1 + n / sum(ln(d / (d_min - 0.5)))`` over degrees >= d_min;
    returns 0.0 if too few qualifying vertices.
    """
    degrees = [
        graph.degree(v) for v in graph.vertices() if graph.degree(v) >= d_min
    ]
    if len(degrees) < 2:
        return 0.0
    log_sum = sum(math.log(d / (d_min - 0.5)) for d in degrees)
    if log_sum <= 0:
        return 0.0
    return 1.0 + len(degrees) / log_sum


def summary(graph: Graph) -> Dict[str, float]:
    """All metrics in one dict (for reports and dataset tables)."""
    stats = graph.degree_statistics()
    return {
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "d_max": stats.d_max,
        "d_avg": stats.d_avg,
        "d_stdev": stats.d_stdev,
        "density": density(graph),
        "global_clustering": global_clustering_coefficient(graph),
        "avg_local_clustering": average_local_clustering(graph),
        "assortativity": degree_assortativity(graph),
        "degeneracy": degeneracy(graph),
        "power_law_alpha": power_law_exponent_estimate(graph),
    }
