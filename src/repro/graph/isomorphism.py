"""Label-preserving (sub)graph isomorphism for small pattern graphs.

Three services live here:

* :func:`find_subgraph_isomorphisms` — a VF2-style backtracking matcher.
  It is the *reference* exact matcher: the pipeline's precision/recall
  guarantees are validated against it in the test suite, and the pipeline
  itself uses it (on heavily pruned graphs) for match enumeration.
* :func:`are_isomorphic` / :func:`canonical_form` — full graph isomorphism
  for template prototypes, used to de-duplicate isomorphic prototypes during
  prototype generation (§3.1: "We also perform isomorphism checks to
  eliminate duplicates").

All routines assume the *pattern* side is small (paper templates have 4–8
vertices); the target graph may be large.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .graph import Graph

Mapping = Dict[int, int]


def _match_order(pattern: Graph) -> List[int]:
    """Vertex order that keeps the partial match connected.

    Starting from the rarest-labeled highest-degree vertex and growing along
    edges dramatically shrinks the backtracking tree (the classic VF2
    ordering heuristic).
    """
    if pattern.num_vertices == 0:
        return []
    label_counts = pattern.label_counts()
    start = min(
        pattern.vertices(),
        key=lambda v: (label_counts[pattern.label(v)], -pattern.degree(v), v),
    )
    order = [start]
    placed = {start}
    while len(order) < pattern.num_vertices:
        frontier = [
            v
            for v in pattern.vertices()
            if v not in placed and pattern.neighbors(v) & placed
        ]
        if not frontier:  # disconnected pattern: start a new component
            frontier = [v for v in pattern.vertices() if v not in placed]
        nxt = max(
            frontier,
            key=lambda v: (
                len(pattern.neighbors(v) & placed),
                pattern.degree(v),
                -v,
            ),
        )
        order.append(nxt)
        placed.add(nxt)
    return order


def find_subgraph_isomorphisms(
    pattern: Graph,
    target: Graph,
    limit: Optional[int] = None,
    candidate_filter: Optional[Callable[[int, int], bool]] = None,
) -> Iterator[Mapping]:
    """Yield label-preserving subgraph isomorphisms of ``pattern`` in ``target``.

    A match is an injective mapping ``pattern vertex → target vertex`` such
    that labels agree and every pattern edge maps to a target edge (the
    standard non-induced subgraph matching of the paper: extra target edges
    between matched vertices are allowed).

    ``limit`` stops after that many matches.  ``candidate_filter(pv, tv)``
    can veto target candidates (the pipeline uses it to restrict enumeration
    to per-vertex candidate-match sets).
    """
    order = _match_order(pattern)
    if not order:
        yield {}
        return
    # Pre-compute, for each position, which already-placed pattern vertices
    # are neighbors of the vertex being placed.
    back_neighbors: List[List[int]] = []
    for idx, pv in enumerate(order):
        placed = order[:idx]
        back_neighbors.append([q for q in placed if q in pattern.neighbors(pv)])

    target_by_label: Dict[int, List[int]] = {}
    for tv in target.vertices():
        target_by_label.setdefault(target.label(tv), []).append(tv)

    mapping: Mapping = {}
    used: set = set()
    emitted = 0
    check_edge_labels = pattern.has_edge_labels

    def candidates(idx: int) -> Iterator[int]:
        pv = order[idx]
        anchors = back_neighbors[idx]
        if anchors:
            # Grow along the already matched structure: candidates are
            # neighbors of an anchor's image.
            base = target.neighbors(mapping[anchors[0]])
            want = pattern.label(pv)
            for tv in base:
                if target.label(tv) == want:
                    yield tv
        else:
            yield from target_by_label.get(pattern.label(pv), ())

    def feasible(idx: int, tv: int) -> bool:
        if tv in used:
            return False
        pv = order[idx]
        if candidate_filter is not None and not candidate_filter(pv, tv):
            return False
        if target.degree(tv) < pattern.degree(pv):
            return False
        tv_neighbors = target.neighbors(tv)
        for anchor in back_neighbors[idx]:
            anchor_image = mapping[anchor]
            if anchor_image not in tv_neighbors:
                return False
            if check_edge_labels:
                required = pattern.edge_label(pv, anchor)
                if required is not None and required != target.edge_label(
                    tv, anchor_image
                ):
                    return False
        return True

    def backtrack(idx: int) -> Iterator[Mapping]:
        nonlocal emitted
        if idx == len(order):
            emitted += 1
            yield dict(mapping)
            return
        pv = order[idx]
        for tv in candidates(idx):
            if not feasible(idx, tv):
                continue
            mapping[pv] = tv
            used.add(tv)
            yield from backtrack(idx + 1)
            used.discard(tv)
            del mapping[pv]
            if limit is not None and emitted >= limit:
                return

    yield from backtrack(0)


def count_subgraph_isomorphisms(pattern: Graph, target: Graph) -> int:
    """Number of label-preserving subgraph isomorphisms (mappings)."""
    return sum(1 for _ in find_subgraph_isomorphisms(pattern, target))


def has_match(pattern: Graph, target: Graph) -> bool:
    """True iff at least one match of ``pattern`` exists in ``target``."""
    return next(find_subgraph_isomorphisms(pattern, target, limit=1), None) is not None


def automorphism_count(graph: Graph) -> int:
    """Number of label-preserving automorphisms of a small graph.

    Used to convert mapping counts into *distinct subgraph* counts:
    ``#subgraphs = #mappings / #automorphisms``.
    """
    if graph.num_vertices == 0:
        return 1
    return count_subgraph_isomorphisms(graph, graph)


def are_isomorphic(first: Graph, second: Graph) -> bool:
    """Label-preserving graph isomorphism (vertex *and* edge labels)."""
    if first.num_vertices != second.num_vertices:
        return False
    if first.num_edges != second.num_edges:
        return False
    if first.label_counts() != second.label_counts():
        return False
    degree_profile = lambda g: sorted(  # noqa: E731 - tiny local helper
        (g.label(v), g.degree(v)) for v in g.vertices()
    )
    if degree_profile(first) != degree_profile(second):
        return False
    if not first.has_edge_labels and not second.has_edge_labels:
        for _mapping in find_subgraph_isomorphisms(first, second, limit=1):
            # Same vertex and edge count with every pattern edge present
            # means the monomorphism is an isomorphism.
            return True
        return False
    label_multiset = lambda g: sorted(  # noqa: E731 - tiny local helper
        g.edge_label(u, v) is not None and g.edge_label(u, v) or -1
        for u, v in g.edges()
    )
    if label_multiset(first) != label_multiset(second):
        return False
    for mapping in find_subgraph_isomorphisms(first, second):
        if all(
            first.edge_label(u, v) == second.edge_label(mapping[u], mapping[v])
            for u, v in first.edges()
        ):
            return True
    return False


def _subdivide_edge_labels(graph: Graph) -> Graph:
    """Encode edge labels as subdivision vertices for canonicalization.

    Each edge-labeled edge ``(u, v, l)`` becomes ``u - x - v`` where the
    dummy ``x`` carries a reserved label derived from ``l``; isomorphic
    edge-labeled graphs produce isomorphic encodings and vice versa.
    """
    offset = max(graph.label_set(), default=0) + 1
    aux = graph.copy()
    next_id = max(graph.vertices()) + 1
    for (u, v), edge_label in sorted(graph.edge_labels().items()):
        aux.remove_edge(u, v)
        aux.add_vertex(next_id, offset + edge_label)
        aux.add_edge(u, next_id)
        aux.add_edge(next_id, v)
        next_id += 1
    return aux


def canonical_form(graph: Graph) -> Tuple:
    """A canonical, hashable form of a small labeled graph.

    Two graphs have equal canonical forms iff they are label-preserving
    isomorphic (vertex labels, and edge labels when present).  Brute force
    over permutations within (label, degree) refinement classes — fine for
    template prototypes (≤ ~9 vertices).
    """
    if graph.has_edge_labels:
        graph = _subdivide_edge_labels(graph)
    vertices = sorted(graph.vertices())
    n = len(vertices)
    if n == 0:
        return ()
    # Refine by (label, degree, sorted neighbor labels) to cut permutations.
    def signature(v: int) -> Tuple:
        return (
            graph.label(v),
            graph.degree(v),
            tuple(sorted(graph.label(w) for w in graph.neighbors(v))),
        )

    groups: Dict[Tuple, List[int]] = {}
    for v in vertices:
        groups.setdefault(signature(v), []).append(v)
    ordered_groups = [groups[key] for key in sorted(groups)]
    group_labels = [graph.label(group[0]) for group in ordered_groups]

    best: Optional[Tuple] = None
    for permutations in itertools.product(
        *(itertools.permutations(group) for group in ordered_groups)
    ):
        position: Dict[int, int] = {}
        index = 0
        for perm in permutations:
            for v in perm:
                position[v] = index
                index += 1
        edges = tuple(
            sorted(
                (min(position[u], position[v]), max(position[u], position[v]))
                for u, v in graph.edges()
            )
        )
        form = (tuple(group_labels), tuple(len(g) for g in ordered_groups), edges)
        if best is None or form < best:
            best = form
    assert best is not None
    return best
