"""Vertex labeling strategies used by the paper's datasets.

The weak-scaling experiments (§5, Datasets) label R-MAT vertices by degree:
``l(v) = ceil(log2(d(v) + 1))`` so that the label distribution is stable as
the graph scales.  The WDC webgraph uses skewed categorical labels
(top-level domains); :func:`zipf_labels` reproduces that shape.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from .graph import Graph


def degree_log2_label(degree: int) -> int:
    """The paper's weak-scaling labeling rule ``ceil(log2(d + 1))``."""
    if degree < 0:
        raise ValueError("degree must be non-negative")
    return int(math.ceil(math.log2(degree + 1))) if degree > 0 else 0


def apply_degree_labels(graph: Graph) -> Graph:
    """Relabel every vertex of ``graph`` in place by its degree class."""
    for vertex in graph.vertices():
        graph.add_vertex(vertex, degree_log2_label(graph.degree(vertex)))
    return graph


def zipf_labels(
    num_vertices: int,
    num_labels: int,
    seed: int = 0,
    exponent: float = 1.2,
) -> List[int]:
    """Draw ``num_vertices`` labels from a Zipf-shaped categorical distribution.

    Label 0 is the most frequent.  This mirrors the WDC label distribution
    where a few domains (.com, .org, ...) cover a large fraction of vertices
    while thousands of labels are rare.
    """
    if num_labels <= 0:
        raise ValueError("num_labels must be positive")
    rng = np.random.default_rng(seed)
    weights = np.array([1.0 / (rank + 1) ** exponent for rank in range(num_labels)])
    weights /= weights.sum()
    return list(rng.choice(num_labels, size=num_vertices, p=weights))


def apply_labels(graph: Graph, labels: Sequence[int]) -> Graph:
    """Assign ``labels[i]`` to the i-th vertex in iteration order."""
    for index, vertex in enumerate(list(graph.vertices())):
        graph.add_vertex(vertex, int(labels[index % len(labels)]))
    return graph


def label_frequency(graph: Graph) -> Dict[int, float]:
    """Fraction of vertices holding each label (descending popularity)."""
    counts = graph.label_counts()
    total = max(graph.num_vertices, 1)
    return {
        label: counts[label] / total
        for label in sorted(counts, key=counts.get, reverse=True)
    }


def coverage(graph: Graph, labels: Sequence[int]) -> float:
    """Fraction of graph vertices whose label is in ``labels``.

    The paper reports template label coverage this way (e.g. "the labels
    selected ... cover ~21% of the vertices in the WDC graph").
    """
    wanted = set(labels)
    if graph.num_vertices == 0:
        return 0.0
    hit = sum(1 for v in graph.vertices() if graph.label(v) in wanted)
    return hit / graph.num_vertices
