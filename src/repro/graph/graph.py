"""Vertex-labeled undirected simple graphs.

This is the in-memory representation shared by every subsystem: the
background graph ``G``, search templates ``H0``, prototypes, candidate sets
and solution subgraphs are all :class:`Graph` instances.

The representation favours the access patterns of the matching pipeline:

* adjacency is stored as ``dict[int, set[int]]`` because pruning deletes
  vertices and edges constantly and needs O(1) membership tests;
* labels are stored per vertex in a parallel dict;
* a CSR export (:meth:`Graph.to_csr`) is provided for analytics and for the
  memory model, mirroring the CSR storage HavoqGT uses.

Graphs are *simple* (no self loops, no parallel edges) and *undirected*
(``(u, v)`` implies ``(v, u)``), matching §2 of the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from ..errors import GraphError

Edge = Tuple[int, int]


def canonical_edge(u: int, v: int) -> Edge:
    """Return the canonical ``(min, max)`` form of an undirected edge."""
    return (u, v) if u <= v else (v, u)


class Graph:
    """An undirected, vertex-labeled, simple graph.

    Parameters
    ----------
    directed:
        Kept for API symmetry; only undirected graphs are supported (the
        paper's setting).  Passing ``True`` raises :class:`GraphError`.
    """

    __slots__ = ("_adj", "_labels", "_num_edges", "_edge_labels", "_csr_cache")

    def __init__(self, directed: bool = False) -> None:
        if directed:
            raise GraphError("only undirected graphs are supported")
        self._adj: Dict[int, Set[int]] = {}
        self._labels: Dict[int, int] = {}
        self._num_edges = 0
        #: optional edge labels (canonical edge -> label); empty when the
        #: graph is plain vertex-labeled, keeping every hot path unchanged
        self._edge_labels: Dict[Edge, int] = {}
        #: memoized frozen CSR view (see core/arraystate.GraphCsr); any
        #: mutation invalidates it so stale adjacency can never be reused
        self._csr_cache = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: int, label: int = 0) -> None:
        """Add ``vertex`` with ``label``; relabels if it already exists."""
        if vertex not in self._adj:
            self._adj[vertex] = set()
        self._labels[vertex] = label
        self._csr_cache = None

    def add_edge(self, u: int, v: int, label: Optional[int] = None) -> bool:
        """Add the undirected edge ``(u, v)``, optionally edge-labeled.

        Both endpoints must already exist.  Returns ``True`` if the edge was
        new, ``False`` if it was already present (whose label, if given, is
        updated).  Self loops are rejected.
        """
        if u == v:
            raise GraphError(f"self loop rejected: ({u}, {v})")
        if u not in self._adj:
            raise GraphError(f"unknown vertex {u}")
        if v not in self._adj:
            raise GraphError(f"unknown vertex {v}")
        if v in self._adj[u]:
            if label is not None:
                self._edge_labels[canonical_edge(u, v)] = label
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        if label is not None:
            self._edge_labels[canonical_edge(u, v)] = label
        self._csr_cache = None
        return True

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the undirected edge ``(u, v)``; raises if absent."""
        try:
            self._adj[u].remove(v)
            self._adj[v].remove(u)
        except KeyError as exc:
            raise GraphError(f"edge ({u}, {v}) not in graph") from exc
        self._num_edges -= 1
        self._edge_labels.pop(canonical_edge(u, v), None)
        self._csr_cache = None

    def remove_vertex(self, vertex: int) -> None:
        """Remove ``vertex`` and all incident edges; raises if absent."""
        if vertex not in self._adj:
            raise GraphError(f"vertex {vertex} not in graph")
        neighbors = self._adj.pop(vertex)
        for other in neighbors:
            self._adj[other].remove(vertex)
            self._edge_labels.pop(canonical_edge(vertex, other), None)
        self._num_edges -= len(neighbors)
        del self._labels[vertex]
        self._csr_cache = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._adj

    def has_vertex(self, vertex: int) -> bool:
        return vertex in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        neighbors = self._adj.get(u)
        return neighbors is not None and v in neighbors

    def vertices(self) -> Iterator[int]:
        """Iterate over vertex identifiers (insertion order)."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over canonical ``(min, max)`` edges, each once."""
        for u, neighbors in self._adj.items():
            for v in neighbors:
                if u <= v:
                    yield (u, v)

    def neighbors(self, vertex: int) -> Set[int]:
        """The neighbor set of ``vertex`` (do not mutate)."""
        try:
            return self._adj[vertex]
        except KeyError as exc:
            raise GraphError(f"vertex {vertex} not in graph") from exc

    def degree(self, vertex: int) -> int:
        return len(self.neighbors(vertex))

    @property
    def has_edge_labels(self) -> bool:
        """True if any edge carries a label."""
        return bool(self._edge_labels)

    def edge_label(self, u: int, v: int) -> Optional[int]:
        """The label of edge ``(u, v)``, or ``None`` if unlabeled/absent."""
        return self._edge_labels.get(canonical_edge(u, v))

    def edge_labels(self) -> Dict[Edge, int]:
        """A copy of the edge-label map."""
        return dict(self._edge_labels)

    def label(self, vertex: int) -> int:
        try:
            return self._labels[vertex]
        except KeyError as exc:
            raise GraphError(f"vertex {vertex} not in graph") from exc

    def labels(self) -> Dict[int, int]:
        """A copy of the vertex → label mapping."""
        return dict(self._labels)

    def label_set(self) -> Set[int]:
        """The set of distinct labels present in the graph."""
        return set(self._labels.values())

    def label_counts(self) -> Dict[int, int]:
        """Histogram of labels over vertices."""
        counts: Dict[int, int] = {}
        for label in self._labels.values():
            counts[label] = counts.get(label, 0) + 1
        return counts

    def vertices_with_label(self, label: int) -> List[int]:
        return [v for v, lab in self._labels.items() if lab == label]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """A deep, independent copy."""
        clone = Graph()
        clone._labels = dict(self._labels)
        clone._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        clone._edge_labels = dict(self._edge_labels)
        return clone

    def subgraph(self, vertices: Iterable[int]) -> "Graph":
        """The vertex-induced subgraph on ``vertices``.

        Unknown vertices are ignored so callers can pass candidate sets
        computed on a larger graph.
        """
        keep = {v for v in vertices if v in self._adj}
        sub = Graph()
        for v in keep:
            sub.add_vertex(v, self._labels[v])
        for v in keep:
            for w in self._adj[v]:
                if w in keep and v < w:
                    sub.add_edge(v, w, self._edge_labels.get((v, w)))
        return sub

    def edge_subgraph(self, edges: Iterable[Edge]) -> "Graph":
        """The subgraph induced by the given edges (and their endpoints)."""
        sub = Graph()
        for u, v in edges:
            if not self.has_edge(u, v):
                raise GraphError(f"edge ({u}, {v}) not in graph")
            if u not in sub:
                sub.add_vertex(u, self._labels[u])
            if v not in sub:
                sub.add_vertex(v, self._labels[v])
            sub.add_edge(u, v, self.edge_label(u, v))
        return sub

    # ------------------------------------------------------------------
    # Statistics & export
    # ------------------------------------------------------------------
    def degree_statistics(self) -> "DegreeStatistics":
        """``d_max``, ``d_avg`` and ``d_stdev`` as reported in Table 1."""
        if not self._adj:
            return DegreeStatistics(0, 0.0, 0.0)
        degrees = np.fromiter(
            (len(nbrs) for nbrs in self._adj.values()),
            dtype=np.int64,
            count=len(self._adj),
        )
        return DegreeStatistics(
            int(degrees.max()), float(degrees.mean()), float(degrees.std())
        )

    def to_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[int, int]]:
        """Export as CSR arrays ``(offsets, targets, labels, id_map)``.

        ``id_map`` maps original vertex ids to dense ``0..n-1`` indices.
        Each undirected edge appears twice in ``targets`` (once per
        direction), matching the storage model of Fig. 11.
        """
        order = list(self._adj)
        id_map = {v: i for i, v in enumerate(order)}
        offsets = np.zeros(len(order) + 1, dtype=np.int64)
        targets = np.empty(2 * self._num_edges, dtype=np.int64)
        labels = np.empty(len(order), dtype=np.int64)
        pos = 0
        for i, v in enumerate(order):
            labels[i] = self._labels[v]
            for w in self._adj[v]:
                targets[pos] = id_map[w]
                pos += 1
            offsets[i + 1] = pos
        return offsets, targets, labels, id_map

    def __getstate__(self):
        # The CSR cache holds numpy arrays plus a back-reference to the
        # graph; rebuild it lazily on the other side instead of shipping it
        # (worker processes pickle the background graph once per pool).
        return (self._adj, self._labels, self._num_edges, self._edge_labels)

    def __setstate__(self, state) -> None:
        self._adj, self._labels, self._num_edges, self._edge_labels = state
        self._csr_cache = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._labels == other._labels
            and self._adj == other._adj
            and self._edge_labels == other._edge_labels
        )

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("Graph objects are mutable and unhashable")

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"


class DegreeStatistics:
    """Degree summary triple ``(d_max, d_avg, d_stdev)``."""

    __slots__ = ("d_max", "d_avg", "d_stdev")

    def __init__(self, d_max: int, d_avg: float, d_stdev: float) -> None:
        self.d_max = d_max
        self.d_avg = d_avg
        self.d_stdev = d_stdev

    def __iter__(self) -> Iterator[float]:
        return iter((self.d_max, self.d_avg, self.d_stdev))

    def __repr__(self) -> str:
        return (
            f"DegreeStatistics(d_max={self.d_max}, d_avg={self.d_avg:.2f}, "
            f"d_stdev={self.d_stdev:.2f})"
        )


def from_edges(
    edges: Iterable[Edge], labels: Optional[Dict[int, int]] = None
) -> Graph:
    """Build a graph from an edge list, creating vertices on demand.

    ``labels`` supplies vertex labels; missing vertices default to label 0.
    """
    graph = Graph()
    labels = labels or {}
    for u, v in edges:
        if u not in graph:
            graph.add_vertex(u, labels.get(u, 0))
        if v not in graph:
            graph.add_vertex(v, labels.get(v, 0))
        if u != v:
            graph.add_edge(u, v)
    for vertex, label in labels.items():
        graph.add_vertex(vertex, label)
    return graph
