"""IMDb-like bipartite metadata graph generator.

The paper's IMDb graph has five vertex types — Movie, Genre, Actress, Actor,
Director — and is bipartite: edges only connect a Movie vertex to a
non-Movie vertex.  The IMDB-1 query of §5.5 looks for
(actress, actor, director, movie, movie) tuples where both movies share a
genre and at least one individual repeats a role across the two movies.

The generator builds a bipartite graph with configurable cast sizes and can
plant complete IMDB-1 tuples for ground truth.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graph import Graph

MOVIE = 0
GENRE = 1
ACTRESS = 2
ACTOR = 3
DIRECTOR = 4

LABEL_NAMES = {
    MOVIE: "Movie",
    GENRE: "Genre",
    ACTRESS: "Actress",
    ACTOR: "Actor",
    DIRECTOR: "Director",
}


def imdb_graph(
    num_movies: int = 300,
    num_genres: int = 12,
    num_actresses: int = 250,
    num_actors: int = 250,
    num_directors: int = 80,
    cast_size: int = 4,
    genres_per_movie: int = 2,
    planted_imdb1: int = 0,
    seed: int = 0,
) -> Graph:
    """Generate an IMDb-like bipartite graph.

    Every movie is linked to ``genres_per_movie`` genres, one director, and
    ``cast_size`` performers split between actresses and actors.

    ``planted_imdb1`` plants that many complete IMDB-1 structures (a shared
    actress+actor+director across two movies of the same genre).
    """
    rng = np.random.default_rng(seed)
    graph = Graph()
    next_id = 0

    def new_vertex(label: int) -> int:
        nonlocal next_id
        graph.add_vertex(next_id, label)
        next_id += 1
        return next_id - 1

    genres = [new_vertex(GENRE) for _ in range(num_genres)]
    actresses = [new_vertex(ACTRESS) for _ in range(num_actresses)]
    actors = [new_vertex(ACTOR) for _ in range(num_actors)]
    directors = [new_vertex(DIRECTOR) for _ in range(num_directors)]

    for _ in range(num_movies):
        movie = new_vertex(MOVIE)
        for genre_idx in rng.choice(num_genres, size=min(genres_per_movie, num_genres), replace=False):
            graph.add_edge(movie, genres[int(genre_idx)])
        graph.add_edge(movie, directors[int(rng.integers(num_directors))])
        for _ in range(cast_size):
            if rng.random() < 0.5:
                graph.add_edge(movie, actresses[int(rng.integers(num_actresses))])
            else:
                graph.add_edge(movie, actors[int(rng.integers(num_actors))])

    for _ in range(planted_imdb1):
        plant_imdb1_instance(graph, rng, genres, actresses, actors, directors, new_vertex)
    return graph


def plant_imdb1_instance(
    graph, rng, genres, actresses, actors, directors, new_vertex
) -> List[int]:
    """Plant one complete IMDB-1 tuple; returns its vertices.

    Two fresh movies share one genre, and the same actress, actor and
    director appear in both (so every person "has the same role in two
    different movies", the strictest version of the query).
    """
    genre = genres[int(rng.integers(len(genres)))]
    actress = actresses[int(rng.integers(len(actresses)))]
    actor = actors[int(rng.integers(len(actors)))]
    director = directors[int(rng.integers(len(directors)))]
    movie_a = new_vertex(MOVIE)
    movie_b = new_vertex(MOVIE)
    for movie in (movie_a, movie_b):
        graph.add_edge(movie, genre)
        graph.add_edge(movie, actress)
        graph.add_edge(movie, actor)
        graph.add_edge(movie, director)
    return [genre, actress, actor, director, movie_a, movie_b]
