"""Synthetic dataset generators mirroring the paper's evaluation datasets.

Every generator is deterministic given a ``seed`` and produces a
:class:`repro.graph.Graph`.  See DESIGN.md §2 for the mapping from each
paper dataset to its generator here.
"""

from .imdb import imdb_graph
from .random_labeled import gnm_graph, gnp_graph, planted_graph
from .reddit import reddit_graph
from .rmat import rmat_edges, rmat_graph
from .suite import scale_free_unlabeled, suite_graph, suite_graphs
from .webgraph import plant_pattern, webgraph

__all__ = [
    "gnm_graph",
    "gnp_graph",
    "imdb_graph",
    "plant_pattern",
    "planted_graph",
    "reddit_graph",
    "rmat_edges",
    "rmat_graph",
    "scale_free_unlabeled",
    "suite_graph",
    "suite_graphs",
    "webgraph",
]
