"""Scaled-down stand-ins for the paper's published comparison datasets.

§5.6 compares motif counting against Arabesque on CiteSeer, Mico, Patent,
Youtube and LiveJournal.  Those graphs are unlabeled real-world graphs of
graded size and density; what the comparison exercises is how each system's
cost grows with graph size, average degree and motif frequency — not the
exact topology.  Each stand-in here is a scale-free graph whose vertex count
and average degree are scaled down by a common factor from Table 1, so the
relative ordering (CiteSeer ≪ Mico < Patent < LiveJournal < Youtube in work)
is preserved.

All graphs are unlabeled (single label 0) to match the unlabeled-motif
setting of §5.6.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from ..builder import GraphBuilder
from ..graph import Graph
from .random_labeled import gnm_graph

#: name → (num_vertices, target_avg_degree) after scale-down.
#: Paper values: CiteSeer (3.3K, 3.6), Mico (100K, 22), Patent (2.7M, 10.2),
#: Youtube (4.6M, 19.2), LiveJournal (4.8M, 17).  Scaled to laptop size while
#: keeping the size/density ordering that drives the §5.6 comparison.
SUITE_SHAPES: Dict[str, Tuple[int, float]] = {
    "citeseer": (330, 3.6),
    "mico": (300, 6.5),
    "patent": (400, 4.5),
    "youtube": (450, 5.0),
    "livejournal": (500, 7.5),
}


def suite_graph(name: str, seed: int = 0) -> Graph:
    """A stand-in for one of the paper's comparison graphs (unlabeled).

    Stand-ins use a uniform-degree G(n, m) model rather than preferential
    attachment: at simulation scale a single hub would dominate the motif
    census's combinatorial cost (``~d_max**3`` token fan-out), drowning the
    size/density trend the §5.6 comparison is about.
    """
    try:
        num_vertices, avg_degree = SUITE_SHAPES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown suite graph {name!r}; known: {sorted(SUITE_SHAPES)}"
        ) from exc
    num_edges = int(num_vertices * avg_degree / 2)
    return gnm_graph(num_vertices, num_edges, num_labels=1, seed=seed)


def suite_graphs(seed: int = 0) -> Iterator[Tuple[str, Graph]]:
    """All stand-ins in the paper's presentation order."""
    for name in SUITE_SHAPES:
        yield name, suite_graph(name, seed=seed)


def scale_free_unlabeled(
    num_vertices: int, avg_degree: float, seed: int = 0
) -> Graph:
    """Preferential-attachment graph with the requested average degree."""
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = np.random.default_rng(seed)
    out_degree = max(1, int(round(avg_degree / 2)))
    builder = GraphBuilder()
    endpoints = [0, 1]
    builder.add_edge(0, 1)
    for vertex in range(2, num_vertices):
        for _ in range(min(out_degree, vertex)):
            target = int(endpoints[int(rng.integers(len(endpoints)))])
            if target != vertex:
                builder.add_edge(vertex, target)
                endpoints.append(vertex)
                endpoints.append(target)
    graph = builder.build()
    for vertex in graph.vertices():
        graph.add_vertex(vertex, 0)
    return graph
