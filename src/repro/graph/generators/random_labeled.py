"""Random labeled graphs for testing and micro-benchmarks.

Erdős–Rényi G(n, m) and G(n, p) variants with uniform labels, plus a
planted-pattern helper so correctness tests can work with known matches.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..graph import Graph


def gnm_graph(
    num_vertices: int,
    num_edges: int,
    num_labels: int = 4,
    seed: int = 0,
) -> Graph:
    """Uniform random simple graph with ``num_edges`` edges, uniform labels."""
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise ValueError(f"too many edges requested: {num_edges} > {max_edges}")
    rng = np.random.default_rng(seed)
    graph = Graph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex, int(rng.integers(num_labels)))
    added = 0
    while added < num_edges:
        u = int(rng.integers(num_vertices))
        v = int(rng.integers(num_vertices))
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    return graph


def gnp_graph(
    num_vertices: int,
    edge_probability: float,
    num_labels: int = 4,
    seed: int = 0,
) -> Graph:
    """Erdős–Rényi G(n, p) with uniform labels."""
    rng = np.random.default_rng(seed)
    graph = Graph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex, int(rng.integers(num_labels)))
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if rng.random() < edge_probability:
                graph.add_edge(u, v)
    return graph


def planted_graph(
    num_vertices: int,
    num_edges: int,
    pattern_edges: Sequence[tuple],
    pattern_labels: Sequence[int],
    copies: int,
    num_labels: Optional[int] = None,
    seed: int = 0,
) -> Graph:
    """A G(n, m) graph with ``copies`` disjoint planted pattern instances.

    Planted instances use fresh vertices appended after the random part, so
    they are guaranteed present and easy to locate in tests (the last
    ``copies * |pattern|`` vertex ids).
    """
    if num_labels is None:
        num_labels = max(pattern_labels) + 1
    graph = gnm_graph(num_vertices, num_edges, num_labels, seed)
    next_id = num_vertices
    for _ in range(copies):
        members = []
        for label in pattern_labels:
            graph.add_vertex(next_id, int(label))
            members.append(next_id)
            next_id += 1
        for u, v in pattern_edges:
            graph.add_edge(members[u], members[v])
        # A random attachment edge keeps the planted part connected to the
        # background (exercises pruning around real matches).
        rng = np.random.default_rng(seed + next_id)
        anchor = int(rng.integers(num_vertices))
        if not graph.has_edge(members[0], anchor):
            graph.add_edge(members[0], anchor)
    return graph
