"""Reddit-like metadata graph generator.

The paper curates a 14-billion-edge graph from public Reddit dumps with four
vertex types — Author, Post, Comment, Subreddit — where Post and Comment
vertices carry a vote-balance label (Positive / Negative / Neutral / No
Rating).  Edges exist between Author–Post, Author–Comment, Subreddit–Post,
Post–Comment and Comment–Comment (parent-child threads).

This generator reproduces that schema at laptop scale, with knobs for the
thread shape, vote-balance distribution and the number of *planted* RDT-1
adversarial poster-commenter structures (so experiments have ground truth).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graph import Graph

# Label space (module-level constants shared with the RDT-1 template).
AUTHOR = 0
SUBREDDIT = 1
POST_POSITIVE = 2
POST_NEGATIVE = 3
POST_NEUTRAL = 4
POST_NO_RATING = 5
COMMENT_POSITIVE = 6
COMMENT_NEGATIVE = 7
COMMENT_NEUTRAL = 8
COMMENT_NO_RATING = 9

LABEL_NAMES = {
    AUTHOR: "Author",
    SUBREDDIT: "Subreddit",
    POST_POSITIVE: "Post(+)",
    POST_NEGATIVE: "Post(-)",
    POST_NEUTRAL: "Post(0)",
    POST_NO_RATING: "Post(nr)",
    COMMENT_POSITIVE: "Comment(+)",
    COMMENT_NEGATIVE: "Comment(-)",
    COMMENT_NEUTRAL: "Comment(0)",
    COMMENT_NO_RATING: "Comment(nr)",
}

_POST_LABELS = [POST_POSITIVE, POST_NEGATIVE, POST_NEUTRAL, POST_NO_RATING]
_COMMENT_LABELS = [
    COMMENT_POSITIVE,
    COMMENT_NEGATIVE,
    COMMENT_NEUTRAL,
    COMMENT_NO_RATING,
]


def reddit_graph(
    num_authors: int = 400,
    num_subreddits: int = 20,
    posts_per_author: float = 1.5,
    comments_per_post: float = 3.0,
    reply_probability: float = 0.3,
    planted_rdt1: int = 0,
    seed: int = 0,
) -> Graph:
    """Generate a Reddit-like metadata graph.

    ``planted_rdt1`` plants that many full RDT-1 structures (author with an
    up-voted and a down-voted post under different subreddits, each carrying
    an adversarial comment by the same author); these guarantee at least
    that many exact matches for the RDT-1 template.
    """
    rng = np.random.default_rng(seed)
    graph = Graph()
    next_id = 0

    def new_vertex(label: int) -> int:
        nonlocal next_id
        graph.add_vertex(next_id, label)
        next_id += 1
        return next_id - 1

    authors = [new_vertex(AUTHOR) for _ in range(num_authors)]
    subreddits = [new_vertex(SUBREDDIT) for _ in range(num_subreddits)]

    num_posts = max(1, int(num_authors * posts_per_author))
    posts: List[int] = []
    for _ in range(num_posts):
        label = int(rng.choice(_POST_LABELS, p=[0.35, 0.15, 0.3, 0.2]))
        post = new_vertex(label)
        posts.append(post)
        graph.add_edge(post, authors[int(rng.integers(num_authors))])
        graph.add_edge(post, subreddits[int(rng.integers(num_subreddits))])

    num_comments = int(num_posts * comments_per_post)
    comments: List[int] = []
    for _ in range(num_comments):
        label = int(rng.choice(_COMMENT_LABELS, p=[0.3, 0.2, 0.3, 0.2]))
        comment = new_vertex(label)
        graph.add_edge(comment, authors[int(rng.integers(num_authors))])
        if comments and rng.random() < reply_probability:
            parent = comments[int(rng.integers(len(comments)))]
        else:
            parent = posts[int(rng.integers(num_posts))]
        graph.add_edge(comment, parent)
        comments.append(comment)

    for _ in range(planted_rdt1):
        plant_rdt1_instance(graph, rng, authors, subreddits, new_vertex)
    return graph


def plant_rdt1_instance(graph, rng, authors, subreddits, new_vertex) -> List[int]:
    """Plant one full RDT-1 structure; returns its vertices.

    The structure (Fig. 10, all edges present): author ``A`` with posts
    ``P+`` and ``P-`` in *different* subreddits; a negative comment by ``A``
    on the positive post and a positive comment by ``A`` on the negative
    post.
    """
    author = authors[int(rng.integers(len(authors)))]
    sub_a_idx, sub_b_idx = rng.choice(len(subreddits), size=2, replace=False)
    post_pos = new_vertex(POST_POSITIVE)
    post_neg = new_vertex(POST_NEGATIVE)
    comment_neg = new_vertex(COMMENT_NEGATIVE)
    comment_pos = new_vertex(COMMENT_POSITIVE)
    graph.add_edge(post_pos, author)
    graph.add_edge(post_neg, author)
    graph.add_edge(post_pos, subreddits[int(sub_a_idx)])
    graph.add_edge(post_neg, subreddits[int(sub_b_idx)])
    graph.add_edge(comment_neg, post_pos)
    graph.add_edge(comment_pos, post_neg)
    graph.add_edge(comment_neg, author)
    graph.add_edge(comment_pos, author)
    return [author, post_pos, post_neg, comment_neg, comment_pos]
