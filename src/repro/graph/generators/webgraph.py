"""WDC-like synthetic webgraph generator.

The Web Data Commons hyperlink graph in the paper is a scale-free graph
whose vertex labels are top/second-level domain names with a very skewed
frequency distribution (2,903 labels; ``com`` and ``org`` alone cover
hundreds of millions of vertices, while rare labels such as ``ac`` cover
<0.2%).

This generator substitutes the 257-billion-edge crawl with a preferential-
attachment scale-free graph carrying Zipf-distributed categorical labels so
that the properties that drive the paper's strong-scaling and pruning
behaviour — skewed degree distribution *and* skewed label frequencies, with
frequent labels concentrated on high-degree vertices — are preserved.

Named label constants (:data:`DOMAIN_LABELS`) mirror the domains used by the
WDC-1..4 templates in Fig. 5 so examples read like the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..builder import GraphBuilder
from ..graph import Graph

#: Domain-style label names in decreasing frequency rank, mirroring Fig. 5.
DOMAIN_LABELS: List[str] = [
    "com", "org", "net", "edu", "gov", "info", "co", "ac", "uk", "de",
    "fr", "jp", "ru", "it", "nl", "au", "ca", "es", "se", "ch",
]

#: Mapping domain name → integer label used across examples and benchmarks.
DOMAIN_TO_LABEL: Dict[str, int] = {name: i for i, name in enumerate(DOMAIN_LABELS)}


def domain_label(name: str) -> int:
    """Integer label for a domain name (``'org'`` → 1, ...)."""
    try:
        return DOMAIN_TO_LABEL[name]
    except KeyError as exc:
        raise KeyError(f"unknown domain label {name!r}; known: {DOMAIN_LABELS}") from exc


def webgraph(
    num_vertices: int,
    edges_per_vertex: int = 4,
    num_labels: int = 20,
    seed: int = 0,
    label_exponent: float = 1.1,
    hub_label_bias: float = 0.6,
) -> Graph:
    """Generate a WDC-like labeled scale-free graph.

    Parameters
    ----------
    num_vertices:
        Number of vertices (paper: 3.5B; scaled down here).
    edges_per_vertex:
        Preferential-attachment out-degree (average degree ≈ 2×this).
    num_labels:
        Number of distinct domain-style labels (paper: 2,903).
    label_exponent:
        Zipf exponent of the label frequency distribution.
    hub_label_bias:
        Probability that a high-degree (early) vertex takes one of the most
        frequent labels — the paper notes "the high-frequency labels in the
        search templates also belong to vertices with high neighbor degree",
        which is what makes WDC queries stressful.
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = np.random.default_rng(seed)
    builder = GraphBuilder()

    # Preferential attachment via the repeated-endpoints trick: each new
    # vertex connects to endpoints sampled from the growing edge multiset.
    endpoints: List[int] = [0, 1]
    builder.add_edge(0, 1)
    for vertex in range(2, num_vertices):
        attached = set()
        for _ in range(min(edges_per_vertex, vertex)):
            if rng.random() < 0.9:
                target = int(endpoints[int(rng.integers(len(endpoints)))])
            else:  # occasional uniform link keeps the graph from being a tree core
                target = int(rng.integers(vertex))
            if target != vertex and target not in attached:
                attached.add(target)
                builder.add_edge(vertex, target)
                endpoints.append(target)
                endpoints.append(vertex)

    graph = builder.build()

    # Zipf label weights.
    weights = np.array([1.0 / (r + 1) ** label_exponent for r in range(num_labels)])
    weights /= weights.sum()
    top = max(2, num_labels // 5)
    top_weights = weights[:top] / weights[:top].sum()

    # Early vertices are the hubs under preferential attachment.
    for vertex in graph.vertices():
        if vertex < num_vertices // 20 and rng.random() < hub_label_bias:
            label = int(rng.choice(top, p=top_weights))
        else:
            label = int(rng.choice(num_labels, p=weights))
        graph.add_vertex(vertex, label)
    return graph


def plant_pattern(
    graph: Graph,
    pattern_edges: Sequence[tuple],
    pattern_labels: Sequence[int],
    copies: int,
    seed: int = 0,
    host_vertices: Optional[Sequence[int]] = None,
) -> List[List[int]]:
    """Plant ``copies`` copies of a labeled pattern into ``graph`` in place.

    Each copy relabels a random set of existing vertices and adds the
    pattern's edges between them, guaranteeing the graph contains at least
    ``copies`` exact matches (useful for experiments needing known matches).

    Returns the list of vertex lists used for each planted copy, in pattern
    vertex order ``0..len(pattern_labels)-1``.
    """
    rng = np.random.default_rng(seed)
    pool = list(host_vertices) if host_vertices is not None else list(graph.vertices())
    size = len(pattern_labels)
    if len(pool) < size:
        raise ValueError("graph too small to plant the pattern")
    planted: List[List[int]] = []
    for _ in range(copies):
        chosen = [int(v) for v in rng.choice(len(pool), size=size, replace=False)]
        members = [pool[c] for c in chosen]
        for position, vertex in enumerate(members):
            graph.add_vertex(vertex, int(pattern_labels[position]))
        for u, v in pattern_edges:
            if not graph.has_edge(members[u], members[v]):
                graph.add_edge(members[u], members[v])
        planted.append(members)
    return planted
