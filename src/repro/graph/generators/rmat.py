"""R-MAT / Graph500 synthetic graph generator.

The paper's weak-scaling experiments use R-MAT graphs "created following the
Graph 500 standards: 2^Scale vertices and a directed edge factor of 16",
then symmetrized, with vertices labeled ``ceil(log2(d + 1))``.

This module reproduces that generator: recursive quadrant sampling with the
Graph500 probabilities (a=0.57, b=0.19, c=0.19, d=0.05), duplicate/self-loop
removal, and the same degree-based labeling rule.
"""

from __future__ import annotations

import numpy as np

from ..builder import GraphBuilder
from ..graph import Graph
from ..labeling import apply_degree_labels

GRAPH500_A = 0.57
GRAPH500_B = 0.19
GRAPH500_C = 0.19
GRAPH500_D = 0.05


def rmat_edges(
    scale: int,
    edge_factor: int = 16,
    seed: int = 0,
    a: float = GRAPH500_A,
    b: float = GRAPH500_B,
    c: float = GRAPH500_C,
) -> np.ndarray:
    """Sample ``edge_factor * 2**scale`` directed R-MAT edges.

    Returns an ``(m, 2)`` int64 array.  Vectorized over all edges: at each of
    the ``scale`` recursion levels one quadrant decision is drawn per edge.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    d = 1.0 - a - b - c
    if d < -1e-9:
        raise ValueError("quadrant probabilities exceed 1")
    rng = np.random.default_rng(seed)
    num_edges = edge_factor * (1 << scale)
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        bit = 1 << (scale - 1 - level)
        draw = rng.random(num_edges)
        # Quadrants: a → (0,0), b → (0,1), c → (1,0), d → (1,1)
        go_b = (draw >= a) & (draw < a + b)
        go_c = (draw >= a + b) & (draw < a + b + c)
        go_d = draw >= a + b + c
        dst += bit * (go_b | go_d)
        src += bit * (go_c | go_d)
    return np.stack([src, dst], axis=1)


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    seed: int = 0,
    degree_labels: bool = True,
) -> Graph:
    """An undirected simple R-MAT graph with the paper's degree labels.

    The directed sample is symmetrized; duplicates, self loops and isolated
    vertex ids that were never drawn are dropped (as the paper's undirected
    versions do implicitly).
    """
    edges = rmat_edges(scale, edge_factor, seed)
    builder = GraphBuilder()
    for u, v in edges:
        builder.add_edge(int(u), int(v))
    graph = builder.build()
    if degree_labels:
        apply_degree_labels(graph)
    return graph
