"""Incremental construction of large graphs from raw edge streams.

Raw data sources (R-MAT samplers, web-crawl style edge dumps) emit duplicate
and self-loop edges; :class:`GraphBuilder` deduplicates and symmetrizes them
so downstream code always sees a simple undirected graph, as required by §2
of the paper ("we assume G is simple ... undirected").
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from .graph import Graph


class GraphBuilder:
    """Accumulates edges and labels and produces a :class:`Graph`.

    Duplicate edges (in either direction) and self loops are dropped
    silently; counters record how many of each were seen so ingest
    pipelines can report data-quality statistics.
    """

    def __init__(self) -> None:
        self._graph = Graph()
        self.duplicate_edges = 0
        self.self_loops = 0

    def add_vertex(self, vertex: int, label: int = 0) -> "GraphBuilder":
        self._graph.add_vertex(vertex, label)
        return self

    def add_edge(self, u: int, v: int, edge_label=None) -> "GraphBuilder":
        """Add an edge, creating endpoints (label 0) as needed."""
        if u == v:
            self.self_loops += 1
            return self
        if u not in self._graph:
            self._graph.add_vertex(u, 0)
        if v not in self._graph:
            self._graph.add_vertex(v, 0)
        if not self._graph.add_edge(u, v, edge_label):
            self.duplicate_edges += 1
        return self

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> "GraphBuilder":
        for u, v in edges:
            self.add_edge(u, v)
        return self

    def set_labels(self, labels: Dict[int, int]) -> "GraphBuilder":
        """Assign labels; vertices not yet present are created."""
        for vertex, label in labels.items():
            self._graph.add_vertex(vertex, label)
        return self

    def build(self, relabel_contiguous: bool = False) -> Graph:
        """Return the built graph.

        With ``relabel_contiguous`` vertex ids are remapped to a dense
        ``0..n-1`` range (useful before partitioning).
        """
        if not relabel_contiguous:
            return self._graph
        mapping = {v: i for i, v in enumerate(self._graph.vertices())}
        dense = Graph()
        for old, new in mapping.items():
            dense.add_vertex(new, self._graph.label(old))
        for u, v in self._graph.edges():
            dense.add_edge(mapping[u], mapping[v], self._graph.edge_label(u, v))
        return dense


def undirected_simple(
    edges: Iterable[Tuple[int, int]], labels: Optional[Dict[int, int]] = None
) -> Graph:
    """One-shot helper: simple undirected graph from a raw edge stream."""
    builder = GraphBuilder()
    builder.add_edges(edges)
    if labels:
        builder.set_labels(labels)
    return builder.build()
