"""Classical graph algorithms used by the matching pipeline and generators.

These are the building blocks the paper's system assumes from its substrate:
breadth-first traversal, connectivity tests (prototype generation must keep
prototypes connected), connected components, k-cores (used by the synthetic
dataset generators to shape dense regions) and shortest paths (used when
deriving non-local path constraints).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import GraphError
from .graph import Graph


def bfs_order(graph: Graph, source: int) -> List[int]:
    """Vertices reachable from ``source`` in BFS order (including it)."""
    if source not in graph:
        raise GraphError(f"vertex {source} not in graph")
    seen = {source}
    order = [source]
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        for nbr in graph.neighbors(vertex):
            if nbr not in seen:
                seen.add(nbr)
                order.append(nbr)
                queue.append(nbr)
    return order


def is_connected(graph: Graph) -> bool:
    """True for the empty graph and for graphs with one component."""
    if graph.num_vertices == 0:
        return True
    source = next(graph.vertices())
    return len(bfs_order(graph, source)) == graph.num_vertices


def connected_components(graph: Graph) -> List[Set[int]]:
    """All connected components as vertex sets, largest first."""
    remaining = set(graph.vertices())
    components: List[Set[int]] = []
    while remaining:
        source = next(iter(remaining))
        component = set(bfs_order(graph, source))
        components.append(component)
        remaining -= component
    components.sort(key=len, reverse=True)
    return components


def shortest_path_lengths(graph: Graph, source: int) -> Dict[int, int]:
    """Unweighted shortest-path lengths from ``source``."""
    if source not in graph:
        raise GraphError(f"vertex {source} not in graph")
    dist = {source: 0}
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        for nbr in graph.neighbors(vertex):
            if nbr not in dist:
                dist[nbr] = dist[vertex] + 1
                queue.append(nbr)
    return dist


def shortest_path(graph: Graph, source: int, target: int) -> Optional[List[int]]:
    """One unweighted shortest path ``source → target``, or ``None``."""
    if source not in graph or target not in graph:
        raise GraphError("endpoints must be in the graph")
    if source == target:
        return [source]
    parent: Dict[int, int] = {source: source}
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        for nbr in graph.neighbors(vertex):
            if nbr in parent:
                continue
            parent[nbr] = vertex
            if nbr == target:
                path = [target]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            queue.append(nbr)
    return None


def k_core(graph: Graph, k: int) -> Set[int]:
    """Vertices of the maximal subgraph with minimum degree ``k``."""
    degrees = {v: graph.degree(v) for v in graph.vertices()}
    queue = deque(v for v, d in degrees.items() if d < k)
    removed: Set[int] = set()
    while queue:
        vertex = queue.popleft()
        if vertex in removed:
            continue
        removed.add(vertex)
        for nbr in graph.neighbors(vertex):
            if nbr in removed:
                continue
            degrees[nbr] -= 1
            if degrees[nbr] < k:
                queue.append(nbr)
    return set(degrees) - removed


def triangles_at(graph: Graph, vertex: int) -> int:
    """Number of triangles through ``vertex``."""
    neighbors = graph.neighbors(vertex)
    count = 0
    for u in neighbors:
        count += len(graph.neighbors(u) & neighbors)
    return count // 2


def simple_cycles_upto(graph: Graph, max_length: int) -> List[Tuple[int, ...]]:
    """All simple cycles of length 3..``max_length``, canonically deduped.

    Intended for small template graphs (the paper's templates have at most a
    handful of vertices); complexity is exponential in ``max_length``.

    A cycle is returned as a vertex tuple without repeating the start, in a
    canonical rotation/direction so each cycle appears exactly once.
    """
    cycles: Set[Tuple[int, ...]] = set()
    vertices = sorted(graph.vertices())

    def canonical(cycle: List[int]) -> Tuple[int, ...]:
        best: Optional[Tuple[int, ...]] = None
        n = len(cycle)
        for direction in (cycle, cycle[::-1]):
            for shift in range(n):
                rotation = tuple(direction[(shift + i) % n] for i in range(n))
                if best is None or rotation < best:
                    best = rotation
        assert best is not None
        return best

    def extend(path: List[int], start: int) -> None:
        head = path[-1]
        for nbr in graph.neighbors(head):
            if nbr == start and len(path) >= 3:
                cycles.add(canonical(path))
            elif nbr > start and nbr not in path and len(path) < max_length:
                path.append(nbr)
                extend(path, start)
                path.pop()

    for start in vertices:
        extend([start], start)
    return sorted(cycles)


def induced_edges(graph: Graph, vertices: Iterable[int]) -> List[Tuple[int, int]]:
    """Canonical edges of the subgraph induced by ``vertices``."""
    keep = set(vertices)
    edges = []
    for v in keep:
        if v not in graph:
            continue
        for w in graph.neighbors(v):
            if w in keep and v < w:
                edges.append((v, w))
    return sorted(edges)
