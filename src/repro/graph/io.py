"""Reading and writing graphs in simple interchange formats.

Two formats are supported:

* **edge list + label file** — the format used by HavoqGT ingest tooling:
  one ``u v`` pair per line, plus an optional ``vertex label`` file;
* **JSON** — a self-contained single-file format convenient for examples
  and checkpoint metadata.

Lines starting with ``#`` are comments in the text formats.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from ..errors import GraphError
from .builder import GraphBuilder
from .graph import Graph

PathLike = Union[str, Path]


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write canonical undirected edges, one ``u v [edge_label]`` per line."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# undirected simple graph: n={graph.num_vertices} m={graph.num_edges}\n")
        for u, v in sorted(graph.edges()):
            label = graph.edge_label(u, v)
            if label is None:
                handle.write(f"{u} {v}\n")
            else:
                handle.write(f"{u} {v} {label}\n")


def write_labels(graph: Graph, path: PathLike) -> None:
    """Write ``vertex label`` pairs, one per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for vertex in sorted(graph.vertices()):
            handle.write(f"{vertex} {graph.label(vertex)}\n")


def read_edge_list(path: PathLike, labels_path: PathLike = None) -> Graph:
    """Read an edge-list file (and optional label file) into a graph.

    Duplicate edges and self loops in the input are dropped, mirroring the
    symmetrization step the paper applies to its raw datasets.
    """
    builder = GraphBuilder()
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2 or len(parts) > 3:
                raise GraphError(
                    f"{path}:{line_no}: expected 'u v [label]', got {line!r}"
                )
            builder.add_edge(
                int(parts[0]),
                int(parts[1]),
                edge_label=int(parts[2]) if len(parts) == 3 else None,
            )
    if labels_path is not None:
        builder.set_labels(read_label_file(labels_path))
    return builder.build()


def read_label_file(path: PathLike) -> Dict[int, int]:
    """Read a ``vertex label`` file into a dict."""
    labels: Dict[int, int] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise GraphError(
                    f"{path}:{line_no}: expected 'vertex label', got {line!r}"
                )
            labels[int(parts[0])] = int(parts[1])
    return labels


def write_json(graph: Graph, path: PathLike) -> None:
    """Write the graph as a single JSON document."""
    document = {
        "format": "repro-graph-v1",
        "labels": {str(v): graph.label(v) for v in graph.vertices()},
        "edges": sorted(graph.edges()),
        "edge_labels": [
            [u, v, label] for (u, v), label in sorted(graph.edge_labels().items())
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)


def read_json(path: PathLike) -> Graph:
    """Read a graph written by :func:`write_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("format") != "repro-graph-v1":
        raise GraphError(f"{path}: not a repro-graph-v1 document")
    graph = Graph()
    for vertex, label in document["labels"].items():
        graph.add_vertex(int(vertex), int(label))
    for u, v in document["edges"]:
        graph.add_edge(int(u), int(v))
    for u, v, label in document.get("edge_labels", []):
        graph.add_edge(int(u), int(v), int(label))
    return graph
