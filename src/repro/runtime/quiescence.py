"""Distributed quiescence detection (Safra-style token ring).

HavoqGT's asynchronous traversals complete "when all 'visitors' events
have been processed, which is determined by distributed quiescence
detection" (§4, citing Wellman & Walsh).  A sequential simulation *knows*
when the queues are empty, but the real system must pay for finding out:
a control token circulates the rank ring carrying message-count balances,
and termination is declared only after a full circuit observes every rank
idle with balanced send/receive counters — a circuit that must be
restarted whenever a rank is re-activated by a late message.

:class:`SafraDetector` reproduces that accounting.  The engine feeds it
rank activation events during the drain; at quiescence it reports how many
token circuits the protocol would have needed and how many control
messages that costs (one per ring hop).  The counts flow into
:class:`~repro.runtime.messages.MessageStats` so §5.7-style message
analyses include control traffic, and into the cost model as serialized
ring latency.
"""

from __future__ import annotations

from ..errors import EngineError


class SafraDetector:
    """Token-ring termination detection accounting for one traversal.

    The model: the ring token needs one *clean* circuit — every rank idle,
    no in-flight messages — to declare termination, plus one initial
    circuit to arm the protocol.  Every *reactivation wave* (some rank
    receiving new work after it had been observed idle) taints the current
    circuit and forces another.
    """

    def __init__(self, num_ranks: int) -> None:
        if num_ranks <= 0:
            raise EngineError("num_ranks must be positive")
        self.num_ranks = num_ranks
        self.reset()

    def reset(self) -> None:
        self._observed_idle = [False] * self.num_ranks
        self._reactivation_waves = 0
        self._wave_tainted = False
        self._finished = False

    # ------------------------------------------------------------------
    def rank_idle(self, rank: int) -> None:
        """The sweep found ``rank`` with an empty queue."""
        self._observed_idle[rank] = True

    def rank_activated(self, rank: int) -> None:
        """``rank`` received work; taints the circuit if it was seen idle."""
        if self._observed_idle[rank]:
            self._observed_idle[rank] = False
            if not self._wave_tainted:
                self._wave_tainted = True
                self._reactivation_waves += 1

    def sweep_completed(self) -> None:
        """One pass over all ranks finished; a tainted circuit restarts."""
        self._wave_tainted = False

    # ------------------------------------------------------------------
    @property
    def reactivation_waves(self) -> int:
        return self._reactivation_waves

    def circuits(self) -> int:
        """Token circuits needed: arm + final clean + one per tainted wave."""
        return 2 + self._reactivation_waves

    def control_messages(self) -> int:
        """Ring hops: one control message per rank per circuit."""
        return self.num_ranks * self.circuits()

    def finish(self) -> int:
        """Declare termination; returns the control-message count."""
        if self._finished:
            raise EngineError("detector already finished")
        self._finished = True
        return self.control_messages()

    def __repr__(self) -> str:
        return (
            f"SafraDetector(ranks={self.num_ranks}, "
            f"waves={self._reactivation_waves}, circuits={self.circuits()})"
        )
