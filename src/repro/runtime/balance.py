"""Load balancing of pruned intermediate graphs (§4, "Load Balancing").

After pruning, the surviving vertices/edges may concentrate on few ranks.
The paper checkpoints the active state and reloads it either *reshuffled*
over the same deployment (Fig. 9(a)) or onto a *smaller* deployment, which
also enables searching prototypes in parallel on replicas (Fig. 8, §5.4).

These helpers operate on :class:`~repro.runtime.partition.PartitionedGraph`
views; the underlying graph object is shared (the real system rewrites the
distributed CSR — here only the assignment changes, which is what drives
every simulated quantity).
"""

from __future__ import annotations

from typing import Optional

from ..errors import PartitionError
from .partition import PartitionedGraph, balanced_assignment


def reshuffle(pgraph: PartitionedGraph) -> PartitionedGraph:
    """Rebalance vertex-to-rank assignment on the same number of ranks.

    Uses greedy largest-degree-first bin packing so edge-endpoint load is
    nearly even; the paper reports 1.3–3.8× end-to-end gains from this step
    on the WDC patterns.
    """
    assignment = balanced_assignment(pgraph.graph, pgraph.num_ranks)
    return pgraph.with_assignment(assignment)


def reload_on(
    pgraph: PartitionedGraph,
    num_ranks: int,
    ranks_per_node: Optional[int] = None,
    balanced: bool = True,
) -> PartitionedGraph:
    """Reload the (pruned) graph on a different deployment size.

    Models Alg. 1 line #13's "distributed G* can be load rebalanced":
    checkpoint, then restart on ``num_ranks`` ranks — typically far fewer
    once the candidate set is orders of magnitude smaller than ``G``.
    """
    if num_ranks <= 0:
        raise PartitionError("num_ranks must be positive")
    new_pgraph = PartitionedGraph(
        pgraph.graph,
        num_ranks,
        assignment=None,
        delegate_degree_threshold=pgraph.delegate_degree_threshold,
        # Optional[int]: an explicit ranks_per_node=0 is "unset" (falls
        # back to the source deployment), never a zero-node layout.
        ranks_per_node=(
            ranks_per_node
            if ranks_per_node is not None and ranks_per_node != 0
            else pgraph.ranks_per_node
        ),
    )
    if balanced:
        return reshuffle(new_pgraph)
    return new_pgraph


def rebalance_cost(pgraph: PartitionedGraph, per_edge_cost: float = 2.0e-6) -> float:
    """Simulated seconds to checkpoint + reshuffle + reload the graph.

    Proportional to the active edge count: every surviving edge is written
    and re-read once.  This is the "infrastructure management" overhead
    component (S) of Fig. 6.
    """
    return per_edge_cost * (2 * pgraph.graph.num_edges + pgraph.graph.num_vertices)
