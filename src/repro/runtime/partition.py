"""Distributed graph partitioning (simulated).

HavoqGT distributes graphs across MPI ranks by hashing vertex ids, and uses
*delegate partitioning* [Pearce et al., SC'14] for high-degree vertices: a
hub's edges are spread across all ranks and every rank holds a delegate copy
of the hub, so messages to the hub are rank-local.

This module reproduces both strategies for the in-process simulation.  A
:class:`PartitionedGraph` wraps a :class:`~repro.graph.Graph` with a
vertex → rank assignment plus the delegate set, and a rank → physical-node
mapping used by the locality experiment (Fig. 12): messages between ranks on
the same node are "local" at the network level.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..errors import PartitionError
from ..graph.graph import Graph


class PartitionedGraph:
    """A graph distributed over ``num_ranks`` simulated MPI ranks.

    Parameters
    ----------
    graph:
        The underlying (shared, read-mostly) graph.
    num_ranks:
        Number of simulated MPI processes.
    assignment:
        Explicit vertex → rank map; defaults to hash partitioning.
    delegate_degree_threshold:
        Vertices with degree at or above this become *delegates*: every rank
        holds a copy, so visitor pushes to them are always rank-local (the
        controller rank remains ``assignment[v]``).  ``None`` disables
        delegates.
    ranks_per_node:
        How many ranks share a physical node (Fig. 12 locality knob).  A
        message between ranks on the same node does not cross the network.
    """

    def __init__(
        self,
        graph: Graph,
        num_ranks: int,
        assignment: Optional[Dict[int, int]] = None,
        delegate_degree_threshold: Optional[int] = None,
        ranks_per_node: int = 1,
    ) -> None:
        if num_ranks <= 0:
            raise PartitionError("num_ranks must be positive")
        if ranks_per_node <= 0:
            raise PartitionError("ranks_per_node must be positive")
        self.graph = graph
        self.num_ranks = num_ranks
        self.ranks_per_node = ranks_per_node
        if assignment is None:
            assignment = hash_assignment(graph.vertices(), num_ranks)
        else:
            bad = [v for v in graph.vertices() if v not in assignment]
            if bad:
                raise PartitionError(f"{len(bad)} vertices missing from assignment")
            out_of_range = [r for r in assignment.values() if not 0 <= r < num_ranks]
            if out_of_range:
                raise PartitionError("assignment contains out-of-range ranks")
        self.assignment = assignment
        if delegate_degree_threshold is None:
            self.delegates: Set[int] = set()
        else:
            self.delegates = {
                v for v in graph.vertices() if graph.degree(v) >= delegate_degree_threshold
            }
        self.delegate_degree_threshold = delegate_degree_threshold

    # ------------------------------------------------------------------
    def rank_of(self, vertex: int) -> int:
        """Controller rank of ``vertex``."""
        try:
            return self.assignment[vertex]
        except KeyError as exc:
            raise PartitionError(f"vertex {vertex} not assigned") from exc

    def node_of_rank(self, rank: int) -> int:
        """Physical node hosting ``rank``."""
        return rank // self.ranks_per_node

    def num_nodes(self) -> int:
        return (self.num_ranks + self.ranks_per_node - 1) // self.ranks_per_node

    def is_remote(self, src_vertex: int, dst_vertex: int) -> bool:
        """Would a visitor push ``src → dst`` cross rank boundaries?

        Pushes to delegate vertices are always rank-local (every rank holds
        a delegate copy).
        """
        if dst_vertex in self.delegates:
            return False
        return self.rank_of(src_vertex) != self.rank_of(dst_vertex)

    def crosses_network(self, src_rank: int, dst_rank: int) -> bool:
        """Would a rank-to-rank message cross the physical network?"""
        return self.node_of_rank(src_rank) != self.node_of_rank(dst_rank)

    # ------------------------------------------------------------------
    def vertices_of_rank(self, rank: int) -> List[int]:
        return [v for v, r in self.assignment.items() if r == rank and v in self.graph]

    def rank_vertex_counts(self) -> List[int]:
        counts = [0] * self.num_ranks
        for vertex in self.graph.vertices():
            counts[self.assignment[vertex]] += 1
        return counts

    def rank_edge_counts(self) -> List[int]:
        """Per-rank count of edge endpoints owned by each rank.

        Delegate hub edges are spread evenly across ranks, matching the
        delegate-partitioned storage model.
        """
        counts = [0.0] * self.num_ranks
        for vertex in self.graph.vertices():
            degree = self.graph.degree(vertex)
            if vertex in self.delegates:
                share = degree / self.num_ranks
                for rank in range(self.num_ranks):
                    counts[rank] += share
            else:
                counts[self.assignment[vertex]] += degree
        return [int(round(c)) for c in counts]

    def load_imbalance(self) -> float:
        """``max / avg`` edge-endpoint load across ranks (1.0 = perfect)."""
        counts = self.rank_edge_counts()
        total = sum(counts)
        if total == 0:
            return 1.0
        avg = total / self.num_ranks
        return max(counts) / avg if avg else 1.0

    def with_assignment(self, assignment: Dict[int, int]) -> "PartitionedGraph":
        """A new view with a different vertex → rank assignment."""
        return PartitionedGraph(
            self.graph,
            self.num_ranks,
            assignment=assignment,
            delegate_degree_threshold=self.delegate_degree_threshold,
            ranks_per_node=self.ranks_per_node,
        )

    def __repr__(self) -> str:
        return (
            f"PartitionedGraph(n={self.graph.num_vertices}, ranks={self.num_ranks}, "
            f"delegates={len(self.delegates)}, nodes={self.num_nodes()})"
        )


def hash_assignment(vertices: Iterable[int], num_ranks: int) -> Dict[int, int]:
    """HavoqGT-style hash partitioning: rank = hash(vertex) mod ranks.

    A multiplicative hash decorrelates rank from vertex id (consecutive ids
    produced by generators would otherwise stripe perfectly).
    """
    if num_ranks <= 0:
        raise PartitionError("num_ranks must be positive")
    mask = (1 << 64) - 1
    return {
        v: ((v * 0x9E3779B97F4A7C15 + 0x7F4A7C15) & mask) % num_ranks
        for v in vertices
    }


def block_assignment(vertices: Sequence[int], num_ranks: int) -> Dict[int, int]:
    """Contiguous block partitioning (poor balance on skewed graphs)."""
    if num_ranks <= 0:
        raise PartitionError("num_ranks must be positive")
    vertices = list(vertices)
    block = max(1, (len(vertices) + num_ranks - 1) // num_ranks)
    return {v: min(i // block, num_ranks - 1) for i, v in enumerate(vertices)}


def balanced_assignment(graph: Graph, num_ranks: int) -> Dict[int, int]:
    """Greedy balanced partitioning by degree (largest-first bin packing).

    Used by the load-balancing step (§4): after pruning, active vertices are
    reshuffled so edge-endpoint load is even across ranks.
    """
    if num_ranks <= 0:
        raise PartitionError("num_ranks must be positive")
    loads = [0] * num_ranks
    assignment: Dict[int, int] = {}
    for vertex in sorted(graph.vertices(), key=graph.degree, reverse=True):
        rank = loads.index(min(loads))
        assignment[vertex] = rank
        loads[rank] += graph.degree(vertex) + 1
    return assignment
