"""Always-on, low-overhead metrics: counters, gauges, log-scale histograms.

The tracer (:mod:`repro.runtime.trace`) is an opt-in *profiling* tool: it
allocates a span tree and is off by default precisely because span
bookkeeping is too heavy for production runs.  This module is the other
half of the observability story — a :class:`MetricsRegistry` that is
**on by default** and cheap enough to stay on: every metric handle owns a
small preallocated numpy buffer, so a hot-path update is one vectorless
``ndarray.__setitem__`` add and never allocates.

Three instrument kinds:

* **Counter** — monotonically increasing float64 (``inc``).  Counters are
  the cross-process parity surface: merging worker registries must
  reproduce a sequential run's totals bit-exactly, so hot-module counter
  updates count *events* (rounds, messages, checks), which are
  deterministic, not wall times.  Time-valued counters carry a
  ``_seconds`` suffix by convention.
* **Gauge** — last-written float64 (``set``), for sizes and levels
  (shared-memory segment bytes, cache entry counts).
* **Histogram** — fixed log2-scale buckets (``observe``): bucket ``i``
  holds values ``v`` with ``bit_length(int(v)) == i``, i.e. the bucket
  upper bounds are 0, 1, 2, 4, ... ``2**(_HISTOGRAM_BUCKETS - 2)`` with a
  final overflow bucket.  Bucket counts and the running sum are numpy
  int64/float64 cells; no per-observation allocation.

Cross-process aggregation mirrors the tracer's payload grafting: a pooled
worker builds a fresh registry per task, :meth:`MetricsRegistry.export`
packs it into plain arrays riding the ``PoolTask`` result payload, and
the parent folds it in with :meth:`MetricsRegistry.merge` (counters and
histogram buckets add; gauges add too, because worker-side gauges are
per-worker quantities whose fleet total is the meaningful number).

Pickling a registry transports nothing (``__getstate__`` → ``{}``), the
same contract as the tracer: metric values never cross process
boundaries implicitly, only explicit ``export()`` payloads do.

:class:`ConstraintCostModel` is the first adaptive-execution store built
on the measured numbers: an EWMA of per-constraint NLCC wall seconds,
keyed by constraint key, recycled across prototypes (and across a whole
template-library batch when the executor shares one ``PipelineOptions``).
``order_constraints`` consumes it through quantized log-scale buckets so
that sub-resolution measurements (unit-test-sized workloads) never
perturb the deterministic static order.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "NULL_METRICS",
    "ConstraintCostModel",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
]

#: log2 buckets: index = bit_length(int(value)), clamped to the last slot
_HISTOGRAM_BUCKETS = 28


class Counter:
    """Monotonic counter backed by one preallocated float64 cell."""

    __slots__ = ("name", "_cell")

    def __init__(self, name: str) -> None:
        self.name = name
        self._cell = np.zeros(1, dtype=np.float64)

    def inc(self, amount: float = 1.0) -> None:
        self._cell[0] += amount

    @property
    def value(self) -> float:
        return float(self._cell[0])


class Gauge:
    """Last-written value backed by one preallocated float64 cell."""

    __slots__ = ("name", "_cell")

    def __init__(self, name: str) -> None:
        self.name = name
        self._cell = np.zeros(1, dtype=np.float64)

    def set(self, value: float) -> None:
        self._cell[0] = value

    @property
    def value(self) -> float:
        return float(self._cell[0])


class Histogram:
    """Fixed log2-bucket histogram; one int64 row plus a float64 sum."""

    __slots__ = ("name", "_buckets", "_sum")

    def __init__(self, name: str) -> None:
        self.name = name
        self._buckets = np.zeros(_HISTOGRAM_BUCKETS, dtype=np.int64)
        self._sum = np.zeros(1, dtype=np.float64)

    def observe(self, value: float) -> None:
        index = int(value).bit_length() if value > 0 else 0
        if index >= _HISTOGRAM_BUCKETS:
            index = _HISTOGRAM_BUCKETS - 1
        self._buckets[index] += 1
        self._sum[0] += value

    @property
    def count(self) -> int:
        return int(self._buckets.sum())

    @property
    def sum(self) -> float:
        return float(self._sum[0])

    @property
    def buckets(self) -> List[int]:
        return self._buckets.tolist()


class _NullInstrument:
    """Shared no-op counter/gauge/histogram of :data:`NULL_METRICS`."""

    __slots__ = ()
    name = "null"
    value = 0.0
    count = 0
    sum = 0.0
    buckets: List[int] = []

    def inc(self, _amount: float = 1.0) -> None:
        pass

    def set(self, _value: float) -> None:
        pass

    def observe(self, _value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Disabled registry: every instrument is the shared no-op.

    The measurement baseline for the <2% overhead bar, and the explicit
    off-switch for callers that want literally zero accounting.
    """

    __slots__ = ()
    enabled = False

    def counter(self, _name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, _name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, _name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def export(self) -> Dict[str, object]:
        return {}

    def merge(self, _payload: Dict[str, object]) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def __repr__(self) -> str:
        return "NullMetricsRegistry()"


NULL_METRICS = NullMetricsRegistry()


class MetricsRegistry:
    """A process-local set of named counters, gauges and histograms.

    Instruments are created on first request and cached by name, so the
    idiomatic hot-loop pattern is to resolve handles once before the loop::

        rounds = metrics.counter("fixpoint.rounds_dense")
        while ...:
            rounds.inc()

    Not thread-safe (like the tracer: one registry per process, workers
    export and the parent merges).
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- pickling: registries cross process boundaries empty -------------
    def __getstate__(self) -> Dict[str, object]:
        return {}

    def __setstate__(self, _state: Dict[str, object]) -> None:
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        handle = self._counters.get(name)
        if handle is None:
            handle = self._counters[name] = Counter(name)
        return handle

    def gauge(self, name: str) -> Gauge:
        handle = self._gauges.get(name)
        if handle is None:
            handle = self._gauges[name] = Gauge(name)
        return handle

    def histogram(self, name: str) -> Histogram:
        handle = self._histograms.get(name)
        if handle is None:
            handle = self._histograms[name] = Histogram(name)
        return handle

    # ------------------------------------------------------------------
    def counters(self) -> Iterator[Tuple[str, float]]:
        for name in sorted(self._counters):
            yield name, self._counters[name].value

    def gauges(self) -> Iterator[Tuple[str, float]]:
        for name in sorted(self._gauges):
            yield name, self._gauges[name].value

    def histograms(self) -> Iterator[Tuple[str, Histogram]]:
        for name in sorted(self._histograms):
            yield name, self._histograms[name]

    # ------------------------------------------------------------------
    def export(self) -> Dict[str, object]:
        """Pack the registry into plain arrays for a result payload.

        The wire format is ``(names tuple, values ndarray)`` per
        instrument kind — histograms additionally carry the bucket-count
        matrix — small enough to ride every ``PoolTask`` result and cheap
        to merge.  Empty registries export an empty dict so untouched
        workers add nothing to the payload.
        """
        payload: Dict[str, object] = {}
        if self._counters:
            names = tuple(sorted(self._counters))
            payload["counters"] = (
                names,
                np.array(
                    [self._counters[n].value for n in names], dtype=np.float64
                ),
            )
        if self._gauges:
            names = tuple(sorted(self._gauges))
            payload["gauges"] = (
                names,
                np.array(
                    [self._gauges[n].value for n in names], dtype=np.float64
                ),
            )
        if self._histograms:
            names = tuple(sorted(self._histograms))
            payload["histograms"] = (
                names,
                np.stack([self._histograms[n]._buckets for n in names]),
                np.array(
                    [self._histograms[n].sum for n in names], dtype=np.float64
                ),
            )
        return payload

    def merge(self, payload: Optional[Dict[str, object]]) -> None:
        """Fold an :meth:`export` payload into this registry (additive)."""
        if not payload:
            return
        if "counters" in payload:
            names, values = payload["counters"]  # type: ignore[misc]
            for name, value in zip(names, values.tolist()):
                self.counter(name).inc(value)
        if "gauges" in payload:
            names, values = payload["gauges"]  # type: ignore[misc]
            for name, value in zip(names, values.tolist()):
                gauge = self.gauge(name)
                gauge.set(gauge.value + value)
        if "histograms" in payload:
            names, buckets, sums = payload["histograms"]  # type: ignore[misc]
            for i, name in enumerate(names):
                histogram = self.histogram(name)
                histogram._buckets += buckets[i]
                histogram._sum[0] += float(sums[i])

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable dump of every instrument's current value."""
        return {
            "counters": {name: value for name, value in self.counters()},
            "gauges": {name: value for name, value in self.gauges()},
            "histograms": {
                name: {
                    "count": histogram.count,
                    "sum": histogram.sum,
                    "buckets": histogram.buckets,
                }
                for name, histogram in self.histograms()
            },
        }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )


# ----------------------------------------------------------------------
# Adaptive execution: measured per-constraint NLCC costs
# ----------------------------------------------------------------------
#: EWMA resolution floor (seconds): measurements below one tick quantize
#: to bucket 0, so timing noise on test- and demo-sized workloads (where
#: a whole constraint check finishes in milliseconds) can never reorder
#: constraints away from the deterministic static order; at the massive-
#: graph scale the paper targets, per-constraint walks run for seconds
#: and land in clearly separated buckets
COST_RESOLUTION_SECONDS = 0.05

#: EWMA smoothing: new = (1 - alpha) * old + alpha * sample, matching the
#: pool's seconds-per-unit rate model
COST_EWMA_ALPHA = 0.3


class ConstraintCostModel:
    """EWMA of measured per-constraint NLCC wall seconds.

    Keys are ``NonLocalConstraint.key`` tuples — stable across prototypes
    of one template and across the members of a template-library batch
    class, which is what lets measurements recycle.  Like the registry,
    the model pickles to empty: each pooled worker grows its own from the
    tasks it serves.
    """

    def __init__(self) -> None:
        self._ewma: Dict[object, float] = {}

    def __getstate__(self) -> Dict[str, object]:
        return {}

    def __setstate__(self, _state: Dict[str, object]) -> None:
        self._ewma = {}

    def observe(self, key: object, seconds: float) -> None:
        old = self._ewma.get(key)
        self._ewma[key] = (
            seconds
            if old is None
            else (1.0 - COST_EWMA_ALPHA) * old + COST_EWMA_ALPHA * seconds
        )

    def seconds(self, key: object) -> Optional[float]:
        return self._ewma.get(key)

    def bucket(self, key: object) -> int:
        """Quantized cost: log2 bucket of EWMA / resolution (0 if unseen).

        Two constraints whose measured costs sit within the same power-
        of-two band compare equal, falling back to the static selectivity
        order — the determinism guard for near-tied (and unmeasured)
        constraints.
        """
        ewma = self._ewma.get(key)
        if ewma is None:
            return 0
        return int(ewma / COST_RESOLUTION_SECONDS).bit_length()

    def __len__(self) -> int:
        return len(self._ewma)

    def __repr__(self) -> str:
        return f"ConstraintCostModel(constraints={len(self._ewma)})"
