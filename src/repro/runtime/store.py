"""Per-rank distributed graph storage (HavoqGT's delegate-partitioned CSR).

The engine simulates communication over a logically shared graph; this
module models the *storage* side of HavoqGT's design [Pearce et al.,
IPDPS'13/SC'14]: every rank holds a CSR shard of the edges owned by its
vertices, and the edges of *delegate* (high-degree) vertices are striped
round-robin across all ranks, each of which also keeps a delegate copy of
the hub itself.

Uses: per-rank memory accounting (the cluster-wide view behind Fig. 11),
storage-balance analysis for the load-balancing experiments, and a
faithful answer to "what does rank r actually hold?".
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..errors import PartitionError
from .partition import PartitionedGraph

#: bytes per CSR offset / edge target / vertex label, as in Fig. 11(a)
OFFSET_BYTES = 8
TARGET_BYTES = 8
LABEL_BYTES = 2


class RankShard:
    """One rank's CSR shard: locally-owned vertices plus delegate copies."""

    def __init__(
        self,
        rank: int,
        vertex_ids: List[int],
        offsets: np.ndarray,
        targets: np.ndarray,
        labels: np.ndarray,
    ) -> None:
        self.rank = rank
        #: vertex ids in shard order (owned vertices, then delegate copies)
        self.vertex_ids = vertex_ids
        self._index = {v: i for i, v in enumerate(vertex_ids)}
        self.offsets = offsets
        self.targets = targets
        self.labels = labels

    @property
    def num_vertices(self) -> int:
        return len(self.vertex_ids)

    @property
    def num_edge_slots(self) -> int:
        return int(self.targets.shape[0])

    def holds(self, vertex: int) -> bool:
        return vertex in self._index

    def adjacency(self, vertex: int) -> np.ndarray:
        """The edge targets stored on this rank for ``vertex``."""
        try:
            i = self._index[vertex]
        except KeyError as exc:
            raise PartitionError(
                f"rank {self.rank} does not hold vertex {vertex}"
            ) from exc
        return self.targets[self.offsets[i]:self.offsets[i + 1]]

    def label(self, vertex: int) -> int:
        return int(self.labels[self._index[vertex]])

    def memory_bytes(self) -> int:
        return (
            OFFSET_BYTES * (self.num_vertices + 1)
            + TARGET_BYTES * self.num_edge_slots
            + LABEL_BYTES * self.num_vertices
        )

    def __repr__(self) -> str:
        return (
            f"RankShard(rank={self.rank}, vertices={self.num_vertices}, "
            f"edge_slots={self.num_edge_slots})"
        )


class DistributedGraphStore:
    """The full set of rank shards for a partitioned graph."""

    def __init__(self, pgraph: PartitionedGraph) -> None:
        self.pgraph = pgraph
        self.shards = [_build_shard(pgraph, rank) for rank in range(pgraph.num_ranks)]

    def shard(self, rank: int) -> RankShard:
        try:
            return self.shards[rank]
        except IndexError as exc:
            raise PartitionError(f"no shard for rank {rank}") from exc

    def total_memory_bytes(self) -> int:
        return sum(shard.memory_bytes() for shard in self.shards)

    def memory_by_rank(self) -> List[int]:
        return [shard.memory_bytes() for shard in self.shards]

    def storage_imbalance(self) -> float:
        """max/avg shard memory (1.0 = perfectly even)."""
        sizes = self.memory_by_rank()
        avg = sum(sizes) / len(sizes)
        return max(sizes) / avg if avg else 1.0

    def iter_all_edges(self) -> Iterator[Tuple[int, int]]:
        """Every stored (source, target) slot across all shards.

        Non-delegate edges appear once per direction, delegate edges once
        per stripe — exactly the cluster-wide storage footprint.
        """
        for shard in self.shards:
            for i, v in enumerate(shard.vertex_ids):
                for t in shard.targets[shard.offsets[i]:shard.offsets[i + 1]]:
                    yield v, int(t)

    def __repr__(self) -> str:
        return (
            f"DistributedGraphStore(ranks={len(self.shards)}, "
            f"total={self.total_memory_bytes()}B, "
            f"imbalance={self.storage_imbalance():.2f})"
        )


def _build_shard(pgraph: PartitionedGraph, rank: int) -> RankShard:
    graph = pgraph.graph
    num_ranks = pgraph.num_ranks
    delegates = pgraph.delegates

    rows: List[Tuple[int, List[int]]] = []
    # Locally-owned, non-delegate vertices: full adjacency.
    for vertex in graph.vertices():
        if pgraph.rank_of(vertex) == rank and vertex not in delegates:
            rows.append((vertex, sorted(graph.neighbors(vertex))))
    # Delegate vertices: every rank holds a copy with a stripe of edges.
    for hub in sorted(delegates):
        stripe = [
            nbr
            for index, nbr in enumerate(sorted(graph.neighbors(hub)))
            if index % num_ranks == rank
        ]
        rows.append((hub, stripe))

    vertex_ids = [v for v, _nbrs in rows]
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    total = sum(len(nbrs) for _v, nbrs in rows)
    targets = np.empty(total, dtype=np.int64)
    labels = np.empty(len(rows), dtype=np.int64)
    position = 0
    for i, (vertex, nbrs) in enumerate(rows):
        labels[i] = graph.label(vertex)
        for nbr in nbrs:
            targets[position] = nbr
            position += 1
        offsets[i + 1] = position
    return RankShard(rank, vertex_ids, offsets, targets, labels)
