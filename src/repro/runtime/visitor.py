"""Visitor protocol of the simulated vertex-centric engine.

HavoqGT algorithms are written as vertex callbacks triggered by *visitors*
(events addressed to a vertex).  In this simulation a visitor is a plain
object carrying its target vertex and an algorithm-defined payload; the
engine routes it to the owning rank's queue and invokes the algorithm's
``visit`` callback there.
"""

from __future__ import annotations

from typing import Any, Optional


class Visitor:
    """An event addressed to ``target`` with an opaque ``payload``.

    ``source`` is the vertex that pushed the visitor (``None`` for seed
    visitors created by ``do_traversal``); the engine uses it for
    local/remote message classification.
    """

    __slots__ = ("target", "payload", "source")

    def __init__(self, target: int, payload: Any = None, source: Optional[int] = None) -> None:
        self.target = target
        self.payload = payload
        self.source = source

    def __repr__(self) -> str:
        return f"Visitor(target={self.target}, source={self.source}, payload={self.payload!r})"
