"""Simulated HavoqGT-style distributed runtime.

In-process reproduction of the MPI substrate the paper builds on: hash and
delegate partitioning, an asynchronous vertex-centric visitor engine with
quiescence detection, message accounting (local / remote / cross-network),
a parallel cost model, load balancing, and checkpointing.
"""

from .balance import rebalance_cost, reload_on, reshuffle
from .checkpoint import load_checkpoint, save_checkpoint
from .engine import Context, Engine
from .messages import CostModel, MessageStats, PhaseCounters
from .parallel import PrototypeSearchPool, state_to_payload
from .partition import (
    PartitionedGraph,
    balanced_assignment,
    block_assignment,
    hash_assignment,
)
from .quiescence import SafraDetector
from .store import DistributedGraphStore, RankShard
from .trace import NULL_TRACER, NullTracer, Span, Tracer
from .visitor import Visitor

__all__ = [
    "Context",
    "CostModel",
    "Engine",
    "MessageStats",
    "NULL_TRACER",
    "NullTracer",
    "PartitionedGraph",
    "PhaseCounters",
    "DistributedGraphStore",
    "PrototypeSearchPool",
    "RankShard",
    "SafraDetector",
    "Span",
    "Tracer",
    "Visitor",
    "balanced_assignment",
    "block_assignment",
    "hash_assignment",
    "load_checkpoint",
    "rebalance_cost",
    "reload_on",
    "reshuffle",
    "save_checkpoint",
    "state_to_payload",
]
