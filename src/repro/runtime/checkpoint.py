"""Checkpointing of intermediate search state (§4, "Load Balancing").

The paper checkpoints "the current state of execution" — the pruned graph
plus per-vertex match state — before relaunching on a rebalanced or smaller
deployment.  This module serializes exactly that: the active subgraph and
an arbitrary JSON-serializable per-vertex state dict.

Checkpoints are single JSON files; restore reconstructs a graph equal to
the saved one (validated by round-trip tests and the failure-injection
integration test).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Tuple, Union

from ..errors import CheckpointError
from ..graph.graph import Graph

PathLike = Union[str, Path]

FORMAT_TAG = "repro-checkpoint-v1"


def save_checkpoint(
    path: PathLike,
    graph: Graph,
    vertex_state: Dict[int, Any],
    metadata: Dict[str, Any] = None,
) -> None:
    """Write the active graph and per-vertex state to ``path``."""
    document = {
        "format": FORMAT_TAG,
        "metadata": metadata or {},
        "labels": {str(v): graph.label(v) for v in graph.vertices()},
        "edges": sorted(graph.edges()),
        "edge_labels": [
            [u, v, label] for (u, v), label in sorted(graph.edge_labels().items())
        ],
        "vertex_state": {str(v): state for v, state in vertex_state.items()},
    }
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
    except TypeError as exc:
        raise CheckpointError(f"vertex state is not JSON-serializable: {exc}") from exc


def load_checkpoint(path: PathLike) -> Tuple[Graph, Dict[int, Any], Dict[str, Any]]:
    """Read a checkpoint back; returns ``(graph, vertex_state, metadata)``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if document.get("format") != FORMAT_TAG:
        raise CheckpointError(f"{path}: not a {FORMAT_TAG} document")
    graph = Graph()
    for vertex, label in document["labels"].items():
        graph.add_vertex(int(vertex), int(label))
    for u, v in document["edges"]:
        graph.add_edge(int(u), int(v))
    for u, v, label in document.get("edge_labels", []):
        graph.add_edge(int(u), int(v), int(label))
    vertex_state = {int(v): state for v, state in document["vertex_state"].items()}
    return graph, vertex_state, document["metadata"]
