"""Real multi-core execution of prototype searches (worker processes).

The pipeline's ``parallel_deployments`` option *models* replica
deployments in the simulated cost; this module additionally *executes*
prototype searches on worker processes, cutting wall-clock time on
multi-core machines.  Each worker behaves like one replica deployment of
§4: it attaches to the background graph's shared-memory CSR (one copy of
the frozen arrays, exported by :mod:`repro.runtime.shm` and mapped
zero-copy by every worker), rebuilds the prototype set deterministically,
and keeps its own NLCC work-recycling cache across the tasks it serves —
exactly the sharing a physical replica would have.

Tasks ship as :class:`PoolTask` wire objects in one of two payload kinds:

* ``"array"`` — two ``np.packbits`` bitmaps (active vertices, alive
  directed edges) cut straight from the level scope's
  :class:`~repro.core.arraystate.ArraySearchState`; the worker re-derives
  the uint64 role masks from the prototype's labels (bit-identical, see
  ``ArraySearchState.from_scope_payload``) and runs the search without
  ever materializing a dict state.  Results return as packed solution
  bitmaps the parent ORs into the level union.
* ``"dict"`` — the legacy ``(candidates, edges)`` lists, used when the
  array stack is off, the template exceeds the 64-bit mask width, or
  ``options.shm_pool`` is disabled.  Candidate role sets ship unsorted;
  determinism comes from :meth:`PrototypeSearchPool.search_level`
  returning results in task order, not from payload ordering.

Results are identical to sequential execution (outcomes are pure
functions of the shipped starting scope); only wall-clock changes.
Simulated makespans are computed inside the workers from their own
message traces.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ProcessPoolExecutor
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..core.arraystate import ArraySearchState
    from ..core.pipeline import PipelineOptions
    from ..core.prototypes import Prototype
    from ..core.results import PrototypeSearchOutcome
    from ..core.state import SearchState
    from ..core.template import PatternTemplate
    from ..graph.graph import Graph
    from .shm import SharedCsrHandle
    from .trace import Tracer

#: per-worker state, populated by the pool initializer
_WORKER: Dict[str, Any] = {}


class PoolTask:
    """One prototype-search work item in wire form.

    ``kind`` selects the payload format: ``"array"`` carries
    ``(vertex_bits, edge_bits, warm_bits_or_None)`` packed bitmaps over
    the shared CSR, ``"dict"`` carries the legacy
    ``(candidates, edges)`` lists.  ``units`` is the scope size
    (active vertices + canonical active edges), precomputed at pack time
    so LPT ordering costs the same regardless of payload format.
    """

    __slots__ = ("proto_id", "kind", "data", "units")

    def __init__(
        self, proto_id: int, kind: str, data: Tuple[Any, ...], units: int
    ) -> None:
        self.proto_id = proto_id
        self.kind = kind
        self.data = data
        self.units = units

    def __getstate__(self) -> Tuple[int, str, Tuple[Any, ...], int]:
        return (self.proto_id, self.kind, self.data, self.units)

    def __setstate__(
        self, state: Tuple[int, str, Tuple[Any, ...], int]
    ) -> None:
        self.proto_id, self.kind, self.data, self.units = state


def array_task(
    proto_id: int,
    scope: "ArraySearchState",
    warm_mask: Optional[Any] = None,
) -> PoolTask:
    """Pack an array scope cut into an ``"array"`` :class:`PoolTask`."""
    from ..core.arraystate import pack_bits

    vertex_bits, edge_bits = scope.scope_payload()
    warm_bits = None if warm_mask is None else pack_bits(warm_mask)
    vertices, edges = scope.active_counts()
    return PoolTask(
        proto_id, "array", (vertex_bits, edge_bits, warm_bits),
        vertices + edges,
    )


def dict_task(proto_id: int, state: "SearchState") -> PoolTask:
    """Pack a dict scope into a legacy ``"dict"`` :class:`PoolTask`."""
    candidates, edges = state_to_payload(state)
    return PoolTask(
        proto_id, "dict", (candidates, edges), len(candidates) + len(edges)
    )


def _init_worker(
    graph: "Graph",
    template: "PatternTemplate",
    k: int,
    options: "PipelineOptions",
    shm_handle: Optional["SharedCsrHandle"] = None,
) -> None:
    """Runs once per worker process: build the shared per-replica state.

    When the pool exported the graph's CSR to shared memory, the worker
    attaches to the segment and installs the zero-copy view as the
    graph's memoized CSR, so every ``csr_of(graph)`` in the search stack
    reads the one shared copy.
    """
    from ..core.constraints import generate_constraints
    from ..core.ordering import order_constraints
    from ..core.prototypes import generate_prototypes
    from ..core.state import NlccCache

    if shm_handle is not None:
        from .shm import attach_shared_csr

        try:
            graph._csr_cache = attach_shared_csr(shm_handle, graph)
        except (FileNotFoundError, OSError):  # pragma: no cover - attach race
            pass  # csr_of() rebuilds locally; results are unaffected

    label_frequencies = graph.label_counts()
    protos = generate_prototypes(template, k, options.max_prototypes)
    constraint_sets = {}
    for proto in protos:
        constraint_set = generate_constraints(
            proto.graph, label_frequencies, options.include_full_walk
        )
        constraint_set.non_local = order_constraints(
            constraint_set.non_local,
            label_frequencies,
            optimize=bool(options.constraint_ordering),
        )
        constraint_sets[proto.id] = constraint_set
    _WORKER.update(
        graph=graph,
        options=options,
        prototypes={p.id: p for p in protos},
        constraint_sets=constraint_sets,
        cache=NlccCache() if options.work_recycling else None,
    )


def _search_task(task: PoolTask) -> Dict[str, Any]:
    """Search one prototype inside a worker; returns a plain-data outcome.

    ``"array"`` tasks reconstruct an :class:`ArraySearchState` over the
    attached shared CSR and hand it to :func:`search_prototype` as the
    ``array_scope`` — the dict state stays empty until the search's final
    write-back.  Their result payload additionally carries packed
    solution bitmaps (``solution_bits``) for the parent's level union.

    When the shipped options carry an enabled tracer, the worker builds a
    fresh local :class:`~repro.runtime.trace.Tracer` (span forests never
    cross process boundaries implicitly — pickled tracers arrive empty)
    and returns its closed spans as payloads for the parent to graft.

    Metrics follow the same grafting model but are always on: each task
    accounts into a fresh per-task
    :class:`~repro.runtime.metrics.MetricsRegistry` (fresh, not the
    worker-lifetime options registry, so totals are never double-counted
    across tasks) whose packed :meth:`export` rides the payload for the
    parent to :meth:`merge`.  The worker-lifetime
    ``options.constraint_costs`` model, by contrast, deliberately spans
    tasks: measured NLCC costs recycle across every prototype this
    worker serves.
    """
    import os

    from ..core.search import search_prototype
    from ..core.state import SearchState
    from .engine import Engine
    from .messages import MessageStats
    from .metrics import MetricsRegistry
    from .partition import PartitionedGraph
    from .trace import NULL_TRACER, Tracer

    graph = _WORKER["graph"]
    options = _WORKER["options"]
    proto = _WORKER["prototypes"][task.proto_id]
    tracing = getattr(options.tracer, "enabled", False)
    tracer = Tracer() if tracing else NULL_TRACER
    registry = MetricsRegistry()

    astate: Optional["ArraySearchState"] = None
    warm_mask = None
    if task.kind == "array":
        from ..core.arraystate import ArraySearchState, csr_of, unpack_bits

        csr = csr_of(graph)
        vertex_bits, edge_bits, warm_bits = task.data
        astate = ArraySearchState.from_scope_payload(
            graph, csr, proto, vertex_bits, edge_bits
        )
        if warm_bits is not None:
            warm_mask = unpack_bits(warm_bits, csr.num_vertices)
        state = SearchState.empty(graph)
    else:
        candidates_payload, edges_payload = task.data
        candidates = {v: set(roles) for v, roles in candidates_payload}
        active_edges: Dict[int, set] = {v: set() for v in candidates}
        for u, v in edges_payload:
            active_edges.setdefault(u, set()).add(v)
            active_edges.setdefault(v, set()).add(u)
        state = SearchState(graph, candidates, active_edges)

    pgraph = PartitionedGraph(
        graph,
        options.num_ranks,
        delegate_degree_threshold=options.delegate_degree_threshold,
        ranks_per_node=options.ranks_per_node,
    )
    stats = MessageStats(options.num_ranks)
    engine = Engine(
        pgraph, stats, options.batch_size, tracer=tracer, metrics=registry
    )
    outcome = search_prototype(
        state,
        proto,
        _WORKER["constraint_sets"][task.proto_id],
        engine,
        cache=_WORKER["cache"],
        recycle=options.work_recycling,
        count_matches=options.count_matches,
        verification=options.verification,
        role_kernel=options.role_kernel,
        delta_lcc=options.delta_lcc,
        array_state=options.array_state,
        array_nlcc=options.array_nlcc,
        array_scope=astate,
        warm_mask=warm_mask,
        adaptive=options.adaptive,
        constraint_costs=options.constraint_costs,
    )
    return {
        "proto_id": task.proto_id,
        "solution_vertices": sorted(outcome.solution_vertices),
        "solution_edges": sorted(outcome.solution_edges),
        "solution_bits": (
            astate.solution_payload() if astate is not None else None
        ),
        "match_mappings": outcome.match_mappings,
        "distinct_matches": outcome.distinct_matches,
        "lcc_iterations": outcome.lcc_iterations,
        "post_lcc_vertices": outcome.post_lcc_vertices,
        "post_lcc_edges": outcome.post_lcc_edges,
        "nlcc_constraints_checked": outcome.nlcc_constraints_checked,
        "nlcc_roles_eliminated": outcome.nlcc_roles_eliminated,
        "nlcc_recycled": outcome.nlcc_recycled,
        "nlcc_tokens_launched": outcome.nlcc_tokens_launched,
        "nlcc_completions": outcome.nlcc_completions,
        "nlcc_dedup_merged": outcome.nlcc_dedup_merged,
        "exact": outcome.exact,
        "simulated_seconds": options.cost_model.makespan(stats),
        "messages": stats.total_messages,
        "remote_messages": stats.total_remote_messages,
        "wall_seconds": outcome.wall_seconds,
        "trace_spans": (
            [span.to_payload() for span in tracer.roots] if tracing else None
        ),
        "trace_worker": os.getpid() if tracing else None,
        "metrics": registry.export(),
    }


def payload_to_outcome(
    proto: "Prototype",
    payload: Dict[str, Any],
    tracer: Optional["Tracer"] = None,
    metrics: Optional[Any] = None,
) -> "PrototypeSearchOutcome":
    """Rebuild a :class:`PrototypeSearchOutcome` from a worker's payload.

    When ``tracer`` is given and the payload carries worker spans, the
    span tree is grafted under the currently open span, labeled with the
    worker pid (``perf_counter`` is CLOCK_MONOTONIC, shared across forked
    workers, so timestamps line up).  When ``metrics`` (the parent run's
    :class:`~repro.runtime.metrics.MetricsRegistry`) is given, the
    worker's exported per-task registry is folded in additively — the
    cross-process half of the bit-exact counter-parity contract.
    """
    from ..core.results import PrototypeSearchOutcome

    if tracer is not None and payload.get("trace_spans"):
        tracer.attach(payload["trace_spans"], worker=payload.get("trace_worker"))
    if metrics is not None:
        metrics.merge(payload.get("metrics"))
    outcome = PrototypeSearchOutcome(proto)
    outcome.solution_vertices = set(payload["solution_vertices"])
    outcome.solution_edges = {
        (int(u), int(v)) for u, v in payload["solution_edges"]
    }
    outcome.match_mappings = payload["match_mappings"]
    outcome.distinct_matches = payload["distinct_matches"]
    outcome.lcc_iterations = payload["lcc_iterations"]
    outcome.post_lcc_vertices = payload.get("post_lcc_vertices", 0)
    outcome.post_lcc_edges = payload.get("post_lcc_edges", 0)
    outcome.nlcc_constraints_checked = payload["nlcc_constraints_checked"]
    outcome.nlcc_roles_eliminated = payload["nlcc_roles_eliminated"]
    outcome.nlcc_recycled = payload["nlcc_recycled"]
    outcome.nlcc_tokens_launched = payload.get("nlcc_tokens_launched", 0)
    outcome.nlcc_completions = payload.get("nlcc_completions", 0)
    outcome.nlcc_dedup_merged = payload.get("nlcc_dedup_merged", 0)
    outcome.exact = payload["exact"]
    outcome.simulated_seconds = payload["simulated_seconds"]
    outcome.messages = payload["messages"]
    outcome.remote_messages = payload["remote_messages"]
    outcome.wall_seconds = payload["wall_seconds"]
    return outcome


class PrototypeSearchPool:
    """A pool of replica workers executing prototype searches.

    When ``options.shm_pool`` is on and the level sweep is array-eligible
    (see ``_array_level_eligible``), the pool exports the graph's CSR to
    a shared-memory segment at construction, workers attach zero-copy,
    and :attr:`array_payloads` tells callers to ship packed-bitmap tasks.
    Closing the pool unlinks the segment.

    Use as a context manager; submit per-level batches with
    :meth:`search_level`.
    """

    def __init__(
        self,
        graph: "Graph",
        template: "PatternTemplate",
        k: int,
        options: "PipelineOptions",
        processes: int,
    ) -> None:
        if processes <= 1:
            raise ValueError("a pool needs at least two processes")
        import multiprocessing as mp

        from ..core.pipeline import _array_level_eligible

        #: whether callers should ship packed array payloads
        self.array_payloads: bool = bool(options.shm_pool) and (
            _array_level_eligible(template, options)
        )
        self._options = options
        self._processes = processes
        self._shm: Optional[Any] = None
        shm_handle: Optional["SharedCsrHandle"] = None
        if self.array_payloads:
            from ..core.arraystate import csr_of
            from .shm import SharedGraphCsr

            self._shm = SharedGraphCsr(csr_of(graph))
            shm_handle = self._shm.handle
            options.metrics.gauge("shm.segment_bytes").set(
                float(self._shm.nbytes)
            )
        self._pool = ProcessPoolExecutor(
            max_workers=processes,
            mp_context=mp.get_context("fork"),
            initializer=_init_worker,
            initargs=(graph, template, k, options, shm_handle),
        )
        #: measured wall seconds of the last search of each prototype
        self._wall_history: Dict[int, float] = {}
        #: exponential moving average of wall seconds per scope unit
        #: (active vertices + edges) — the cost model for unseen protos
        self._ema_rate: Optional[float] = None

    def _task_cost(self, task: PoolTask) -> float:
        """Predicted wall seconds for one :class:`PoolTask`.

        Prefers the prototype's own measured wall time from an earlier
        level (the tracing layer's per-prototype numbers flow back through
        the result payloads); otherwise scales the scope size — the
        ``units`` precomputed at pack time, identical for both payload
        formats — by the observed seconds-per-unit rate.  With no history
        at all, scope size alone still yields a sensible big-first order.
        """
        exact = self._wall_history.get(task.proto_id)
        if exact is not None:
            return exact
        if self._ema_rate is not None:
            return task.units * self._ema_rate
        return float(task.units)

    def _record_result(self, task: PoolTask, result: Dict[str, Any]) -> None:
        wall = result.get("wall_seconds")
        if wall is None:
            return
        self._wall_history[task.proto_id] = wall
        if task.units > 0:
            rate = wall / task.units
            self._ema_rate = (
                rate
                if self._ema_rate is None
                else 0.7 * self._ema_rate + 0.3 * rate
            )

    def search_level(self, tasks: List[PoolTask]) -> List[Dict[str, Any]]:
        """Run a level's :class:`PoolTask` batch; keeps task order.

        Tasks are submitted longest-predicted-first (greedy LPT): the
        executor hands queued tasks to workers as they free up, so a
        descending-cost submission order is exactly the classic LPT
        packing — the big prototypes can no longer land last and stretch
        the level's makespan, as round-robin chunking allowed.  Results
        are returned in the original task order regardless, which is what
        makes worker-side iteration order irrelevant to determinism.

        Per-level worker utilization lands in the run's metrics registry:
        ``pool.busy_seconds`` sums the tasks' measured search walls and
        ``pool.idle_seconds`` is the remainder of the level's
        ``wall × processes`` budget — together they put a number on the
        straggler effect LPT is there to bound.
        """
        level_started = time.perf_counter()
        order = sorted(
            range(len(tasks)),
            key=lambda i: (-self._task_cost(tasks[i]), i),
        )
        futures: Dict[int, "Future[Dict[str, Any]]"] = {
            i: self._pool.submit(_search_task, tasks[i]) for i in order
        }
        results: List[Dict[str, Any]] = []
        for i in range(len(tasks)):
            result = futures[i].result()
            self._record_result(tasks[i], result)
            results.append(result)
        busy = sum(r.get("wall_seconds") or 0.0 for r in results)
        level_wall = time.perf_counter() - level_started
        metrics = self._options.metrics
        metrics.counter("pool.busy_seconds").inc(busy)
        metrics.counter("pool.idle_seconds").inc(
            max(0.0, level_wall * self._processes - busy)
        )
        return results

    def close(self) -> None:
        self._pool.shutdown()
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def __enter__(self) -> "PrototypeSearchPool":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


def state_to_payload(state: "SearchState") -> Tuple[List[Any], List[Any]]:
    """Serialize a SearchState's candidates/edges for shipping to workers.

    Role sets ship in set-iteration order: ``search_level`` returns
    results in task order, so payload ordering never reaches any
    order-sensitive consumer and the old per-vertex ``sorted()`` was pure
    shipping overhead.
    """
    candidates = [(v, list(state.candidates[v])) for v in state.candidates]
    edges = state.active_edge_list()
    return candidates, edges


class BatchJob:
    """One per-class root pipeline of a template-library batch.

    Plain data: the class representative template, the edit distance the
    root runs at (the max over its absorbed family members), the shared
    prototype set, and a scheduling cost estimate.  Built by
    :mod:`repro.core.batch`, executed by :class:`TemplateBatchScheduler`.
    """

    __slots__ = ("name", "template", "k", "prototype_set", "cost")

    def __init__(
        self,
        name: str,
        template: "PatternTemplate",
        k: int,
        prototype_set: Any,
        cost: float,
    ) -> None:
        self.name = name
        self.template = template
        self.k = k
        self.prototype_set = prototype_set
        self.cost = cost


class TemplateBatchScheduler:
    """Cost-ordered executor for a batch's per-class root pipelines.

    Jobs run longest-estimate-first (the LPT order the pooled levels
    already use), each through one :func:`~repro.core.pipeline
    .run_pipeline` sharing the batch's ``M*`` memo.  When the memoized
    ``M*`` of a class prunes the background graph below
    ``options.aux_view_ratio``, the surviving scope is packed into a
    :meth:`GraphCsr.induced_view` and the whole pipeline runs over the
    view — and because ``PrototypeSearchPool`` exports ``csr_of(graph)``
    of whatever graph it is built on, a pooled run over the view ships
    the *pruned* arrays through the existing shared-memory segment, so
    workers attach the auxiliary view zero-copy.
    """

    def __init__(
        self,
        graph: "Graph",
        options: "PipelineOptions",
        memo: Optional[Any] = None,
    ) -> None:
        self.graph = graph
        self.options = options
        #: shared :class:`~repro.core.candidate_set.CandidateSetMemo`
        self.memo = memo
        #: job names in execution (LPT) order
        self.order: List[str] = []
        #: per-job scheduling cost estimates, recorded as jobs run — the
        #: batch report pairs them with measured pipeline walls
        self.costs: Dict[str, float] = {}
        #: auxiliary M*-views materialized (pooled runs ship them zero-copy)
        self.views_shipped = 0
        self.view_sizes: List[Tuple[int, int]] = []

    def run(self, jobs: List[BatchJob]) -> Dict[str, Any]:
        """Execute every job; returns ``{job name: PipelineResult}``."""
        results: Dict[str, Any] = {}
        for job in sorted(jobs, key=lambda j: (-j.cost, j.name)):
            self.order.append(job.name)
            self.costs[job.name] = job.cost
            results[job.name] = self._run_job(job)
        return results

    def _run_job(self, job: BatchJob) -> Any:
        from ..core.pipeline import array_fallback_reason, run_pipeline

        options = self.options
        run_graph = self.graph
        run_memo = self.memo
        if (
            run_memo is not None
            and options.aux_views
            and options.use_max_candidate_set
            and array_fallback_reason(job.template, options) is None
        ):
            view_graph = self._mstar_view(job)
            if view_graph is not None:
                run_graph = view_graph
                # Memoized states live over the full graph; the view's
                # (identical, see candidate_set) M* recomputes cheaply.
                run_memo = None
        return run_pipeline(
            run_graph, job.template, job.k, options,
            prototype_set=job.prototype_set, candidate_memo=run_memo,
        )

    def _mstar_view(self, job: BatchJob) -> Optional["Graph"]:
        """``G[M*]`` as an induced-view graph when M* prunes enough.

        Rerunning the arc-consistency fixed point on the vertex-induced
        view converges to the same fixed point (every surviving role's
        witnesses are surviving candidates, so all derivations carry
        over), which makes the pipeline-over-view bit-identical to the
        pipeline-over-``G``.
        """
        from ..core.arraystate import ArraySearchState, csr_of
        from ..core.candidate_set import max_candidate_set
        from ..core.pipeline import _initial_assignment
        from .engine import Engine
        from .messages import MessageStats
        from .partition import PartitionedGraph

        options = self.options
        graph = self.graph
        pgraph = PartitionedGraph(
            graph,
            options.num_ranks,
            assignment=_initial_assignment(graph, options.num_ranks, options),
            delegate_degree_threshold=options.delegate_degree_threshold,
            ranks_per_node=options.ranks_per_node,
        )
        engine = Engine(
            pgraph, MessageStats(options.num_ranks), options.batch_size,
            tracer=options.tracer,
        )
        state = max_candidate_set(
            graph, job.template, engine,
            role_kernel=options.role_kernel, delta=options.delta_lcc,
            array_state=options.array_state, memo=self.memo,
            adaptive=options.adaptive,
        )
        vertices, _ = state.active_counts()
        csr = csr_of(graph)
        if vertices == 0 or vertices > options.aux_view_ratio * csr.num_vertices:
            return None
        astate = ArraySearchState.from_search_state(
            state, roles=sorted(job.template.graph.vertices())
        )
        view = csr.induced_view(astate.vertex_active)
        self.views_shipped += 1
        self.view_sizes.append(
            (view.num_vertices, view.num_directed_edges // 2)
        )
        return view.graph
