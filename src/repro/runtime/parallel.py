"""Real multi-core execution of prototype searches (worker processes).

The pipeline's ``parallel_deployments`` option *models* replica
deployments in the simulated cost; this module additionally *executes*
prototype searches on worker processes, cutting wall-clock time on
multi-core machines.  Each worker behaves like one replica deployment of
§4: it holds its own copy of the background graph (initialized once per
worker via fork), rebuilds the prototype set deterministically, and keeps
its own NLCC work-recycling cache across the tasks it serves — exactly the
sharing a physical replica would have.

Results are identical to sequential execution (outcomes are pure functions
of the shipped starting scope); only wall-clock changes.  Simulated
makespans are computed inside the workers from their own message traces.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..core.pipeline import PipelineOptions
    from ..core.state import SearchState
    from ..core.template import PatternTemplate
    from ..graph.graph import Graph

#: per-worker state, populated by the pool initializer
_WORKER: Dict[str, Any] = {}


def _init_worker(
    graph: "Graph",
    template: "PatternTemplate",
    k: int,
    options: "PipelineOptions",
) -> None:
    """Runs once per worker process: build the shared per-replica state."""
    from ..core.constraints import generate_constraints
    from ..core.ordering import order_constraints
    from ..core.prototypes import generate_prototypes
    from ..core.state import NlccCache

    label_frequencies = graph.label_counts()
    protos = generate_prototypes(template, k, options.max_prototypes)
    constraint_sets = {}
    for proto in protos:
        constraint_set = generate_constraints(
            proto.graph, label_frequencies, options.include_full_walk
        )
        constraint_set.non_local = order_constraints(
            constraint_set.non_local,
            label_frequencies,
            optimize=bool(options.constraint_ordering),
        )
        constraint_sets[proto.id] = constraint_set
    _WORKER.update(
        graph=graph,
        options=options,
        prototypes={p.id: p for p in protos},
        constraint_sets=constraint_sets,
        cache=NlccCache() if options.work_recycling else None,
    )


def _search_task(payload: Tuple) -> Dict:
    """Search one prototype inside a worker; returns a plain-data outcome.

    When the shipped options carry an enabled tracer, the worker builds a
    fresh local :class:`~repro.runtime.trace.Tracer` (span forests never
    cross process boundaries implicitly — pickled tracers arrive empty)
    and returns its closed spans as payloads for the parent to graft.
    """
    import os

    from ..core.search import search_prototype
    from ..core.state import SearchState
    from .engine import Engine
    from .messages import MessageStats
    from .partition import PartitionedGraph
    from .trace import NULL_TRACER, Tracer

    proto_id, candidates_payload, edges_payload = payload
    graph = _WORKER["graph"]
    options = _WORKER["options"]
    proto = _WORKER["prototypes"][proto_id]
    tracing = getattr(options.tracer, "enabled", False)
    tracer = Tracer() if tracing else NULL_TRACER

    candidates = {v: set(roles) for v, roles in candidates_payload}
    active_edges: Dict[int, set] = {v: set() for v in candidates}
    for u, v in edges_payload:
        active_edges.setdefault(u, set()).add(v)
        active_edges.setdefault(v, set()).add(u)
    state = SearchState(graph, candidates, active_edges)

    pgraph = PartitionedGraph(
        graph,
        options.num_ranks,
        delegate_degree_threshold=options.delegate_degree_threshold,
        ranks_per_node=options.ranks_per_node,
    )
    stats = MessageStats(options.num_ranks)
    engine = Engine(pgraph, stats, options.batch_size, tracer=tracer)
    outcome = search_prototype(
        state,
        proto,
        _WORKER["constraint_sets"][proto_id],
        engine,
        cache=_WORKER["cache"],
        recycle=options.work_recycling,
        count_matches=options.count_matches,
        verification=options.verification,
        role_kernel=options.role_kernel,
        delta_lcc=options.delta_lcc,
        array_state=options.array_state,
        array_nlcc=options.array_nlcc,
    )
    return {
        "proto_id": proto_id,
        "solution_vertices": sorted(outcome.solution_vertices),
        "solution_edges": sorted(outcome.solution_edges),
        "match_mappings": outcome.match_mappings,
        "distinct_matches": outcome.distinct_matches,
        "lcc_iterations": outcome.lcc_iterations,
        "post_lcc_vertices": outcome.post_lcc_vertices,
        "post_lcc_edges": outcome.post_lcc_edges,
        "nlcc_constraints_checked": outcome.nlcc_constraints_checked,
        "nlcc_roles_eliminated": outcome.nlcc_roles_eliminated,
        "nlcc_recycled": outcome.nlcc_recycled,
        "nlcc_tokens_launched": outcome.nlcc_tokens_launched,
        "nlcc_completions": outcome.nlcc_completions,
        "nlcc_dedup_merged": outcome.nlcc_dedup_merged,
        "exact": outcome.exact,
        "simulated_seconds": options.cost_model.makespan(stats),
        "messages": stats.total_messages,
        "remote_messages": stats.total_remote_messages,
        "wall_seconds": outcome.wall_seconds,
        "trace_spans": (
            [span.to_payload() for span in tracer.roots] if tracing else None
        ),
        "trace_worker": os.getpid() if tracing else None,
    }


class PrototypeSearchPool:
    """A pool of replica workers executing prototype searches.

    Use as a context manager; submit per-level batches with
    :meth:`search_level`.
    """

    def __init__(
        self,
        graph: "Graph",
        template: "PatternTemplate",
        k: int,
        options: "PipelineOptions",
        processes: int,
    ) -> None:
        if processes <= 1:
            raise ValueError("a pool needs at least two processes")
        import multiprocessing as mp

        self._pool = ProcessPoolExecutor(
            max_workers=processes,
            mp_context=mp.get_context("fork"),
            initializer=_init_worker,
            initargs=(graph, template, k, options),
        )
        #: measured wall seconds of the last search of each prototype
        self._wall_history: Dict[int, float] = {}
        #: exponential moving average of wall seconds per payload unit
        #: (candidate + edge entries) — the cost model for unseen protos
        self._ema_rate: Optional[float] = None

    def _task_cost(self, task: Tuple) -> float:
        """Predicted wall seconds for one (proto_id, candidates, edges) task.

        Prefers the prototype's own measured wall time from an earlier
        level (the tracing layer's per-prototype numbers flow back through
        the result payloads); otherwise scales the payload size by the
        observed seconds-per-unit rate.  With no history at all, payload
        size alone still yields a sensible big-first order.
        """
        proto_id, candidates, edges = task
        exact = self._wall_history.get(proto_id)
        if exact is not None:
            return exact
        units = len(candidates) + len(edges)
        if self._ema_rate is not None:
            return units * self._ema_rate
        return float(units)

    def _record_result(self, task: Tuple, result: Dict) -> None:
        proto_id, candidates, edges = task
        wall = result.get("wall_seconds")
        if wall is None:
            return
        self._wall_history[proto_id] = wall
        units = len(candidates) + len(edges)
        if units > 0:
            rate = wall / units
            self._ema_rate = (
                rate
                if self._ema_rate is None
                else 0.7 * self._ema_rate + 0.3 * rate
            )

    def search_level(self, tasks: List[Tuple]) -> List[Dict]:
        """Run a level's (proto_id, candidates, edges) tasks; keeps order.

        Tasks are submitted longest-predicted-first (greedy LPT): the
        executor hands queued tasks to workers as they free up, so a
        descending-cost submission order is exactly the classic LPT
        packing — the big prototypes can no longer land last and stretch
        the level's makespan, as round-robin chunking allowed.  Results
        are returned in the original task order regardless.
        """
        order = sorted(
            range(len(tasks)),
            key=lambda i: (-self._task_cost(tasks[i]), i),
        )
        futures = {i: self._pool.submit(_search_task, tasks[i]) for i in order}
        results: List[Dict] = []
        for i in range(len(tasks)):
            result = futures[i].result()
            self._record_result(tasks[i], result)
            results.append(result)
        return results

    def close(self) -> None:
        self._pool.shutdown()

    def __enter__(self) -> "PrototypeSearchPool":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


def state_to_payload(state: "SearchState") -> Tuple[List, List]:
    """Serialize a SearchState's candidates/edges for shipping to workers."""
    candidates = [
        (v, sorted(state.candidates[v])) for v in state.candidates
    ]
    edges = state.active_edge_list()
    return candidates, edges
