"""Hierarchical span tracing with typed counters for the search pipeline.

The paper's evaluation lives on per-phase attribution — Figs. 6/8/10
break time-to-solution into per-prototype, per-constraint and per-level
costs, and §5.7 accounts messages and load imbalance.  This module is the
first-class subsystem behind those tables: a :class:`Tracer` records a
tree of timed :class:`Span` objects (``pipeline`` → ``level`` →
``prototype`` → ``lcc``/``nlcc`` → ``round``), each span carrying wall
time plus attached counters (vertices/edges pruned, messages, remote
messages, token walks, NLCC cache hits/misses, worklist sizes).

Design rules:

* **Zero overhead when off.**  The default everywhere is the stateless
  :data:`NULL_TRACER`; hot loops guard the expensive counter computation
  with one ``tracer.enabled`` attribute check, and the null ``span()``
  context manager allocates nothing.
* **One tree per process.**  The tracer is not thread-safe; worker
  processes build their own tracer and ship closed spans home as plain
  payload dicts (:meth:`Span.to_payload`), which the parent grafts under
  its current span with :meth:`Tracer.attach`.
* **Two export formats.**  :meth:`Tracer.write_chrome_trace` emits Chrome
  trace-event JSON (loadable in ``chrome://tracing`` / Perfetto);
  :meth:`Tracer.write_jsonl` emits one flat JSON record per closed span.
  Both embed ``span_id``/``parent_id`` so
  :mod:`repro.analysis.tracereport` reconstructs the exact tree.

Timestamps are raw ``time.perf_counter`` values (CLOCK_MONOTONIC — shared
by forked worker processes, so merged spans stay on one timebase); the
exporters rebase them to the earliest span start.
"""

from __future__ import annotations

import json
import os
import time
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
    cast,
)

#: anything ``open()`` accepts for the exporter paths
PathLike = Union[str, "os.PathLike[str]"]

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer"]


class Span:
    """One timed node of the trace tree.

    A span is its own context manager: entering stamps ``start_s`` and
    pushes it on the owning tracer's stack, exiting stamps ``end_s``.
    ``attrs`` are identity (what was traced: prototype id, level
    distance, constraint kind); ``counters`` are additive measurements
    (messages, pruned vertices) accumulated via :meth:`add`.
    """

    __slots__ = ("name", "attrs", "start_s", "end_s", "counters", "children",
                 "_tracer")

    def __init__(
        self,
        name: str,
        attrs: Optional[Dict[str, object]] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.name = name
        self.attrs: Dict[str, object] = attrs or {}
        self.start_s: Optional[float] = None
        self.end_s: Optional[float] = None
        self.counters: Dict[str, float] = {}
        self.children: List["Span"] = []
        self._tracer = tracer

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer is None:
            raise RuntimeError("span entered without an owning tracer")
        stack = tracer._stack
        if stack:
            stack[-1].children.append(self)
        else:
            tracer.roots.append(self)
        stack.append(self)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, *_exc: object) -> bool:
        self.end_s = time.perf_counter()
        if self._tracer is not None:
            self._tracer._stack.pop()
        return False

    # ------------------------------------------------------------------
    def add(self, **counters: float) -> None:
        """Accumulate counters on this span (additive on repeat keys)."""
        own = self.counters
        for key, value in counters.items():
            own[key] = own.get(key, 0) + value

    @property
    def duration_s(self) -> float:
        """Wall seconds covered; 0.0 while the span is still open."""
        if self.start_s is None or self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    @property
    def self_s(self) -> float:
        """Duration not covered by child spans (floored at 0)."""
        return max(
            self.duration_s - sum(c.duration_s for c in self.children), 0.0
        )

    def total(self, counter: str) -> float:
        """Sum of ``counter`` over this span's whole subtree."""
        return self.counters.get(counter, 0) + sum(
            child.total(counter) for child in self.children
        )

    def walk(self, depth: int = 0) -> Iterator[Tuple["Span", int]]:
        """Depth-first preorder iteration of the subtree."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> List["Span"]:
        """All spans named ``name`` in this subtree (preorder)."""
        return [span for span, _ in self.walk() if span.name == name]

    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """Plain-data form for shipping across process boundaries."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "start_s": self.start_s,
            "end_s": self.end_s,
            "counters": dict(self.counters),
            "children": [child.to_payload() for child in self.children],
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, object], tracer: Optional["Tracer"] = None
    ) -> "Span":
        attrs = cast(Dict[str, object], payload.get("attrs") or {})
        span = cls(cast(str, payload["name"]), dict(attrs), tracer)
        span.start_s = cast(Optional[float], payload.get("start_s"))
        span.end_s = cast(Optional[float], payload.get("end_s"))
        span.counters = dict(
            cast(Dict[str, float], payload.get("counters") or {})
        )
        span.children = [
            cls.from_payload(child, tracer)
            for child in cast(
                Iterable[Dict[str, object]], payload.get("children", ())
            )
        ]
        return span

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, dur={self.duration_s:.6f}s, "
            f"children={len(self.children)})"
        )


class _NullSpan:
    """Shared do-nothing span; the off-switch costs no allocation."""

    __slots__ = ()
    name = "null"
    attrs: Dict[str, object] = {}
    counters: Dict[str, float] = {}
    children: List[Span] = []
    duration_s = 0.0
    self_s = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: object) -> bool:
        return False

    def add(self, **_counters: float) -> None:
        pass

    def total(self, _counter: str) -> float:
        return 0.0


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    The pipeline default — hot loops pay one ``tracer.enabled`` attribute
    check when tracing is off, and nothing else.
    """

    __slots__ = ()
    enabled = False
    roots: List[Span] = []

    def span(self, _name: str, **_attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def add(self, **_counters: float) -> None:
        pass

    def record_span(self, *_args: object, **_kwargs: object) -> None:
        pass

    def attach(
        self, _payloads: Iterable[Dict[str, object]], **_attrs: object
    ) -> None:
        pass

    def __repr__(self) -> str:
        return "NullTracer()"


NULL_TRACER = NullTracer()


class Tracer:
    """Collects a forest of :class:`Span` trees for one run.

    Usage::

        tracer = Tracer()
        with tracer.span("pipeline", template="tri", k=1):
            with tracer.span("level", distance=1):
                tracer.add(messages=42)   # lands on the innermost span

    Pickling a tracer (e.g. inside ``PipelineOptions`` shipped to worker
    processes) transports only the fact that tracing is enabled — span
    trees never cross process boundaries implicitly; workers return
    payloads that the parent grafts via :meth:`attach`.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -- pickling: workers need `.enabled`, never the span forest --------
    def __getstate__(self) -> Dict[str, object]:
        return {}

    def __setstate__(self, _state: Dict[str, object]) -> None:
        self.roots = []
        self._stack = []

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object) -> Span:
        """A new span, child of the currently open one (root if none)."""
        return Span(name, attrs, self)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def add(self, **counters: float) -> None:
        """Accumulate counters on the innermost open span (no-op if none)."""
        if self._stack:
            self._stack[-1].add(**counters)

    def record_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        attrs: Optional[Dict[str, object]] = None,
        counters: Optional[Dict[str, float]] = None,
    ) -> Span:
        """Insert an already-timed, closed span under the current span.

        Used where the natural timing points do not nest as a ``with``
        block — e.g. the batched per-round accounting of the vectorized
        fixpoints (:meth:`repro.runtime.engine.Engine.record_batched_round`).
        """
        span = Span(name, dict(attrs or {}), self)
        span.start_s = start_s
        span.end_s = end_s
        if counters:
            span.counters = dict(counters)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    def attach(
        self,
        payloads: Iterable[Dict[str, object]],
        **extra_attrs: object,
    ) -> List[Span]:
        """Graft worker span payloads under the currently open span.

        ``extra_attrs`` (e.g. ``worker=<pid>``) are added to the attrs of
        each top-level grafted span, labeling which worker produced it.
        """
        parent = self._stack[-1] if self._stack else None
        grafted: List[Span] = []
        for payload in payloads:
            span = Span.from_payload(payload, self)
            if extra_attrs:
                span.attrs.update(extra_attrs)
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)
            grafted.append(span)
        return grafted

    # ------------------------------------------------------------------
    def walk(self) -> Iterator[Tuple[Span, int]]:
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> List[Span]:
        return [span for span, _ in self.walk() if span.name == name]

    def _origin(self) -> float:
        starts = [s.start_s for s, _ in self.walk() if s.start_s is not None]
        return min(starts) if starts else 0.0

    def _flat_records(self) -> List[Dict[str, object]]:
        """Closed spans as flat records with tree ids, preorder."""
        origin = self._origin()
        records: List[Dict[str, object]] = []
        next_id = [0]

        def emit(span: Span, parent_id: Optional[int], depth: int) -> None:
            next_id[0] += 1
            span_id = next_id[0]
            records.append({
                "span_id": span_id,
                "parent_id": parent_id,
                "name": span.name,
                "depth": depth,
                "ts": (span.start_s - origin) if span.start_s is not None else 0.0,
                "dur": span.duration_s,
                "attrs": dict(span.attrs),
                "counters": dict(span.counters),
            })
            for child in span.children:
                emit(child, span_id, depth + 1)

        for root in self.roots:
            emit(root, None, 0)
        return records

    def to_chrome_trace(self) -> Dict[str, object]:
        """Chrome trace-event JSON document (``chrome://tracing``/Perfetto).

        One complete (``ph: "X"``) event per span; worker-grafted spans
        get their own ``tid`` (from the ``worker`` attr) so per-worker
        timelines render as separate tracks.
        """
        events: List[Dict[str, object]] = []
        for record in self._flat_records():
            attrs = cast(Dict[str, object], record["attrs"])
            events.append({
                "name": record["name"],
                "cat": "repro",
                "ph": "X",
                "ts": cast(float, record["ts"]) * 1e6,
                "dur": cast(float, record["dur"]) * 1e6,
                "pid": 0,
                "tid": attrs.get("worker", 0),
                "args": {
                    "span_id": record["span_id"],
                    "parent_id": record["parent_id"],
                    "attrs": attrs,
                    "counters": record["counters"],
                },
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro tracer"},
        }

    def write_chrome_trace(self, path: PathLike) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1, default=str)

    def write_jsonl(self, path: PathLike) -> None:
        """One flat JSON record per span, preorder (grep/pandas friendly)."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self._flat_records():
                handle.write(json.dumps(record, default=str) + "\n")

    def __repr__(self) -> str:
        spans = sum(1 for _ in self.walk())
        return f"Tracer(roots={len(self.roots)}, spans={spans})"
