"""Zero-copy shared-memory export of the immutable :class:`GraphCsr`.

The worker pool's replica model (§4) has every worker hold the background
graph once.  Fork gives workers a copy-on-write view of the Python graph
object, but the memoized CSR arrays are the structures the array kernels
actually touch — re-deriving them per worker costs O(V+E) Python time and
duplicates hundreds of megabytes on web-scale graphs.  This module packs
every frozen ``GraphCsr`` array into **one** named
:mod:`multiprocessing.shared_memory` segment:

* the pool owner builds a :class:`SharedGraphCsr` (create + copy-in) and
  ships its picklable :class:`SharedCsrHandle` through the pool
  initializer;
* each worker calls :func:`attach_shared_csr`, mapping the segment and
  rebuilding a ``GraphCsr`` whose numpy arrays are read-only views over
  the shared buffer — zero copies, only the ``index_of`` dict (which
  cannot live in a flat buffer) is rebuilt in O(V);
* the owner ``close()``s (context manager, pool shutdown or the module's
  ``atexit`` sweep) which unlinks the segment exactly once, so crashed
  runs don't leak ``/dev/shm`` entries.

Ownership protocol: the creating process is the only one that unlinks.
Workers just map the segment; their mappings die with the process (the
attach-side registry exists for tests and explicit :func:`detach_all`).
All ``SharedMemory(...)`` construction in the package lives here —
repro-lint rule R6 flags strays.
"""

from __future__ import annotations

import atexit
import os
import uuid
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.arraystate import GraphCsr
    from ..graph.graph import Graph

__all__ = [
    "PAYLOAD_VERSION",
    "SharedCsrHandle",
    "SharedGraphCsr",
    "attach_shared_csr",
    "detach_all",
    "owned_segment_names",
]

#: Wire-format version stamped into every :class:`SharedCsrHandle` and
#: checked on attach.  Version 2: the multi-word role-mask era — scope
#: and solution payloads stay bitmap-only (and therefore mask-width
#: independent; workers re-derive masks from labels), but owner and
#: workers must agree on that contract, so mixed-version pools refuse to
#: attach instead of silently misreading the segment.
PAYLOAD_VERSION = 2

#: GraphCsr array slots exported into the segment (edge_label_codes is
#: appended only when the graph carries edge labels)
_ARRAY_FIELDS: Tuple[str, ...] = (
    "order",
    "indptr",
    "indices",
    "src",
    "mirror",
    "degrees",
    "zero_degree",
    "label_codes",
    "vid_gt",
    "pair_code",
)

#: array starts are 8-byte aligned inside the segment
_ALIGN = 8

#: segments created by this process, by name — the atexit sweep unlinks
#: whatever an aborted run left behind
_OWNED: Dict[str, "SharedGraphCsr"] = {}

#: segments attached (not owned) by this process, by name
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def _segment_name() -> str:
    """A fresh, recognisably-ours segment name (helps leak forensics)."""
    return f"repro-csr-{os.getpid()}-{uuid.uuid4().hex[:8]}"


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedCsrHandle:
    """Picklable recipe for attaching a shared CSR segment.

    Plain data only: the segment name, the per-array layout
    ``(slot, dtype string, length, byte offset)`` and the scalar/dict
    metadata a :class:`GraphCsr` needs beyond its arrays.
    """

    __slots__ = ("name", "layout", "meta")

    def __init__(
        self,
        name: str,
        layout: List[Tuple[str, str, int, int]],
        meta: Dict[str, Any],
    ) -> None:
        self.name = name
        self.layout = layout
        self.meta = meta

    def __getstate__(self) -> Tuple[str, List, Dict[str, Any]]:
        return (self.name, self.layout, self.meta)

    def __setstate__(self, state: Tuple[str, List, Dict[str, Any]]) -> None:
        self.name, self.layout, self.meta = state


class SharedGraphCsr:
    """Owner side: one shared segment holding every ``GraphCsr`` array.

    Create from a built CSR, hand :attr:`handle` to workers, and
    :meth:`close` (or use as a context manager) when the pool is done —
    closing unlinks the segment.  Idempotent; an :mod:`atexit` sweep
    closes anything still open at interpreter exit.
    """

    def __init__(self, csr: "GraphCsr") -> None:
        fields = list(_ARRAY_FIELDS)
        if csr.edge_label_codes is not None:
            fields.append("edge_label_codes")
        layout: List[Tuple[str, str, int, int]] = []
        offset = 0
        for slot in fields:
            arr = getattr(csr, slot)
            offset = _aligned(offset)
            layout.append((slot, arr.dtype.str, int(arr.shape[0]), offset))
            offset += arr.nbytes
        #: total bytes of the backing segment (the shm.segment_bytes gauge)
        self.nbytes: int = max(offset, 1)
        self._shm: Optional[shared_memory.SharedMemory] = (
            shared_memory.SharedMemory(
                create=True, size=self.nbytes, name=_segment_name()
            )
        )
        for (slot, dtype, length, start) in layout:
            view = np.frombuffer(
                self._shm.buf, dtype=np.dtype(dtype), count=length, offset=start
            )
            view[:] = getattr(csr, slot)
        self.handle = SharedCsrHandle(
            self._shm.name,
            layout,
            {
                "payload_version": PAYLOAD_VERSION,
                "num_vertices": csr.num_vertices,
                "num_directed_edges": csr.num_directed_edges,
                "num_labels": csr.num_labels,
                "label_ids": dict(csr.label_ids),
                "edge_label_ids": dict(csr.edge_label_ids),
            },
        )
        _OWNED[self._shm.name] = self

    @property
    def name(self) -> str:
        return self.handle.name

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        _OWNED.pop(shm.name, None)
        try:
            shm.close()
        except BufferError:  # pragma: no cover - live exported views
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedGraphCsr":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        self.close()


def attach_shared_csr(handle: SharedCsrHandle, graph: "Graph") -> "GraphCsr":
    """Map a shared segment and build a ``GraphCsr`` over its buffers.

    The returned CSR's arrays are read-only views into the segment — no
    copies.  ``index_of`` (a Python dict) is the only structure rebuilt,
    in O(V).  The caller is responsible for installing the result as the
    graph's memoized CSR if desired (the pool initializer does).
    """
    from ..core.arraystate import GraphCsr

    version = handle.meta.get("payload_version")
    if version != PAYLOAD_VERSION:
        raise ValueError(
            f"shared CSR payload version {version!r} does not match this "
            f"process's version {PAYLOAD_VERSION}; owner and workers must "
            "run the same build"
        )
    shm = _ATTACHED.get(handle.name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=handle.name)
        _ATTACHED[handle.name] = shm
    csr = GraphCsr.__new__(GraphCsr)
    csr.graph = graph
    for (slot, dtype, length, start) in handle.layout:
        view = np.frombuffer(
            shm.buf, dtype=np.dtype(dtype), count=length, offset=start
        )
        view.flags.writeable = False
        setattr(csr, slot, view)
    if "edge_label_codes" not in {slot for slot, _, _, _ in handle.layout}:
        csr.edge_label_codes = None
    meta = handle.meta
    csr.num_vertices = meta["num_vertices"]
    csr.num_directed_edges = meta["num_directed_edges"]
    csr.num_labels = meta["num_labels"]
    csr.label_ids = dict(meta["label_ids"])
    csr.edge_label_ids = dict(meta["edge_label_ids"])
    csr.index_of = {int(v): i for i, v in enumerate(csr.order.tolist())}
    # View-parentage links never cross the wire: an attached CSR is always
    # a root snapshot from the worker's perspective.
    csr.parent = None
    csr.parent_vertex_index = None
    csr.parent_edge_index = None
    return csr


def detach_all() -> None:
    """Close every attached (non-owned) mapping in this process.

    A mapping with live numpy views cannot unmap; it stays registered
    (and referenced, so no unraisable ``__del__``) until the views die —
    worst case the mapping lives until process exit, which releases it
    regardless.
    """
    leftovers: Dict[str, shared_memory.SharedMemory] = {}
    while _ATTACHED:
        name, shm = _ATTACHED.popitem()
        try:
            shm.close()
        except BufferError:  # numpy views still alive — keep mapped
            leftovers[name] = shm
    _ATTACHED.update(leftovers)


def owned_segment_names() -> List[str]:
    """Names of segments this process currently owns (test hook)."""
    return sorted(_OWNED)


def _cleanup_at_exit() -> None:  # pragma: no cover - exercised at exit
    for owner in list(_OWNED.values()):
        owner.close()
    detach_all()


atexit.register(_cleanup_at_exit)
