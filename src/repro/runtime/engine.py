"""Asynchronous vertex-centric execution engine (HavoqGT simulation).

The engine reproduces HavoqGT's programming model on one process:

* ``do_traversal(seed, visit)`` delivers a seed visitor to every vertex the
  algorithm chooses and then drains all visitor queues to quiescence;
* inside a ``visit`` callback the algorithm calls :meth:`Context.push` to
  send a visitor to a neighboring vertex — this is the only vertex-to-vertex
  communication channel, exactly as in the vertex-centric abstraction;
* each simulated MPI rank owns a visitor queue; the scheduler drains ranks
  round-robin in bounded batches, interleaving ranks the way asynchronous
  message-driven execution does;
* every push is recorded in :class:`~repro.runtime.messages.MessageStats`
  with local/remote/network classification, and quiescence closes a barrier
  interval so the cost model can compute the critical-path makespan.

Determinism: given the same graph, partitioning and algorithm, execution
order is fully deterministic (queues are FIFO, ranks are drained in index
order), which the test suite relies on.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Iterable, List, Optional

from ..errors import EngineError
from .messages import MessageStats
from .metrics import MetricsRegistry
from .partition import PartitionedGraph
from .quiescence import SafraDetector
from .trace import NULL_TRACER
from .visitor import Visitor

VisitCallback = Callable[["Context", Visitor], None]


class Context:
    """Per-callback view of the engine handed to ``visit`` functions."""

    __slots__ = ("_engine", "_current_rank")

    def __init__(self, engine: "Engine") -> None:
        self._engine = engine
        self._current_rank = 0

    @property
    def graph(self):
        return self._engine.pgraph.graph

    @property
    def pgraph(self) -> PartitionedGraph:
        return self._engine.pgraph

    def push(self, visitor: Visitor) -> None:
        """Send ``visitor`` to its target vertex's rank (counts a message)."""
        self._engine._enqueue(visitor, from_rank=self._current_rank)

    def broadcast(self, source: int, targets, payload) -> None:
        """Push one visitor per target — the hot path of Algs. 4 and 5.

        Equivalent to ``push(Visitor(t, payload, source))`` per target but
        with the per-push bookkeeping inlined; ``payload`` is shared by
        every visitor of the broadcast (never copied per target), and the
        delegate test is hoisted out of the loop for the common
        no-delegates configuration.
        """
        engine = self._engine
        assignment = engine._assignment
        queues = engine._queues
        current = self._current_rank
        matrix_row = engine._msg_matrix[current]
        delegates = engine._delegates
        if delegates:
            for target in targets:
                dst_rank = current if target in delegates else assignment[target]
                matrix_row[dst_rank] += 1
                queues[dst_rank].append(Visitor(target, payload, source))
        else:
            for target in targets:
                dst_rank = assignment[target]
                matrix_row[dst_rank] += 1
                queues[dst_rank].append(Visitor(target, payload, source))


class Engine:
    """Drives visitor queues over a partitioned graph.

    Parameters
    ----------
    pgraph:
        The partitioned background graph.
    stats:
        Message accounting sink; a fresh one is created if omitted.
    batch_size:
        How many visitors one rank processes before the scheduler rotates to
        the next rank — models asynchronous interleaving.
    tracer:
        Span tracer; every traversal (and every batched array round)
        records a ``round`` span with message/visit/worklist counters
        when tracing is enabled.  Defaults to the zero-overhead
        :data:`~repro.runtime.trace.NULL_TRACER`.
    metrics:
        Always-on :class:`~repro.runtime.metrics.MetricsRegistry` the hot
        modules (array fixpoint, token walks, NLCC) account into; a fresh
        registry is created if omitted so ``engine.metrics`` is never
        None.  The pipeline passes its per-run registry here, which is
        how one run's rounds aggregate across prototypes and levels.
    """

    def __init__(
        self,
        pgraph: PartitionedGraph,
        stats: Optional[MessageStats] = None,
        batch_size: int = 64,
        tracer=None,
        metrics=None,
    ) -> None:
        if batch_size <= 0:
            raise EngineError("batch_size must be positive")
        self.pgraph = pgraph
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = stats if stats is not None else MessageStats(pgraph.num_ranks)
        if self.stats.num_ranks != pgraph.num_ranks:
            raise EngineError("stats rank count does not match partitioning")
        self.batch_size = batch_size
        self._queues: List[Deque[Visitor]] = [deque() for _ in range(pgraph.num_ranks)]
        self._context = Context(self)
        self._running = False
        # Hot-path snapshots of the partitioning (read-only during a run).
        self._assignment = pgraph.assignment
        self._delegates = pgraph.delegates
        self._rank_node = [pgraph.node_of_rank(r) for r in range(pgraph.num_ranks)]
        # Per-traversal accounting accumulators, folded into `stats` at
        # quiescence (phases only change between traversals, so deferred
        # accounting is exact).  The buffers are zeroed in place between
        # traversals (`_zero_row` is the copy source) instead of being
        # reallocated — LCC runs one traversal per round.
        self._msg_matrix = [[0] * pgraph.num_ranks for _ in range(pgraph.num_ranks)]
        self._visit_counts = [0] * pgraph.num_ranks
        self._zero_row = [0] * pgraph.num_ranks
        self._detector = SafraDetector(pgraph.num_ranks)
        # Metric handles resolved once (hot paths pay one cell add each).
        self._m_traversals = self.metrics.counter("engine.traversals")
        self._m_batched_rounds = self.metrics.counter("engine.rounds_batched")

    # ------------------------------------------------------------------
    def _enqueue(self, visitor: Visitor, from_rank: Optional[int]) -> None:
        dst_rank = self._assignment[visitor.target]
        if (
            self._delegates
            and visitor.source is not None
            and visitor.target in self._delegates
        ):
            # Delegate copies live on every rank: handle on the sender's rank.
            dst_rank = (
                from_rank
                if from_rank is not None
                else self._assignment[visitor.source]
            )
        if from_rank is not None:
            self._msg_matrix[from_rank][dst_rank] += 1
        self._queues[dst_rank].append(visitor)

    def do_traversal(
        self,
        seed_visitors: Iterable[Visitor],
        visit: VisitCallback,
    ) -> None:
        """Run one asynchronous traversal to quiescence.

        ``seed_visitors`` are delivered locally on their owning rank (no
        message cost — HavoqGT seeds via local iteration), then queues are
        drained; each dequeued visitor triggers ``visit(context, visitor)``
        which may push more visitors.  Returns at distributed quiescence,
        closing a barrier interval in the stats.
        """
        if self._running:
            raise EngineError("engine is not reentrant")
        self._running = True
        self._m_traversals.inc()
        tracing = self.tracer.enabled
        round_started = time.perf_counter() if tracing else 0.0
        try:
            seed_count = 0
            for visitor in seed_visitors:
                rank = self.pgraph.rank_of(visitor.target)
                self._queues[rank].append(visitor)
                seed_count += 1
            self._detector.reset()
            self._drain(visit)
            self.stats.record_quiescence(
                self._detector.control_messages(), self._detector.circuits()
            )
            if tracing:
                self._record_round_span(
                    round_started, self._msg_matrix, self._visit_counts,
                    seed_count,
                )
            self.stats.bulk_record(
                self._msg_matrix, self._visit_counts, self._rank_node
            )
            zero_row = self._zero_row
            for row in self._msg_matrix:
                row[:] = zero_row
            self._visit_counts[:] = zero_row
            self.stats.barrier()
        finally:
            self._running = False

    def _drain(self, visit: VisitCallback) -> None:
        """Round-robin drain of all rank queues until global quiescence."""
        queues = self._queues
        context = self._context
        visit_counts = self._visit_counts
        detector = self._detector
        batch = self.batch_size
        active = True
        while active:
            active = False
            for rank, queue in enumerate(queues):
                if not queue:
                    detector.rank_idle(rank)
                    continue
                detector.rank_activated(rank)
                active = True
                context._current_rank = rank
                chunk = min(batch, len(queue))
                visit_counts[rank] += chunk
                pop = queue.popleft
                for _ in range(chunk):
                    visit(context, pop())
            detector.sweep_completed()

    def _record_round_span(
        self,
        round_started: float,
        msg_matrix: List[List[int]],
        visit_counts: List[int],
        worklist: Optional[int] = None,
    ) -> None:
        """Close one per-round trace span from a rank-by-rank matrix."""
        messages = sum(sum(row) for row in msg_matrix)
        local = sum(row[rank] for rank, row in enumerate(msg_matrix))
        counters = {
            "messages": messages,
            "remote_messages": messages - local,
            "visits": sum(visit_counts),
        }
        if worklist is not None:
            counters["worklist"] = worklist
        self.tracer.record_span(
            "round", round_started, time.perf_counter(), counters=counters
        )

    def record_batched_round(
        self,
        msg_matrix: List[List[int]],
        visit_counts: List[int],
        circuits: int = 2,
        round_started: Optional[float] = None,
        worklist: Optional[int] = None,
    ) -> None:
        """Account one batched (array-executed) broadcast round.

        The vectorized kernels (:mod:`repro.core.arraystate`) execute a
        whole round as structured arrays instead of per-message Visitor
        objects; they report the same rank-by-rank message matrix and
        per-rank visit counts the object path would have produced, plus
        the minimal clean termination-detection exchange (``circuits``
        Safra circuits — two when no reactivation wave occurs).  Closes a
        barrier interval exactly like :meth:`do_traversal`.

        ``round_started`` (a ``perf_counter`` stamp taken at the round's
        start) and ``worklist`` (the broadcaster count) feed the per-round
        trace span when tracing is enabled; both are ignored otherwise.
        """
        if self._running:
            raise EngineError("engine is not reentrant")
        self._m_batched_rounds.inc()
        if round_started is not None and self.tracer.enabled:
            self._record_round_span(
                round_started, msg_matrix, visit_counts, worklist
            )
        self.stats.record_quiescence(
            self.pgraph.num_ranks * circuits, circuits
        )
        self.stats.bulk_record(msg_matrix, visit_counts, self._rank_node)
        self.stats.barrier()

    def pending(self) -> int:
        """Total queued visitors (0 at quiescence)."""
        return sum(len(queue) for queue in self._queues)
