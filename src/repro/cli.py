"""Command-line interface: ``python -m repro <command>``.

Gives downstream users file-based access to the pipeline without writing
Python:

* ``search``      — approximate matching on an edge-list graph with a JSON
  template, emitting per-vertex match vectors; ``--json`` dumps the full
  run statistics, ``--trace PATH`` records a span trace;
* ``explore``     — top-down exploratory search: relax the template until
  the first matches appear (§5.5's WDC-4 scenario);
* ``trace``       — render the per-phase / per-constraint / per-level
  breakdown of a trace written by ``search --trace`` or
  ``explore --trace``;
* ``metrics``     — render the always-on metrics snapshot written by
  ``--metrics-out`` (or embedded in ``--json`` output): derived cache
  hit ratios, dense-round fraction, pool utilization, raw instrument
  tables; exports JSON or Prometheus text;
* ``audit``       — run a search and verify its 100% precision/recall
  against brute force (small graphs);
* ``lint``        — project-specific AST invariant checks (optional-int
  truthiness, options threading, tracer guards, array/dict fallback
  parity, hot-loop hygiene, batched template execution —
  docs/INTERNALS.md §11);
* ``analyze``     — interprocedural static analysis: the lint pass plus
  the call-graph/CFG/dataflow rules (shm use-after-release, resident
  immutability, pickles-empty export, dtype contract, options
  threading — docs/INTERNALS.md §16);
* ``batch``       — template-library batch search: several template JSON
  files run through one compiled library sharing kernels, prototypes,
  the ``M*`` traversal and auxiliary pruned views (docs/INTERNALS.md
  §13);
* ``motifs``      — 3/4/5-vertex motif census of an edge-list graph;
  ``--batched`` routes it through the batch executor;
* ``generate``    — write one of the synthetic datasets to disk;
* ``datasets``    — print the Table 1-style summary of the built-in datasets.

Template JSON format::

    {
      "edges": [[0, 1], [1, 2], [2, 0]],
      "labels": {"0": 5, "1": 6, "2": 7},
      "mandatory_edges": [[0, 1]],        // optional
      "name": "my-pattern"                // optional
    }
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .analysis.audit import audit_result
from .analysis.datasets import datasets_table, standard_datasets
from .analysis.report import format_seconds, format_table
from .core import (
    PatternTemplate,
    PipelineOptions,
    count_motifs,
    exploratory_search,
    run_pipeline,
    stopping_distance,
)
from .errors import ReproError
from .graph import io as graph_io
from .runtime.trace import NULL_TRACER, Tracer


def _make_tracer(args: argparse.Namespace):
    """An enabled tracer when ``--trace`` was given, NULL_TRACER otherwise."""
    return Tracer() if getattr(args, "trace", None) else NULL_TRACER


def _write_trace(tracer, path: str) -> None:
    """Export by extension: ``.jsonl`` → flat records, else Chrome JSON."""
    if path.endswith(".jsonl"):
        tracer.write_jsonl(path)
    else:
        tracer.write_chrome_trace(path)
    # stderr so `--json` stdout stays machine-parseable
    print(f"trace written to {path}", file=sys.stderr)


def _write_metrics(result, path: str) -> None:
    """Export the run's metrics snapshot (``.prom`` → Prometheus text)."""
    from .analysis.metricsreport import write_snapshot

    snapshot = result.metrics.snapshot() if result.metrics is not None else {}
    write_snapshot(path, snapshot)
    print(f"metrics snapshot written to {path}", file=sys.stderr)


def load_template(path: str) -> PatternTemplate:
    """Read a template from its JSON description."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    edges = [tuple(edge) for edge in document["edges"]]
    labels = {int(v): int(label) for v, label in document["labels"].items()}
    mandatory = [tuple(edge) for edge in document.get("mandatory_edges", [])]
    return PatternTemplate.from_edges(
        edges, labels, mandatory_edges=mandatory,
        name=document.get("name", "template"),
    )


def _add_common_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("graph", help="edge-list file (u v per line)")
    parser.add_argument(
        "--labels", help="vertex-label file (vertex label per line)"
    )
    parser.add_argument(
        "--ranks", type=int, default=4, help="simulated MPI ranks (default 4)"
    )


def _add_metrics_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        help="write the run's always-on metrics snapshot "
             "(.prom = Prometheus text, else JSON with derived ratios)",
    )


def _add_worker_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=1,
        help="OS worker processes executing prototype searches "
             "(default 1 = in-process; >1 shares one graph CSR via "
             "shared memory)",
    )
    parser.add_argument(
        "--no-shm-pool", action="store_true",
        help="ship pooled scopes as legacy dict payloads instead of "
             "shared-memory bitmap payloads",
    )


def command_search(args: argparse.Namespace) -> int:
    graph = graph_io.read_edge_list(args.graph, args.labels)
    template = load_template(args.template)
    tracer = _make_tracer(args)
    options = PipelineOptions(
        num_ranks=args.ranks, count_matches=args.count, tracer=tracer,
        worker_processes=args.workers, shm_pool=not args.no_shm_pool,
    )
    result = run_pipeline(graph, template, args.k, options)
    if args.trace:
        _write_trace(tracer, args.trace)
    if args.metrics_out:
        _write_metrics(result, args.metrics_out)

    if args.json:
        print(json.dumps(result.stats_document(), indent=1))
        return 0

    print(f"prototypes: {len(result.prototype_set)} "
          f"{result.prototype_set.level_counts()}")
    print(f"matched vertices: {len(result.match_vectors)}; "
          f"labels: {result.total_labels_generated()}")
    if args.count:
        print(f"match mappings: {result.total_match_mappings()}")
    for level in result.levels:
        print(f"  k={level.distance}: {level.num_prototypes} prototypes, "
              f"post-LCC {level.post_lcc_vertices}v/{level.post_lcc_edges}e, "
              f"union {level.union_vertices}v/{level.union_edges}e")
    if result.nlcc_cache_stats:
        cache = result.nlcc_cache_stats
        print(f"nlcc cache: {cache['hits']} hits, {cache['misses']} misses, "
              f"{cache['entries']} entries over {cache['constraints']} "
              f"constraints")
    print(f"simulated time: {format_seconds(result.total_simulated_seconds)}")

    if args.output:
        document = {
            "template": template.name,
            "k": result.k,
            "prototypes": {
                str(p.id): {"name": p.name, "distance": p.distance}
                for p in result.prototype_set
            },
            "match_vectors": {
                str(v): sorted(ids) for v, ids in result.match_vectors.items()
            },
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1)
        print(f"match vectors written to {args.output}")
    return 0


def command_explore(args: argparse.Namespace) -> int:
    graph = graph_io.read_edge_list(args.graph, args.labels)
    template = load_template(args.template)
    tracer = _make_tracer(args)
    result = exploratory_search(
        graph, template, max_k=args.max_k,
        options=PipelineOptions(
            num_ranks=args.ranks, tracer=tracer,
            worker_processes=args.workers, shm_pool=not args.no_shm_pool,
        ),
    )
    if args.trace:
        _write_trace(tracer, args.trace)
    if args.metrics_out:
        _write_metrics(result, args.metrics_out)
    stop = stopping_distance(result)
    rows = [
        [level.distance, level.num_prototypes, level.union_vertices]
        for level in result.levels
    ]
    print(format_table(["k", "prototypes", "matched vertices"], rows))
    if stop is None:
        searched = result.levels[-1].distance if result.levels else 0
        print(f"no matches within k<={searched}")
    else:
        print(f"first matches at edit-distance k={stop}")
    return 0


def command_trace(args: argparse.Namespace) -> int:
    from .analysis.tracereport import load_trace, render_report

    try:
        records = load_trace(args.trace_file)
    except (ValueError, json.JSONDecodeError) as error:
        print(f"error: cannot parse trace {args.trace_file}: {error}",
              file=sys.stderr)
        return 2
    print(render_report(records, tree_depth=args.depth))
    return 0


def command_metrics(args: argparse.Namespace) -> int:
    from .analysis.metricsreport import (
        load_snapshot,
        render_report,
        to_json,
        write_snapshot,
    )

    try:
        snapshot = load_snapshot(args.metrics_file)
    except (ValueError, json.JSONDecodeError) as error:
        print(f"error: cannot parse metrics {args.metrics_file}: {error}",
              file=sys.stderr)
        return 2
    if args.out:
        write_snapshot(args.out, snapshot)
        print(f"metrics snapshot written to {args.out}", file=sys.stderr)
        return 0
    if args.json:
        print(json.dumps(to_json(snapshot), indent=1))
        return 0
    print(render_report(snapshot))
    return 0


def command_audit(args: argparse.Namespace) -> int:
    graph = graph_io.read_edge_list(args.graph, args.labels)
    template = load_template(args.template)
    result = run_pipeline(
        graph, template, args.k,
        PipelineOptions(num_ranks=args.ranks, count_matches=True),
    )
    report = audit_result(graph, result)
    rows = [
        [audit.name, f"{audit.vertex_precision:.3f}",
         f"{audit.vertex_recall:.3f}", audit.exact]
        for audit in report.prototypes
    ]
    print(format_table(["prototype", "precision", "recall", "exact"], rows))
    print(f"overall exact: {report.exact}")
    return 0 if report.exact else 1


def command_lint(args: argparse.Namespace) -> int:
    from .analysis.lint.runner import lint_from_args

    return lint_from_args(args)


def command_batch(args: argparse.Namespace) -> int:
    from .core import BatchQuery, run_batch

    graph = graph_io.read_edge_list(args.graph, args.labels)
    tracer = _make_tracer(args)
    options = PipelineOptions(
        num_ranks=args.ranks, count_matches=args.count, tracer=tracer,
        worker_processes=args.workers, shm_pool=not args.no_shm_pool,
        aux_views=not args.no_aux_views,
    )
    queries = []
    for index, path in enumerate(args.templates):
        template = load_template(path)
        queries.append(BatchQuery(template, args.k, name=f"q{index}:{template.name}"))
    batch = run_batch(graph, queries, options)
    if args.trace:
        _write_trace(tracer, args.trace)

    if args.json:
        print(json.dumps(batch.stats_document(), indent=1))
        return 0

    rows = [
        [item.query.name, item.class_name,
         "yes" if item.absorbed else "no",
         len(item.matched_vertices),
         item.match_mappings if item.match_mappings is not None else "-"]
        for item in sorted(batch, key=lambda i: i.query.name)
    ]
    print(format_table(
        ["query", "class", "absorbed", "matched vertices", "mappings"], rows
    ))
    document = batch.stats_document()
    aux = document["aux_views"]
    print(f"classes: {document['classes']} over {document['queries']} queries; "
          f"root runs: {document['root_runs']}")
    print(f"M* memo: {document['mstar_memo']['hits']} hits, "
          f"{document['mstar_memo']['misses']} misses; "
          f"aux views: {aux['built']} built, {aux['reuse']} reused searches, "
          f"{aux['shipped']} shipped")
    schedule_rows = [
        [entry["name"], f"{entry['cost_estimate']:.3g}",
         format_seconds(entry["wall_seconds"])]
        for entry in document["schedule_costs"]
    ]
    if schedule_rows:
        print("schedule (estimate vs measured):")
        print(format_table(
            ["root job", "cost estimate", "wall"], schedule_rows
        ))
    return 0


def command_motifs(args: argparse.Namespace) -> int:
    graph = graph_io.read_edge_list(args.graph)
    # Motif counting is label-blind: normalize to a single label.
    for vertex in graph.vertices():
        graph.add_vertex(vertex, 0)
    counts = count_motifs(
        graph, args.size, PipelineOptions(num_ranks=args.ranks),
        batched=args.batched,
    )
    rows = [
        [proto.name, proto.num_edges,
         counts.noninduced[proto.id], counts.induced[proto.id]]
        for proto in sorted(counts.prototypes, key=lambda p: -p.num_edges)
    ]
    print(format_table(["motif", "edges", "non-induced", "induced"], rows))
    if counts.batch is not None:
        document = counts.batch.stats_document()
        aux = document["aux_views"]
        print(f"batched: {document['root_runs']} root run(s) for "
              f"{document['queries']} motifs; aux views {aux['built']} built, "
              f"{aux['reuse']} reused searches")
    return 0


def command_generate(args: argparse.Namespace) -> int:
    from .graph.generators import (
        imdb_graph,
        reddit_graph,
        rmat_graph,
        webgraph,
    )

    if args.dataset == "webgraph":
        graph = webgraph(args.size, seed=args.seed)
    elif args.dataset == "rmat":
        scale = max(4, args.size.bit_length())
        graph = rmat_graph(scale=scale, seed=args.seed)
    elif args.dataset == "reddit":
        graph = reddit_graph(num_authors=max(10, args.size // 7), seed=args.seed)
    elif args.dataset == "imdb":
        graph = imdb_graph(num_movies=max(10, args.size // 4), seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise ReproError(f"unknown dataset {args.dataset}")
    graph_io.write_edge_list(graph, args.output)
    graph_io.write_labels(graph, args.output + ".labels")
    print(f"{args.dataset}: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges -> {args.output}(.labels)")
    return 0


def command_datasets(args: argparse.Namespace) -> int:
    print(datasets_table(standard_datasets(seed=args.seed)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Approximate pattern matching with precision and recall "
                    "guarantees (SIGMOD'20 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    search = commands.add_parser("search", help="approximate matching")
    _add_common_graph_arguments(search)
    _add_worker_arguments(search)
    search.add_argument("template", help="template JSON file")
    search.add_argument("-k", type=int, default=1, help="edit distance")
    search.add_argument("--count", action="store_true", help="count matches")
    search.add_argument("--output", help="write match vectors as JSON")
    search.add_argument(
        "--json", action="store_true",
        help="print the full run statistics as JSON instead of tables",
    )
    search.add_argument(
        "--trace",
        help="record a span trace (.jsonl = flat records, else Chrome "
             "trace-event JSON for Perfetto)",
    )
    _add_metrics_argument(search)
    search.set_defaults(func=command_search)

    explore = commands.add_parser(
        "explore", help="top-down exploratory search (relax until matches)"
    )
    _add_common_graph_arguments(explore)
    _add_worker_arguments(explore)
    explore.add_argument("template", help="template JSON file")
    explore.add_argument("--max-k", type=int, default=None,
                         help="relaxation bound (default: until disconnect)")
    explore.add_argument(
        "--trace",
        help="record a span trace (.jsonl = flat records, else Chrome "
             "trace-event JSON for Perfetto)",
    )
    _add_metrics_argument(explore)
    explore.set_defaults(func=command_explore)

    trace = commands.add_parser(
        "trace", help="render the breakdown report of an exported trace"
    )
    trace.add_argument("trace_file", help="trace written by --trace")
    trace.add_argument("--depth", type=int, default=3,
                       help="span-tree display depth (default 3)")
    trace.set_defaults(func=command_trace)

    metrics = commands.add_parser(
        "metrics",
        help="render a metrics snapshot written by --metrics-out "
             "(or embedded in --json output)",
    )
    metrics.add_argument(
        "metrics_file",
        help="metrics snapshot JSON (bare, or a --json stats document)",
    )
    metrics.add_argument(
        "--json", action="store_true",
        help="print the snapshot plus derived ratios as JSON",
    )
    metrics.add_argument(
        "--out",
        help="re-export to a file (.prom = Prometheus text, else JSON)",
    )
    metrics.set_defaults(func=command_metrics)

    audit = commands.add_parser(
        "audit", help="verify precision/recall against brute force"
    )
    _add_common_graph_arguments(audit)
    audit.add_argument("template", help="template JSON file")
    audit.add_argument("-k", type=int, default=1, help="edit distance")
    audit.set_defaults(func=command_audit)

    lint = commands.add_parser(
        "lint",
        help="project-specific AST invariant checks (INTERNALS.md §11)",
    )
    from .analysis.lint.runner import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=command_lint)

    analyze = commands.add_parser(
        "analyze",
        help="interprocedural static analysis — call-graph/CFG/dataflow "
             "rules R9+ on top of the lint pass (INTERNALS.md §16)",
    )
    add_lint_arguments(analyze)
    analyze.set_defaults(func=command_lint, deep=True)

    batch = commands.add_parser(
        "batch",
        help="template-library batch search (shared kernels/prototypes/"
             "M*/auxiliary views)",
    )
    _add_common_graph_arguments(batch)
    _add_worker_arguments(batch)
    batch.add_argument(
        "templates", nargs="+", help="template JSON files (the library)"
    )
    batch.add_argument("-k", type=int, default=0,
                       help="edit distance for every query (default 0)")
    batch.add_argument("--count", action="store_true", help="count matches")
    batch.add_argument(
        "--no-aux-views", action="store_true",
        help="disable the GraphMini-style auxiliary pruned views",
    )
    batch.add_argument(
        "--json", action="store_true",
        help="print the batch stats document (per-class reuse counters) "
             "as JSON",
    )
    batch.add_argument(
        "--trace",
        help="record a span trace (.jsonl = flat records, else Chrome "
             "trace-event JSON for Perfetto)",
    )
    batch.set_defaults(func=command_batch)

    motifs = commands.add_parser("motifs", help="motif census")
    _add_common_graph_arguments(motifs)
    motifs.add_argument("--size", type=int, default=3, choices=[3, 4, 5])
    motifs.add_argument(
        "--batched", action="store_true",
        help="route the census through the template-library batch "
             "executor (one clique-rooted run + auxiliary views)",
    )
    motifs.set_defaults(func=command_motifs)

    generate = commands.add_parser("generate", help="write a synthetic dataset")
    generate.add_argument(
        "dataset", choices=["webgraph", "rmat", "reddit", "imdb"]
    )
    generate.add_argument("output", help="edge-list output path")
    generate.add_argument("--size", type=int, default=1000)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=command_generate)

    datasets = commands.add_parser("datasets", help="Table 1-style summary")
    datasets.add_argument("--seed", type=int, default=0)
    datasets.set_defaults(func=command_datasets)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
