"""Analysis utilities: memory model (Fig. 11), datasets table, reporting."""

from .audit import AuditReport, PrototypeAudit, audit_match_vectors, audit_result
from .datasets import dataset_row, datasets_table, standard_datasets
from .memory import (
    dynamic_state_bytes,
    memory_breakdown,
    relative_breakdown,
    static_state_bytes,
    topology_bytes,
)
from .report import (
    bar_chart,
    format_bytes,
    format_count,
    format_seconds,
    format_table,
    series,
    speedup,
)
from .tracereport import (
    constraint_breakdown,
    level_breakdown,
    load_trace,
    phase_breakdown,
    render_report,
    span_tree_lines,
)

__all__ = [
    "AuditReport",
    "PrototypeAudit",
    "audit_match_vectors",
    "audit_result",
    "bar_chart",
    "constraint_breakdown",
    "dataset_row",
    "datasets_table",
    "dynamic_state_bytes",
    "format_bytes",
    "format_count",
    "format_seconds",
    "format_table",
    "level_breakdown",
    "load_trace",
    "memory_breakdown",
    "phase_breakdown",
    "relative_breakdown",
    "render_report",
    "series",
    "span_tree_lines",
    "speedup",
    "standard_datasets",
    "static_state_bytes",
    "topology_bytes",
]
