"""Trace analysis: load exported traces, render attribution breakdowns.

Consumes the two formats written by :class:`repro.runtime.trace.Tracer`
(Chrome trace-event JSON and flat JSONL) and renders the Fig. 10-style
attribution tables: where a search spent its time per phase, per
non-local constraint, and per edit-distance level.

Both exporters embed ``span_id``/``parent_id``, so the tree is
reconstructed exactly for spans recorded live.  The one exception is
pooled-worker payloads grafted *after* the enclosing spans closed
(:meth:`Tracer.attach` with an empty span stack): those export as extra
roots.  Because forked workers share the parent's CLOCK_MONOTONIC
timebase, the loader re-parents each such worker-tagged root under the
tightest earlier span whose interval encloses it, so pooled traces
aggregate identically to sequential ones.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .report import format_seconds, format_table

__all__ = [
    "constraint_breakdown",
    "level_breakdown",
    "load_trace",
    "phase_breakdown",
    "render_report",
    "span_tree_lines",
]

#: counters shown in the per-constraint table, in display order
_CONSTRAINT_COUNTERS = [
    "checked", "cache_hits", "tokens_launched", "completions",
    "eliminated_roles", "messages",
]


def load_trace(path) -> List[Dict[str, object]]:
    """Load an exported trace into flat span records, preorder.

    Accepts both Chrome trace-event JSON (an object with ``traceEvents``)
    and the JSONL span dump; returns records shaped like
    ``Tracer._flat_records`` — ``span_id``, ``parent_id``, ``name``,
    ``depth``, ``ts``/``dur`` (seconds), ``attrs``, ``counters``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        content = handle.read()
    if not content.strip():
        return []
    try:
        # One JSON document = Chrome trace-event format; a JSONL dump
        # fails here with "Extra data" at the second line.
        document = json.loads(content)
    except json.JSONDecodeError:
        records = [
            json.loads(line) for line in content.splitlines() if line.strip()
        ]
        return _with_depths(records)
    if isinstance(document, dict) and "traceEvents" in document:
        return _from_chrome(document)
    if isinstance(document, dict):
        raise ValueError(f"{path}: JSON object without traceEvents")
    # A single-line JSONL file parses as one record.
    return _with_depths([document])


def _from_chrome(document: Dict[str, object]) -> List[Dict[str, object]]:
    records = []
    for event in document["traceEvents"]:
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        records.append({
            "span_id": args.get("span_id"),
            "parent_id": args.get("parent_id"),
            "name": event.get("name", "?"),
            "ts": event.get("ts", 0.0) / 1e6,
            "dur": event.get("dur", 0.0) / 1e6,
            "attrs": dict(args.get("attrs") or {}),
            "counters": dict(args.get("counters") or {}),
        })
    records.sort(key=lambda r: (r["span_id"] is None, r["span_id"]))
    return _with_depths(records)


def _reparent_detached(
    records: List[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Fold worker payloads that were attached as detached roots.

    A pooled level grafts worker span payloads under its open ``level``
    span, so they normally export with real parent ids.  Payloads
    attached after the enclosing spans already closed become extra roots
    instead — worker-tagged (``attrs["worker"]``), emitted after the main
    tree.  Every span sits on one shared CLOCK_MONOTONIC timebase, so
    each such root belongs under the tightest (shortest) earlier span
    whose ``[ts, ts + dur]`` interval encloses it.
    """
    for index, record in enumerate(records):
        if index == 0 or record.get("parent_id") is not None:
            continue
        attrs = record.get("attrs") or {}
        if not isinstance(attrs, dict) or "worker" not in attrs:
            continue
        ts = float(record.get("ts", 0.0))
        end = ts + float(record.get("dur", 0.0))
        best: Optional[Dict[str, object]] = None
        for other in records[:index]:
            other_ts = float(other.get("ts", 0.0))
            other_end = other_ts + float(other.get("dur", 0.0))
            if other_ts <= ts and end <= other_end:
                if best is None or other_end - other_ts <= float(
                    best["dur"]  # type: ignore[arg-type]
                ):
                    best = other
        if best is not None:
            record["parent_id"] = best.get("span_id")
    return records


def _with_depths(records: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Fill/refresh ``depth`` from the parent chain."""
    _reparent_detached(records)
    depths: Dict[object, int] = {}
    for record in records:
        parent = record.get("parent_id")
        depth = depths.get(parent, -1) + 1 if parent is not None else 0
        record["depth"] = depth
        depths[record.get("span_id")] = depth
    return records


def _children_index(records) -> Dict[object, List[Dict[str, object]]]:
    children: Dict[object, List[Dict[str, object]]] = {}
    for record in records:
        children.setdefault(record.get("parent_id"), []).append(record)
    return children


def _self_seconds(record, children_of) -> float:
    kids = children_of.get(record.get("span_id"), ())
    return max(record["dur"] - sum(c["dur"] for c in kids), 0.0)


# ----------------------------------------------------------------------
# Aggregations
# ----------------------------------------------------------------------
def phase_breakdown(records) -> List[Dict[str, object]]:
    """Aggregate spans by name: count, total/self seconds, counters.

    Sorted by total seconds descending.  ``total_s`` double-counts
    nesting by construction (a ``prototype`` span contains its ``lcc``
    spans); ``self_s`` is exclusive time and sums to the root duration.
    """
    children_of = _children_index(records)
    buckets: Dict[str, Dict[str, object]] = {}
    for record in records:
        bucket = buckets.setdefault(record["name"], {
            "name": record["name"], "count": 0,
            "total_s": 0.0, "self_s": 0.0, "counters": {},
        })
        bucket["count"] += 1
        bucket["total_s"] += record["dur"]
        bucket["self_s"] += _self_seconds(record, children_of)
        counters = bucket["counters"]
        for key, value in record["counters"].items():
            counters[key] = counters.get(key, 0) + value
    return sorted(buckets.values(), key=lambda b: -b["total_s"])


def constraint_breakdown(records) -> List[Dict[str, object]]:
    """Per-constraint attribution over all ``nlcc`` spans.

    Groups by (kind, source role, walk length) — one row per distinct
    non-local constraint shape, summed across prototypes and levels,
    sorted by time descending.  This is the table that shows which
    constraint the search spent its pruning budget on.
    """
    buckets: Dict[tuple, Dict[str, object]] = {}
    for record in records:
        if record["name"] != "nlcc":
            continue
        attrs = record["attrs"]
        key = (
            attrs.get("kind", "?"), attrs.get("source"),
            attrs.get("walk_length"),
        )
        bucket = buckets.setdefault(key, {
            "kind": key[0], "source": key[1], "walk_length": key[2],
            "count": 0, "total_s": 0.0,
            **{name: 0 for name in _CONSTRAINT_COUNTERS},
        })
        bucket["count"] += 1
        bucket["total_s"] += record["dur"]
        for name in _CONSTRAINT_COUNTERS:
            bucket[name] += record["counters"].get(name, 0)
    return sorted(buckets.values(), key=lambda b: -b["total_s"])


def level_breakdown(records) -> List[Dict[str, object]]:
    """Per-edit-distance-level totals (the stacks of Figs. 6/8)."""
    rows = []
    for record in records:
        if record["name"] != "level":
            continue
        counters = record["counters"]
        rows.append({
            "distance": record["attrs"].get("distance"),
            "total_s": record["dur"],
            "prototypes": counters.get("prototypes", 0),
            "union_vertices": counters.get("union_vertices", 0),
            "union_edges": counters.get("union_edges", 0),
            "post_lcc_vertices": counters.get("post_lcc_vertices", 0),
            "post_lcc_edges": counters.get("post_lcc_edges", 0),
        })
    rows.sort(key=lambda r: (r["distance"] is None, r["distance"]))
    return rows


def span_tree_lines(
    records, max_depth: Optional[int] = 3
) -> List[str]:
    """Indented span-tree summary lines (topology sanity view)."""
    lines = []
    for record in records:
        depth = record["depth"]
        if max_depth is not None and depth > max_depth:
            continue
        attrs = record["attrs"]
        detail = ", ".join(
            f"{k}={v}" for k, v in attrs.items() if k in (
                "template", "k", "mode", "distance", "label", "kind", "worker",
            )
        )
        lines.append(
            "  " * depth
            + f"{record['name']}"
            + (f" [{detail}]" if detail else "")
            + f"  {format_seconds(record['dur'])}"
        )
    return lines


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_report(records, tree_depth: Optional[int] = 3) -> str:
    """The full ``repro trace`` report: tree, phases, constraints, levels."""
    if not records:
        return "trace is empty"
    sections = []

    sections.append("== span tree (to depth %s) ==" % tree_depth)
    sections.append("\n".join(span_tree_lines(records, tree_depth)))

    phases = phase_breakdown(records)
    rows = [
        [
            bucket["name"], bucket["count"],
            format_seconds(bucket["total_s"]),
            format_seconds(bucket["self_s"]),
            int(bucket["counters"].get("messages", 0)),
            int(bucket["counters"].get("remote_messages", 0)),
        ]
        for bucket in phases
    ]
    sections.append("\n== per-phase breakdown ==")
    sections.append(format_table(
        ["phase", "spans", "total", "self", "messages", "remote"], rows
    ))

    constraints = constraint_breakdown(records)
    if constraints:
        rows = [
            [
                f"{b['kind']}(src={b['source']}, len={b['walk_length']})",
                b["count"], format_seconds(b["total_s"]),
                int(b["checked"]), int(b["cache_hits"]),
                int(b["tokens_launched"]), int(b["completions"]),
                int(b["eliminated_roles"]), int(b["messages"]),
            ]
            for b in constraints
        ]
        sections.append("\n== per-constraint breakdown (NLCC) ==")
        sections.append(format_table(
            ["constraint", "runs", "time", "checked", "cache hits",
             "tokens", "completions", "eliminated", "messages"], rows
        ))

    levels = level_breakdown(records)
    if levels:
        rows = [
            [
                level["distance"], int(level["prototypes"]),
                format_seconds(level["total_s"]),
                f"{int(level['union_vertices'])}/{int(level['union_edges'])}",
                f"{int(level['post_lcc_vertices'])}/"
                f"{int(level['post_lcc_edges'])}",
            ]
            for level in levels
        ]
        sections.append("\n== per-level breakdown ==")
        sections.append(format_table(
            ["k", "prototypes", "time", "union v/e", "post-LCC v/e"], rows
        ))

    return "\n".join(sections)
