"""Generic worklist dataflow solving over :mod:`.cfg` graphs.

The deep rules phrase their properties as classic gen/kill analyses —
"which shared-memory names are released on *some* path reaching this
statement" (forward, may, union join), "which facts hold on *every*
path" (must, intersection join).  :class:`Analysis` is the strategy
object: a rule subclasses it with a per-statement transfer function and
:func:`solve` iterates to the fixed point.

Facts are ``frozenset`` instances throughout — cheap to hash, compare
and join, and plenty for the set-shaped properties the rules track.
The solver is direction-agnostic: ``backward=True`` walks predecessor
edges with the same machinery (successors/predecessors and the
statement iteration order swap).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Tuple

from .cfg import Cfg

__all__ = ["Analysis", "solve", "statement_facts"]

Fact = FrozenSet[object]


class Analysis:
    """Strategy for one dataflow problem.

    Subclasses set :attr:`backward` / :attr:`may` and implement
    :meth:`transfer`; :meth:`initial` is the entry fact (exit fact for
    backward analyses).  ``may=True`` joins with union (fact holds on
    some path), ``may=False`` with intersection (holds on all paths).
    """

    backward: bool = False
    may: bool = True

    def initial(self) -> Fact:
        return frozenset()

    def boundary(self) -> Fact:
        """The fact for blocks not yet visited (identity of the join)."""
        return frozenset() if self.may else None  # type: ignore[return-value]

    def transfer(self, fact: Fact, statement: object) -> Fact:
        """Fact after (before, when backward) one statement."""
        raise NotImplementedError

    def join(self, facts: List[Fact]) -> Fact:
        if not facts:
            return frozenset()
        result = facts[0]
        for fact in facts[1:]:
            result = result | fact if self.may else result & fact
        return result


def _block_statements(cfg: Cfg, block_id: int, backward: bool) -> List[object]:
    statements = cfg.blocks[block_id].statements
    return list(reversed(statements)) if backward else list(statements)


def solve(cfg: Cfg, analysis: Analysis) -> Dict[int, Fact]:
    """Fixed-point in-facts per block (out-facts for backward problems).

    Returns the fact at each block's *entry* in execution order — i.e.
    the fact that holds before its first statement runs (after its last,
    for backward analyses).
    """
    if analysis.backward:
        start = cfg.exit
        edges_in: Callable[[int], List[int]] = (
            lambda b: cfg.blocks[b].successors
        )
        edges_out: Callable[[int], List[int]] = (
            lambda b: cfg.blocks[b].predecessors
        )
    else:
        start = cfg.entry
        edges_in = lambda b: cfg.blocks[b].predecessors  # noqa: E731
        edges_out = lambda b: cfg.blocks[b].successors   # noqa: E731

    in_facts: Dict[int, Fact] = {start: analysis.initial()}
    out_facts: Dict[int, Fact] = {}
    worklist: List[int] = [start]
    while worklist:
        block_id = worklist.pop(0)
        fact = in_facts.get(block_id, frozenset())
        for statement in _block_statements(cfg, block_id, analysis.backward):
            fact = analysis.transfer(fact, statement)
        if out_facts.get(block_id) == fact and block_id in out_facts:
            continue
        out_facts[block_id] = fact
        for succ in edges_out(block_id):
            incoming = [
                out_facts[p] for p in edges_in(succ) if p in out_facts
            ]
            joined = analysis.join(incoming)
            if succ not in in_facts or in_facts[succ] != joined:
                in_facts[succ] = joined
                if succ not in worklist:
                    worklist.append(succ)
    return in_facts


def statement_facts(
    cfg: Cfg, analysis: Analysis, in_facts: Dict[int, Fact]
) -> List[Tuple[object, Fact]]:
    """(statement, fact holding *before* it) pairs, from solved in-facts.

    The per-statement expansion rules use to anchor violations: after
    :func:`solve` fixes the block boundaries, one more pass through each
    block replays the transfer function statement by statement.
    """
    pairs: List[Tuple[object, Fact]] = []
    for block in cfg.blocks:
        if block.id not in in_facts:
            continue  # unreachable
        fact = in_facts[block.id]
        for statement in _block_statements(
            cfg, block.id, analysis.backward
        ):
            pairs.append((statement, fact))
            fact = analysis.transfer(fact, statement)
    return pairs
