"""Per-function value-source and effect summaries.

For every function the call graph knows, one :class:`FunctionEffects`
records the facts the interprocedural rules consume:

* ``param_reads`` / ``param_writes`` — which attributes of each
  parameter the function reads / stores (``p.x`` vs ``p.x = ...`` /
  ``p.x[...] = ...``);
* ``closes`` — parameters on which the function calls ``close()`` /
  ``unlink()``, **transitively**: a function that hands a parameter to a
  helper that closes it also closes it (fixed point over the call
  graph) — the property R9 threads through helper calls;
* ``ships`` — parameters that cross a process boundary: passed into an
  executor ``submit``/``map``, a pool ``initargs`` tuple, or
  ``pickle.dumps`` (the pickles-empty contract of R11 cares about what
  travels);
* ``options_param`` / ``options_fields`` — the function's
  ``PipelineOptions``-shaped parameter and the fields it reads off it
  (the leaves R13 traces back to the drivers);
* ``return_dtype`` — the numpy dtype family (``int`` / ``uint`` /
  ``float`` / ``bool`` / ``object``) of the function's return value when
  it is statically evident, propagated through project-internal calls
  (R12's interprocedural half).  ``None`` = unknown.

Unknown callees follow the conservative model documented in
:mod:`.callgraph`: an external call neither closes nor ships what it is
handed, and returns unknown dtype.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from .callgraph import CallGraph, FunctionInfo, callgraph_of
from .framework import Project

__all__ = [
    "EffectsIndex",
    "FunctionEffects",
    "dtype_label",
    "effects_of",
    "infer_call_dtype",
    "map_arguments",
]

#: names of the PipelineOptions parameter the drivers thread
OPTIONS_PARAM_NAMES = frozenset({"options"})

_RELEASE_METHODS = frozenset({"close", "unlink"})
_SHIP_CALLS = frozenset({"submit", "map", "apply_async", "dumps"})

_FLOAT_DTYPES = frozenset({
    "float", "float16", "float32", "float64", "double", "half", "single",
    "f2", "f4", "f8",
})
_INT_DTYPES = frozenset({
    "int", "int8", "int16", "int32", "int64", "intp", "int_", "long",
    "i1", "i2", "i4", "i8",
})
_UINT_DTYPES = frozenset({
    "uint8", "uint16", "uint32", "uint64", "uintp", "uint",
    "u1", "u2", "u4", "u8",
})
_BOOL_DTYPES = frozenset({"bool", "bool_", "b1"})

#: numpy constructors whose default dtype is float64 when ``dtype=`` is
#: omitted — the "silent upcast" R12 hunts
_FLOAT_DEFAULT_CTORS = frozenset({"zeros", "ones", "empty", "full"})
#: numpy constructors that take their dtype from ``dtype=`` but give no
#: static answer without it
_NEUTRAL_CTORS = frozenset({
    "array", "asarray", "ascontiguousarray", "fromiter", "frombuffer",
    "arange", "concatenate", "repeat",
})


def dtype_label(node: Optional[ast.expr]) -> Optional[str]:
    """Classify a ``dtype=`` expression into its family, if recognizable."""
    name: Optional[str] = None
    if node is None:
        return None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value.lstrip("<>=|")
    elif isinstance(node, ast.Call):
        # np.dtype("...") wrapper
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "dtype" and node.args):
            return dtype_label(node.args[0])
        return None
    if name is None:
        return None
    lowered = name.lower()
    if lowered in _FLOAT_DTYPES:
        return "float"
    if lowered in _INT_DTYPES:
        return "int"
    if lowered in _UINT_DTYPES:
        return "uint"
    if lowered in _BOOL_DTYPES:
        return "bool"
    if lowered in ("object", "object_", "o"):
        return "object"
    return None


def _dtype_keyword(node: ast.Call) -> Optional[ast.expr]:
    for keyword in node.keywords:
        if keyword.arg == "dtype":
            return keyword.value
    return None


def infer_call_dtype(node: ast.Call) -> Optional[str]:
    """Dtype family of a numpy-constructor / ``astype`` call, if evident."""
    func = node.func
    name = ""
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    keyword = _dtype_keyword(node)
    explicit = dtype_label(keyword)
    if name == "astype":
        if explicit is not None:
            return explicit
        return dtype_label(node.args[0]) if node.args else None
    if name in _FLOAT_DEFAULT_CTORS:
        if keyword is None:
            return "float"  # numpy's default dtype
        return explicit     # None when the dtype expr is unrecognized
    if name in _NEUTRAL_CTORS:
        return explicit
    return None


def map_arguments(
    site_node: ast.Call, callee: FunctionInfo
) -> List[tuple]:
    """(argument expr, callee param name) pairs for one call site.

    Positional arguments map onto the callee's positional parameters
    (``self``/``cls`` already skipped); ``*args`` splats end the
    positional mapping conservatively.
    """
    pairs: List[tuple] = []
    positional = callee.positional_params()
    for index, arg in enumerate(site_node.args):
        if isinstance(arg, ast.Starred):
            break
        if index < len(positional):
            pairs.append((arg, positional[index]))
    for keyword in site_node.keywords:
        if keyword.arg is not None:
            pairs.append((keyword.value, keyword.arg))
    return pairs


class FunctionEffects:
    """The computed summary of one function."""

    __slots__ = (
        "qname", "param_reads", "param_writes", "closes", "ships",
        "options_param", "options_fields", "return_dtype",
    )

    def __init__(self, qname: str) -> None:
        self.qname = qname
        self.param_reads: Dict[str, Set[str]] = {}
        self.param_writes: Dict[str, Set[str]] = {}
        self.closes: Set[str] = set()
        self.ships: Set[str] = set()
        self.options_param: Optional[str] = None
        self.options_fields: Set[str] = set()
        self.return_dtype: Optional[str] = None


def _is_options_param(arg: ast.arg) -> bool:
    if arg.arg in OPTIONS_PARAM_NAMES:
        return True
    annotation = arg.annotation
    text = ""
    if isinstance(annotation, ast.Name):
        text = annotation.id
    elif isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        text = annotation.value
    elif isinstance(annotation, ast.Attribute):
        text = annotation.attr
    return "PipelineOptions" in text


class EffectsIndex:
    """Every function's :class:`FunctionEffects`, fixpointed project-wide."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.by_qname: Dict[str, FunctionEffects] = {}
        for qname, info in graph.functions.items():
            self.by_qname[qname] = self._local_summary(qname, info)
        self._close_fixpoint()
        self._dtype_fixpoint()

    # ------------------------------------------------------------------
    def _local_summary(
        self, qname: str, info: FunctionInfo
    ) -> FunctionEffects:
        effects = FunctionEffects(qname)
        params = set(info.params)
        node = info.node
        for arg in (
            list(getattr(node.args, "posonlyargs", []))
            + list(node.args.args) + list(node.args.kwonlyargs)
        ):
            if _is_options_param(arg):
                effects.options_param = arg.arg
                break
        option_param = effects.options_param
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute):
                base = sub.value
                if isinstance(base, ast.Name) and base.id in params:
                    if isinstance(sub.ctx, ast.Store):
                        effects.param_writes.setdefault(
                            base.id, set()
                        ).add(sub.attr)
                    else:
                        effects.param_reads.setdefault(
                            base.id, set()
                        ).add(sub.attr)
                    if base.id == option_param and isinstance(
                        sub.ctx, ast.Load
                    ):
                        effects.options_fields.add(sub.attr)
            elif isinstance(sub, ast.Subscript) and isinstance(
                sub.ctx, ast.Store
            ):
                target = sub.value
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in params):
                    effects.param_writes.setdefault(
                        target.value.id, set()
                    ).add(target.attr)
            elif isinstance(sub, ast.Call):
                func = sub.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in _RELEASE_METHODS
                        and isinstance(func.value, ast.Name)
                        and func.value.id in params):
                    effects.closes.add(func.value.id)
                if (isinstance(func, ast.Attribute)
                        and func.attr in _SHIP_CALLS):
                    for arg_node in sub.args:
                        if (isinstance(arg_node, ast.Name)
                                and arg_node.id in params):
                            effects.ships.add(arg_node.id)
                for keyword in sub.keywords:
                    if keyword.arg != "initargs":
                        continue
                    for element in ast.walk(keyword.value):
                        if (isinstance(element, ast.Name)
                                and element.id in params):
                            effects.ships.add(element.id)
        return effects

    # ------------------------------------------------------------------
    def _close_fixpoint(self) -> None:
        changed = True
        while changed:
            changed = False
            for qname, sites in self.graph.calls_from.items():
                effects = self.by_qname.get(qname)
                if effects is None:
                    continue
                info = self.graph.functions[qname]
                params = set(info.params)
                for site in sites:
                    for callee_qname in site.callees:
                        callee = self.graph.functions.get(callee_qname)
                        callee_fx = self.by_qname.get(callee_qname)
                        if callee is None or callee_fx is None:
                            continue
                        if not callee_fx.closes:
                            continue
                        for arg, param in map_arguments(
                            site.node, callee
                        ):
                            if (isinstance(arg, ast.Name)
                                    and arg.id in params
                                    and param in callee_fx.closes
                                    and arg.id not in effects.closes):
                                effects.closes.add(arg.id)
                                changed = True

    # ------------------------------------------------------------------
    def infer_expr(
        self,
        expr: ast.expr,
        env: Dict[str, Optional[str]],
    ) -> Optional[str]:
        """Dtype family of an expression under local bindings ``env``."""
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.BinOp):
            if isinstance(expr.op, ast.Div):
                return "float"
            left = self.infer_expr(expr.left, env)
            right = self.infer_expr(expr.right, env)
            if left == right:
                return left
            if "float" in (left, right) and {left, right} <= {
                "float", "int", "uint"
            }:
                return "float"
            return None
        if isinstance(expr, ast.Call):
            direct = infer_call_dtype(expr)
            if direct is not None:
                return direct
            if (isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == "astype"):
                return None
            site_callees = self._callees_of_expr(expr)
            labels = {
                self.by_qname[c].return_dtype
                for c in site_callees
                if c in self.by_qname
            }
            if len(labels) == 1:
                return labels.pop()
            return None
        if isinstance(expr, ast.IfExp):
            body = self.infer_expr(expr.body, env)
            orelse = self.infer_expr(expr.orelse, env)
            return body if body == orelse else None
        return None

    def _callees_of_expr(self, expr: ast.Call) -> List[str]:
        for sites in self.graph.calls_from.values():
            for site in sites:
                if site.node is expr:
                    return list(site.callees)
        return []

    def function_env(
        self, info: FunctionInfo
    ) -> Dict[str, Optional[str]]:
        """name -> dtype family for the function's local assignments."""
        env: Dict[str, Optional[str]] = {}
        for sub in ast.walk(info.node):
            target: Optional[str] = None
            value: Optional[ast.expr] = None
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                if isinstance(sub.targets[0], ast.Name):
                    target = sub.targets[0].id
                    value = sub.value
            elif isinstance(sub, ast.AnnAssign) and isinstance(
                sub.target, ast.Name
            ):
                target = sub.target.id
                value = sub.value
            if target is None or value is None:
                continue
            label = self.infer_expr(value, env)
            # conflicting rebinds degrade to unknown
            if target in env and env[target] != label:
                env[target] = None
            else:
                env[target] = label
        return env

    def _dtype_fixpoint(self) -> None:
        for _round in range(3):  # shallow call chains converge fast
            changed = False
            for qname, info in self.graph.functions.items():
                effects = self.by_qname[qname]
                env = self.function_env(info)
                labels: Set[Optional[str]] = set()
                for sub in ast.walk(info.node):
                    if isinstance(sub, ast.Return) and sub.value is not None:
                        labels.add(self.infer_expr(sub.value, env))
                label = labels.pop() if len(labels) == 1 else None
                if label != effects.return_dtype:
                    effects.return_dtype = label
                    changed = True
            if not changed:
                break


def effects_of(project: Project) -> EffectsIndex:
    """The project's effect summaries, memoized alongside the call graph."""
    index = project.cache.get("effects")
    if index is None:
        index = EffectsIndex(callgraph_of(project))
        project.cache["effects"] = index
    return index
