"""``repro lint`` — project-specific AST invariant checking.

The dict/array dual-path pipeline keeps two semantically-identical
implementations of every hot path; this package encodes the invariants
that keep them in lockstep (and the option-threading / tracing-overhead
contracts around them) as mechanical rules.  See
:mod:`repro.analysis.lint.rules` for the rules and
:mod:`repro.analysis.lint.framework` for the machinery.

Run it via ``repro lint`` or ``python -m repro.analysis.lint`` (CI).
"""

from .framework import (
    Baseline,
    LintReport,
    ModuleSource,
    Project,
    Rule,
    Violation,
    all_rules,
    register_rule,
    run_lint,
)
from .runner import main

__all__ = [
    "Baseline",
    "LintReport",
    "ModuleSource",
    "Project",
    "Rule",
    "Violation",
    "all_rules",
    "main",
    "register_rule",
    "run_lint",
]
