"""Project-wide call graph over a lint :class:`~.framework.Project`.

The deep rules (R9–R13) reason about properties that cross function
boundaries — a helper that closes a shared-memory segment on behalf of
its caller, an ``options`` parameter dropped three calls above the leaf
that reads it.  This module resolves the project's call sites into a
name-indexed graph good enough for those checks:

* **Definition index** — every module-level function and every method,
  keyed by qualified name ``"pkg/mod.py::func"`` /
  ``"pkg/mod.py::Class.func"``.
* **Name resolution** — bare-name calls resolve through the defining
  module first, then ``from x import f`` aliases, then (uniquely-named)
  project-wide functions.
* **Method dispatch by class** — ``self.m(...)`` binds to the enclosing
  class (walking its project-local bases); ``obj.m(...)`` uses the flow
  of ``obj = ClassName(...)`` assignments and parameter annotations to
  pick the class, and falls back to *every* project class defining
  ``m`` when the receiver's class is unknown (an over-approximation:
  rules stay sound for may-properties).
* **Conservative unknown-callee model** — calls into code the project
  does not define (numpy, stdlib, dynamic dispatch through variables)
  are recorded as unresolved sites with
  :attr:`CallSite.external` = True; each rule decides what the safe
  assumption is for its property (e.g. the effects pass assumes an
  external callee neither closes nor mutates what it is handed, while
  R12 treats values returned by external calls as unknown-dtype).

All of it is a pure AST pass — no imports of the analyzed code.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .framework import ModuleSource, Project

__all__ = [
    "CallGraph",
    "annotation_class",
    "CallSite",
    "FunctionInfo",
    "callgraph_of",
]


class FunctionInfo:
    """One defined function or method and the lookups rules need."""

    __slots__ = (
        "qname", "module", "node", "class_name", "params", "defaults",
    )

    def __init__(
        self,
        qname: str,
        module: ModuleSource,
        node: ast.AST,
        class_name: Optional[str],
    ) -> None:
        self.qname = qname
        self.module = module
        self.node = node
        self.class_name = class_name
        args = node.args
        ordered = list(getattr(args, "posonlyargs", [])) + list(args.args)
        #: positional parameter names, in order (incl. self/cls)
        self.params: List[str] = [a.arg for a in ordered] + [
            a.arg for a in args.kwonlyargs
        ]
        #: parameter names that carry a default value (may be omitted)
        defaulted = ordered[len(ordered) - len(args.defaults):]
        self.defaults: Set[str] = {a.arg for a in defaulted}
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                self.defaults.add(arg.arg)

    @property
    def name(self) -> str:
        return self.node.name

    def positional_params(self) -> List[str]:
        """Positional parameter names, skipping self/cls on methods."""
        params = [
            a.arg
            for a in (
                list(getattr(self.node.args, "posonlyargs", []))
                + list(self.node.args.args)
            )
        ]
        if self.class_name is not None and params and params[0] in (
            "self", "cls"
        ):
            return params[1:]
        return params


class CallSite:
    """One resolved (or deliberately unresolved) call expression."""

    __slots__ = ("node", "caller", "callees", "external")

    def __init__(
        self,
        node: ast.Call,
        caller: Optional[str],
        callees: Tuple[str, ...],
        external: bool,
    ) -> None:
        self.node = node
        self.caller = caller          #: qname of the enclosing function
        self.callees = callees        #: candidate callee qnames
        self.external = external      #: True when resolution gave up


def _iter_functions(
    module: ModuleSource,
) -> Iterator[Tuple[ast.AST, Optional[str]]]:
    """(function node, enclosing class name) pairs, outermost first."""
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            class_name = None
            for ancestor in module.ancestors(node):
                if isinstance(ancestor, ast.ClassDef):
                    class_name = ancestor.name
                    break
                if isinstance(
                    ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    break  # nested function: not a method
            yield node, class_name


def annotation_class(node: Optional[ast.expr]) -> Optional[str]:
    """Class name out of an annotation (handles strings and Optional[...])."""
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # forward reference: "GraphCsr" or "Optional[GraphCsr]"
        text = node.value.strip()
        if text.startswith("Optional[") and text.endswith("]"):
            text = text[len("Optional["):-1]
        tail = text.split(".")[-1].strip()
        return tail if tail.isidentifier() else None
    if isinstance(node, ast.Subscript):
        base = annotation_class(node.value)
        if base == "Optional":
            inner = node.slice
            if isinstance(inner, ast.Index):  # pragma: no cover - py<3.9
                inner = inner.value
            return annotation_class(inner)
    return None


class CallGraph:
    """The resolved call structure of one :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: qname -> FunctionInfo
        self.functions: Dict[str, FunctionInfo] = {}
        #: simple name -> qnames of module-level functions
        self._by_name: Dict[str, List[str]] = {}
        #: method name -> qnames across all classes
        self._methods: Dict[str, List[str]] = {}
        #: (rel_path, class name) -> {method name -> qname}
        self._class_methods: Dict[Tuple[str, str], Dict[str, str]] = {}
        #: class name -> base class names (project classes only)
        self._bases: Dict[str, List[str]] = {}
        #: function AST node -> qname (for enclosing-function lookups)
        self._node_qname: Dict[int, str] = {}
        self._node_info: Dict[int, FunctionInfo] = {}
        #: per-module import aliases: rel_path -> {local name -> source name}
        self._imports: Dict[str, Dict[str, str]] = {}
        #: qname -> its call sites
        self.calls_from: Dict[str, List[CallSite]] = {}
        #: module-level (no enclosing function) call sites per rel_path
        self.module_calls: Dict[str, List[CallSite]] = {}
        #: qname -> qnames of call sites that may invoke it
        self.callers_of: Dict[str, Set[str]] = {}

        self._index(project)
        for module in project.modules:
            self._resolve_module(module)

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def _index(self, project: Project) -> None:
        for module in project.modules:
            aliases: Dict[str, str] = {}
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ImportFrom):
                    for alias in node.names:
                        aliases[alias.asname or alias.name] = alias.name
                elif isinstance(node, ast.ClassDef):
                    self._bases.setdefault(node.name, []).extend(
                        base.id for base in node.bases
                        if isinstance(base, ast.Name)
                    )
            self._imports[module.rel_path] = aliases
            for node, class_name in _iter_functions(module):
                if class_name is None:
                    qname = f"{module.rel_path}::{node.name}"
                    self._by_name.setdefault(node.name, []).append(qname)
                else:
                    qname = f"{module.rel_path}::{class_name}.{node.name}"
                    self._methods.setdefault(node.name, []).append(qname)
                    self._class_methods.setdefault(
                        (module.rel_path, class_name), {}
                    )[node.name] = qname
                info = FunctionInfo(qname, module, node, class_name)
                # last definition wins (redefinitions are rare and benign)
                self.functions[qname] = info
                self._node_qname[id(node)] = qname
                self._node_info[id(node)] = info

    def info_for_node(self, node: ast.AST) -> Optional[FunctionInfo]:
        """The FunctionInfo of a function AST node, if indexed."""
        return self._node_info.get(id(node))

    def qname_of_node(self, node: ast.AST) -> Optional[str]:
        return self._node_qname.get(id(node))

    def enclosing_function(
        self, module: ModuleSource, node: ast.AST
    ) -> Optional[str]:
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return self._node_qname.get(id(ancestor))
        return None

    def class_method(self, class_name: str, method: str) -> Optional[str]:
        """Resolve ``ClassName.method`` walking project-local bases."""
        seen: Set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            for (_, cls), methods in self._class_methods.items():
                if cls == current and method in methods:
                    return methods[method]
            queue.extend(self._bases.get(current, []))
        return None

    def is_project_class(self, name: str) -> bool:
        return any(cls == name for (_, cls) in self._class_methods) or (
            name in self._bases
        )

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def _receiver_classes(
        self,
        module: ModuleSource,
        func_node: Optional[ast.AST],
        receiver: ast.expr,
    ) -> List[str]:
        """Candidate class names for the receiver of ``recv.m(...)``."""
        if isinstance(receiver, ast.Call):
            name = receiver.func
            if isinstance(name, ast.Name) and self.is_project_class(name.id):
                return [name.id]
            if isinstance(name, ast.Attribute) and self.is_project_class(
                name.attr
            ):
                return [name.attr]
            return []
        if not isinstance(receiver, ast.Name) or func_node is None:
            return []
        target = receiver.id
        classes: List[str] = []
        args = getattr(func_node, "args", None)
        if args is not None:
            for arg in (list(getattr(args, "posonlyargs", []))
                        + list(args.args) + list(args.kwonlyargs)):
                if arg.arg == target:
                    cls = annotation_class(arg.annotation)
                    if cls is not None and self.is_project_class(cls):
                        classes.append(cls)
        for node in ast.walk(func_node):
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                if (isinstance(node.targets[0], ast.Name)
                        and node.targets[0].id == target):
                    value = node.value
            elif isinstance(node, ast.AnnAssign):
                if (isinstance(node.target, ast.Name)
                        and node.target.id == target):
                    cls = annotation_class(node.annotation)
                    if cls is not None and self.is_project_class(cls):
                        classes.append(cls)
                    value = node.value
            if isinstance(value, ast.Call):
                name = value.func
                if (isinstance(name, ast.Name)
                        and self.is_project_class(name.id)):
                    classes.append(name.id)
                elif (isinstance(name, ast.Attribute)
                      and name.attr == "__new__"
                      and isinstance(name.value, ast.Name)
                      and self.is_project_class(name.value.id)):
                    classes.append(name.value.id)
        return classes

    def _resolve_call(
        self,
        module: ModuleSource,
        func_node: Optional[ast.AST],
        node: ast.Call,
    ) -> Tuple[Tuple[str, ...], bool]:
        func = node.func
        if isinstance(func, ast.Name):
            name = self._imports[module.rel_path].get(func.id, func.id)
            local = f"{module.rel_path}::{name}"
            if local in self.functions:
                return (local,), False
            # constructor call: dispatch to the class's __init__ if any
            if self.is_project_class(name):
                init = self.class_method(name, "__init__")
                return ((init,), False) if init else ((), False)
            candidates = self._by_name.get(name, [])
            if candidates:
                return tuple(candidates), False
            return (), True
        if isinstance(func, ast.Attribute):
            method = func.attr
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id in (
                "self", "cls"
            ):
                for ancestor in (
                    module.ancestors(node) if func_node is not None else ()
                ):
                    if isinstance(ancestor, ast.ClassDef):
                        resolved = self.class_method(ancestor.name, method)
                        if resolved is not None:
                            return (resolved,), False
                        break
            for cls in self._receiver_classes(module, func_node, receiver):
                resolved = self.class_method(cls, method)
                if resolved is not None:
                    return (resolved,), False
            # module-qualified helper call: shm.attach_shared_csr(...)
            if isinstance(receiver, ast.Name):
                for qname in self._by_name.get(method, ()):
                    if qname.split("::")[0].endswith(f"{receiver.id}.py"):
                        return (qname,), False
            candidates = self._methods.get(method, [])
            if candidates:
                # unknown receiver class: every project method of the name
                return tuple(candidates), True
            if self._by_name.get(method):
                return tuple(self._by_name[method]), True
            return (), True
        return (), True

    def _resolve_module(self, module: ModuleSource) -> None:
        for func_node, _class in _iter_functions(module):
            qname = self._node_qname[id(func_node)]
            sites: List[CallSite] = []
            for node in ast.walk(func_node):
                if not isinstance(node, ast.Call):
                    continue
                # skip calls belonging to a nested function (they get
                # their own entry)
                owner = self.enclosing_function(module, node)
                if owner != qname:
                    continue
                callees, external = self._resolve_call(
                    module, func_node, node
                )
                site = CallSite(node, qname, callees, external)
                sites.append(site)
                for callee in callees:
                    self.callers_of.setdefault(callee, set()).add(qname)
            self.calls_from[qname] = sites
        module_sites: List[CallSite] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and self.enclosing_function(
                module, node
            ) is None:
                callees, external = self._resolve_call(module, None, node)
                module_sites.append(CallSite(node, None, callees, external))
        self.module_calls[module.rel_path] = module_sites

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def resolve_name(
        self, module: ModuleSource, name: str
    ) -> Tuple[str, ...]:
        """Qnames a bare function name denotes when used from ``module``.

        The same module-local → import-alias → unique-project-name
        cascade call resolution uses, for rules that meet function
        *references* (``pool.submit(worker, ...)``) rather than calls.
        """
        target = self._imports.get(module.rel_path, {}).get(name, name)
        local = f"{module.rel_path}::{target}"
        if local in self.functions:
            return (local,)
        return tuple(self._by_name.get(target, ()))

    def reachable_from(self, roots: Set[str]) -> Set[str]:
        """Transitive callee closure of ``roots`` (roots included)."""
        seen: Set[str] = set()
        queue = [q for q in roots if q in self.functions]
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            for site in self.calls_from.get(current, ()):
                queue.extend(
                    c for c in site.callees
                    if c in self.functions and c not in seen
                )
        return seen


def callgraph_of(project: Project) -> CallGraph:
    """The project's call graph, built once and memoized on the project."""
    graph = project.cache.get("callgraph")
    if graph is None:
        graph = CallGraph(project)
        project.cache["callgraph"] = graph
    return graph
