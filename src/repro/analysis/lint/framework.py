"""Core machinery of ``repro lint`` — the project-specific AST checker.

The codebase deliberately maintains two semantically-identical
implementations of every hot path (the dict visitor walk and the CSR
array kernels), threads a growing :class:`~repro.core.pipeline.PipelineOptions`
through half a dozen driver modules, and promises zero tracing overhead
when no tracer is attached.  Each of those properties has been broken
before by an innocent-looking edit; this module checks them mechanically.

Pieces:

* :class:`Violation` — one finding (rule id, file, line, message, the
  offending source line).
* :class:`Rule` — base class; subclasses implement either
  :meth:`Rule.check_module` (per-file AST pass) or
  :meth:`Rule.check_project` (cross-file invariants).
* :class:`Project` — the parsed file set handed to rules: every
  ``*.py`` under the scanned root, with source text, AST, and parent
  maps precomputed once.
* :class:`Baseline` — the committed debt ledger.  Entries are matched by
  ``(rule, path, normalized source line)`` — not line numbers — so
  unrelated edits don't invalidate the baseline, while any change to a
  baselined line resurfaces its violation.
* :func:`run_lint` — discovery + rules + suppression + baseline, one
  call.

Suppression: append ``# repro-lint: ignore[R3]`` (or a comma-separated
list, or no bracket for all rules) to the offending line or place it
alone on the line directly above.  For a multi-line statement the
comment may sit on the statement's *first* line (or alone above it) and
covers violations anchored to any of its continuation lines.

Rules come in two tiers: the per-file AST rules (R1–R8) always run;
rules marked ``deep = True`` (R9–R13, the interprocedural call-graph /
CFG / dataflow pass behind ``repro analyze``) join only when
``run_lint(..., deep=True)`` or an explicit ``rule_ids`` selects them.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Baseline",
    "LintReport",
    "ModuleSource",
    "Project",
    "Rule",
    "Violation",
    "all_rules",
    "register_rule",
    "rule_sort_key",
    "run_lint",
]

#: modules holding the performance-critical kernels; several rules apply
#: only here (matching by file name keeps fixture suites trivial to write)
HOT_MODULE_BASENAMES = frozenset(
    {"lcc.py", "nlcc.py", "arraystate.py", "kernels.py"}
)

#: the driver set every PipelineOptions field must be threaded through
DRIVER_BASENAMES = frozenset(
    {"search.py", "pipeline.py", "topdown.py", "restart.py", "parallel.py",
     "naive.py"}
)

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


@dataclass(frozen=True)
class Violation:
    """One lint finding."""

    rule: str
    path: str          #: path relative to the scanned root (posix)
    line: int          #: 1-based line number
    col: int           #: 0-based column
    message: str
    snippet: str       #: stripped source line the finding anchors to

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across pure line-number churn."""
        return (self.rule, self.path, self.snippet)

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


class ModuleSource:
    """One parsed python file plus the lookups rules keep needing."""

    def __init__(self, root: Path, path: Path) -> None:
        self.path = path
        self.rel_path = path.relative_to(root).as_posix()
        self.basename = path.name
        self.text = path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self.tree = ast.parse(self.text, filename=str(path))
        #: child AST node -> parent AST node, for ancestor walks
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        #: line -> first line of the innermost statement spanning it, so a
        #: suppression comment on a multi-line call's first line covers
        #: violations anchored to its continuation lines
        self.stmt_start: Dict[int, int] = {}
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt):
                continue
            end = getattr(node, "end_lineno", None) or node.lineno
            for lineno in range(node.lineno, end + 1):
                # later statement starts are innermost (body statements of
                # a compound statement re-map their own lines)
                current = self.stmt_start.get(lineno, 0)
                if node.lineno > current:
                    self.stmt_start[lineno] = node.lineno

    # ------------------------------------------------------------------
    @property
    def is_hot(self) -> bool:
        return self.basename in HOT_MODULE_BASENAMES

    @property
    def is_driver(self) -> bool:
        return self.basename in DRIVER_BASENAMES

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def violation(
        self, rule: "Rule", node: ast.AST, message: str
    ) -> Violation:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Violation(
            rule=rule.id,
            path=self.rel_path,
            line=lineno,
            col=col,
            message=message,
            snippet=self.source_line(lineno),
        )

    def suppressed_rules(self, lineno: int) -> Optional[frozenset]:
        """Rules suppressed at ``lineno``; empty frozenset = all rules.

        Returns ``None`` when no suppression comment applies.  Accepted
        placements: trailing on the line itself, alone on the line
        directly above, and — for violations anchored to a continuation
        line of a multi-line statement — trailing on the statement's
        first line or alone directly above it.
        """
        start = self.stmt_start.get(lineno, lineno)
        #: (line to inspect, whether a trailing comment counts there)
        candidates = [(lineno, True), (lineno - 1, False)]
        if start != lineno:
            candidates += [(start, True), (start - 1, False)]
        for candidate, trailing_ok in candidates:
            if not (1 <= candidate <= len(self.lines)):
                continue
            text = self.lines[candidate - 1]
            if not trailing_ok and not text.lstrip().startswith("#"):
                continue
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                return frozenset()
            return frozenset(
                part.strip().upper() for part in rules.split(",") if part.strip()
            )
        return None

    def is_suppressed(self, violation: Violation) -> bool:
        rules = self.suppressed_rules(violation.line)
        if rules is None:
            return False
        return not rules or violation.rule in rules


class Project:
    """The scanned file set, parsed once and shared by every rule."""

    def __init__(self, root: Path, modules: Sequence[ModuleSource]) -> None:
        self.root = root
        self.modules = list(modules)
        self.by_rel_path = {m.rel_path: m for m in self.modules}
        #: shared per-project analysis artifacts (call graph, effect
        #: summaries) memoized across the deep rules — built once per run
        self.cache: Dict[str, object] = {}

    @classmethod
    def load(
        cls, root: Path, paths: Optional[Sequence[Path]] = None
    ) -> "Project":
        """Parse ``root`` (or an explicit file list) into a project.

        Files that fail to parse are skipped with a synthetic ``parse``
        violation recorded on the project (surfaced by the runner) —
        a lint tool must never crash on the code it inspects.
        """
        root = root.resolve()
        if paths is None:
            paths = sorted(p for p in root.rglob("*.py"))
        modules = []
        errors: List[Violation] = []
        for path in paths:
            path = path.resolve()
            try:
                modules.append(ModuleSource(root, path))
            except (SyntaxError, UnicodeDecodeError) as error:
                rel = path.relative_to(root).as_posix()
                errors.append(Violation(
                    rule="parse",
                    path=rel,
                    line=getattr(error, "lineno", 1) or 1,
                    col=0,
                    message=f"cannot parse: {error}",
                    snippet="",
                ))
        project = cls(root, modules)
        project.parse_errors = errors
        return project

    parse_errors: List[Violation] = []


class Rule:
    """One named invariant.  Subclasses set ``id``/``title``/``rationale``
    and implement :meth:`check_module` or :meth:`check_project`."""

    id: str = ""
    title: str = ""
    #: one-line statement of the historical bug class motivating the rule
    rationale: str = ""
    #: restrict the per-module pass to the hot kernel modules
    hot_modules_only: bool = False
    #: interprocedural rules (call graph / CFG / dataflow) run only under
    #: ``repro analyze`` / ``repro lint --deep`` or an explicit --rule
    deep: bool = False
    #: the enforced contract, printed by ``repro lint --explain`` (falls
    #: back to the class docstring when empty)
    contract: str = ""
    #: minimal failing / corrected snippet pair for ``--explain``
    example_bad: str = ""
    example_good: str = ""

    def check_project(self, project: Project) -> Iterator[Violation]:
        for module in project.modules:
            if self.hot_modules_only and not module.is_hot:
                continue
            yield from self.check_module(project, module)

    def check_module(
        self, project: Project, module: ModuleSource
    ) -> Iterator[Violation]:
        return iter(())


_REGISTRY: Dict[str, Rule] = {}


def register_rule(rule_cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> Dict[str, Rule]:
    """The registry (importing the rule modules populates it)."""
    from . import deep_rules, rules  # noqa: F401  (registration side effect)

    return dict(_REGISTRY)


def rule_sort_key(rule_id: str) -> Tuple[int, str]:
    """Natural order for rule ids: R2 before R10 (lexicographic fails)."""
    digits = "".join(ch for ch in rule_id if ch.isdigit())
    return (int(digits) if digits else 0, rule_id)


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
class Baseline:
    """The committed ledger of accepted pre-existing violations.

    Stored as JSON; each entry carries a count so several identical
    lines in one file stay distinguishable.  Matching consumes counts:
    if a file gains a *new* copy of an already-baselined line, the
    extra copy is reported.
    """

    VERSION = 1

    def __init__(self, entries: Optional[Dict[Tuple[str, str, str], int]] = None
                 ) -> None:
        self.entries: Dict[Tuple[str, str, str], int] = dict(entries or {})

    @classmethod
    def from_violations(cls, violations: Iterable[Violation]) -> "Baseline":
        baseline = cls()
        for violation in violations:
            key = violation.key()
            baseline.entries[key] = baseline.entries.get(key, 0) + 1
        return baseline

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        document = json.loads(Path(path).read_text(encoding="utf-8"))
        if document.get("version") != cls.VERSION:
            raise ValueError(
                f"unsupported baseline version {document.get('version')!r}"
            )
        entries: Dict[Tuple[str, str, str], int] = {}
        for entry in document.get("entries", ()):
            key = (entry["rule"], entry["path"], entry["snippet"])
            entries[key] = entries.get(key, 0) + int(entry.get("count", 1))
        return cls(entries)

    def save(self, path: Path) -> None:
        entries = [
            {"rule": rule, "path": rel, "snippet": snippet, "count": count}
            for (rule, rel, snippet), count in sorted(self.entries.items())
        ]
        document = {"version": self.VERSION, "entries": entries}
        # sort_keys on top of the sorted entry list: byte-stable output,
        # so regenerating the baseline produces reviewable diffs
        Path(path).write_text(
            json.dumps(document, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def split(
        self, violations: Sequence[Violation]
    ) -> Tuple[List[Violation], List[Violation]]:
        """Partition into (new, baselined) consuming entry counts."""
        remaining = dict(self.entries)
        fresh: List[Violation] = []
        known: List[Violation] = []
        for violation in violations:
            key = violation.key()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                known.append(violation)
            else:
                fresh.append(violation)
        return fresh, known


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Everything one lint run produced."""

    root: str
    violations: List[Violation] = field(default_factory=list)
    baselined: List[Violation] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def to_json(self) -> Dict[str, object]:
        by_rule: Dict[str, int] = {}
        for violation in self.violations:
            by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
        return {
            "root": self.root,
            "files_checked": self.files_checked,
            "rules_run": list(self.rules_run),
            "violations": [v.to_json() for v in self.violations],
            "baselined": [v.to_json() for v in self.baselined],
            "suppressed": self.suppressed,
            "summary": {
                "new": len(self.violations),
                "baselined": len(self.baselined),
                "by_rule": by_rule,
            },
        }


def run_lint(
    root: Path,
    rule_ids: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    paths: Optional[Sequence[Path]] = None,
    deep: bool = False,
) -> LintReport:
    """Check every python file under ``root`` against the registered rules.

    ``rule_ids`` restricts the pass; ``baseline`` partitions findings
    into new vs accepted.  Suppression comments are honored before the
    baseline is consulted.  ``deep=True`` adds the interprocedural rules
    (``Rule.deep``) to the default set; an explicit ``rule_ids`` always
    runs exactly what it names.
    """
    registry = all_rules()
    if rule_ids:
        unknown = [r for r in rule_ids if r not in registry]
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(registry, key=rule_sort_key))}"
            )
        rules = [registry[r] for r in rule_ids]
    else:
        rules = [
            registry[r] for r in sorted(registry, key=rule_sort_key)
            if deep or not registry[r].deep
        ]

    project = Project.load(Path(root), paths=paths)
    found: List[Violation] = list(project.parse_errors)
    suppressed = 0
    for rule in rules:
        for violation in rule.check_project(project):
            module = project.by_rel_path.get(violation.path)
            if module is not None and module.is_suppressed(violation):
                suppressed += 1
                continue
            found.append(violation)
    found.sort(key=lambda v: (v.path, v.line, v.rule, v.col))

    if baseline is not None:
        fresh, known = baseline.split(found)
    else:
        fresh, known = found, []
    return LintReport(
        root=str(project.root),
        violations=fresh,
        baselined=known,
        suppressed=suppressed,
        files_checked=len(project.modules),
        rules_run=[rule.id for rule in rules],
    )
