"""The project-specific rules behind ``repro lint``.

Each rule is motivated by a bug class this codebase has actually hit
(see docs/INTERNALS.md §11 for the full write-ups):

* **R1** ``optional-int-truthiness`` — ``if x:`` on int / Optional[int]
  option and counter fields conflates 0 with None/absent (the
  ``reload_ranks=0`` bug of the kernels PR).
* **R2** ``options-threading`` — a new :class:`PipelineOptions` field is
  easy to define and forget in one of the six driver modules, silently
  reverting the option for that execution path (as ``array_nlcc``
  initially was for pooled workers).
* **R3** ``tracer-guard`` — span/counter bookkeeping in the hot kernel
  modules must sit behind a ``tracer.enabled`` check so untraced runs
  stay zero-overhead.
* **R4** ``fallback-parity`` — every array fast-path dispatch must keep
  a reachable dict fallback branch next to it (the array kernels step
  aside when the role kernel is off rather than fail), and the array
  branch itself must route enumeration through
  ``enumerate_matches_array`` — a dict ``enumerate_matches`` call there
  silently re-pays the per-vertex backtracker the array path replaced.
* **R5** ``hot-loop-hygiene`` — per-element Python loops over CSR
  arrays, ``np.append`` inside loops, and object-dtype arrays undo the
  vectorization the hot modules exist for.
* **R6** ``shared-memory-lifecycle`` — ``SharedMemory(...)`` built
  outside the ``runtime/shm.py`` wrapper bypasses the owner/attach
  registry and its atexit sweep, leaking ``/dev/shm`` segments on
  crashed runs.
* **R7** ``batched-template-execution`` — a ``for`` loop calling
  ``run_pipeline`` once per template recomputes kernels, prototypes and
  the ``M*`` traversal from scratch every iteration; multi-template
  work belongs in the ``core/batch.py`` executor.
* **R8** ``metric-accumulation`` — hot-module cache/metric counting via
  ad-hoc ``stats["hits"] += 1`` dicts (or bare attribute counters) never
  reaches the always-on :class:`MetricsRegistry`, so the numbers are
  invisible to ``repro metrics``, cross-process merging and the adaptive
  consumers; updates must go through registry counter handles.

All rules are pure AST passes — no imports of the checked code, so the
linter runs on any snapshot of the tree, broken or not.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .framework import ModuleSource, Project, Rule, Violation, register_rule

__all__ = [
    "BatchedTemplateExecutionRule",
    "FallbackParityRule",
    "HotLoopHygieneRule",
    "MetricAccumulationRule",
    "OptionalIntTruthinessRule",
    "OptionsThreadingRule",
    "SharedMemoryLifecycleRule",
    "TracerGuardRule",
]


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
def _annotation_is_int(node: Optional[ast.expr]) -> Optional[str]:
    """Classify an annotation as ``"int"`` / ``"optional_int"`` / None."""
    if node is None:
        return None
    if isinstance(node, ast.Name) and node.id == "int":
        return "int"
    if isinstance(node, ast.Constant) and node.value in ("int", "Optional[int]"):
        return "int" if node.value == "int" else "optional_int"
    if isinstance(node, ast.Subscript):
        base = node.value
        if isinstance(base, ast.Name) and base.id == "Optional":
            if _annotation_is_int(_subscript_slice(node)) == "int":
                return "optional_int"
        if isinstance(base, ast.Attribute) and base.attr == "Optional":
            if _annotation_is_int(_subscript_slice(node)) == "int":
                return "optional_int"
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # PEP 604 ``int | None``
        parts = {_expr_label(node.left), _expr_label(node.right)}
        if parts == {"int", "None"}:
            return "optional_int"
    return None


def _subscript_slice(node: ast.Subscript) -> ast.expr:
    inner = node.slice
    if isinstance(inner, ast.Index):  # pragma: no cover - py<3.9 form
        inner = inner.value
    return inner


def _expr_label(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and node.value is None:
        return "None"
    return "?"


def _call_name(node: ast.Call) -> str:
    """Trailing name of the called expression: ``a.b.c(...)`` → ``c``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _enclosing_function(
    module: ModuleSource, node: ast.AST
) -> Optional[ast.AST]:
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


# ----------------------------------------------------------------------
# R1 — optional-int truthiness
# ----------------------------------------------------------------------
@register_rule
class OptionalIntTruthinessRule(Rule):
    """``if x:`` on an int/Optional[int] option, counter, or parameter.

    0 is falsy: ``if options.reload_ranks:`` silently treats a requested
    0-rank reload like "no reload", and ``options.reload_ranks or
    default`` drops an explicit 0.  Both must spell the intent:
    ``is not None`` (presence) or an explicit comparison (magnitude).

    Checked in every position the value is actually truth-tested: ``if``
    / ``while`` / ternary / ``assert`` tests, comprehension filters,
    ``not``, and the short-circuited (non-final) operands of ``and`` /
    ``or`` — the final operand of a value-position ``x or default`` is
    the result, not a test, and stays legal.
    """

    id = "R1"
    title = "optional-int truthiness"
    rationale = (
        "the reload_ranks=0 bug: truthiness conflated 'set to zero' with "
        "'not set'"
    )

    #: class-name suffixes whose int-ish fields are collected project-wide
    _CLASS_SUFFIXES = ("Options", "Outcome", "Result", "Report", "Stats")

    #: always-on field names (keeps fixtures and external callers honest
    #: even when the defining class is outside the scanned root)
    _SEED_FIELDS: Dict[str, str] = {
        "reload_ranks": "optional_int",
        "delegate_degree_threshold": "optional_int",
        "max_prototypes": "optional_int",
        "match_mappings": "optional_int",
        "distinct_matches": "optional_int",
    }

    def check_project(self, project: Project) -> Iterator[Violation]:
        fields = dict(self._SEED_FIELDS)
        for module in project.modules:
            fields.update(self._collect_fields(module))
        for module in project.modules:
            yield from self._check_truthiness(module, fields)

    # ------------------------------------------------------------------
    def _collect_fields(self, module: ModuleSource) -> Dict[str, str]:
        """int / Optional[int] attribute names from option/result classes."""
        fields: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith(self._CLASS_SUFFIXES):
                continue
            for stmt in ast.walk(node):
                kind = None
                name = None
                if isinstance(stmt, ast.AnnAssign):
                    kind = _annotation_is_int(stmt.annotation)
                    target = stmt.target
                    if isinstance(target, ast.Name):
                        name = target.id
                    elif (isinstance(target, ast.Attribute)
                          and isinstance(target.value, ast.Name)
                          and target.value.id == "self"):
                        name = target.attr
                elif (isinstance(stmt, ast.Assign)
                      and len(stmt.targets) == 1
                      and isinstance(stmt.targets[0], ast.Attribute)
                      and isinstance(stmt.targets[0].value, ast.Name)
                      and stmt.targets[0].value.id == "self"
                      and isinstance(stmt.value, ast.Constant)
                      and type(stmt.value.value) is int):
                    kind = "int"
                    name = stmt.targets[0].attr
                if kind is not None and name is not None:
                    fields[name] = kind
        return fields

    @staticmethod
    def _param_int_kinds(func: ast.AST) -> Dict[str, str]:
        """int/Optional[int]-annotated parameter and local names."""
        kinds: Dict[str, str] = {}
        args = getattr(func, "args", None)
        if args is not None:
            for arg in (list(getattr(args, "posonlyargs", []))
                        + list(args.args) + list(args.kwonlyargs)):
                kind = _annotation_is_int(arg.annotation)
                if kind is not None:
                    kinds[arg.arg] = kind
        for node in ast.walk(func):
            if (isinstance(node, ast.AnnAssign)
                    and isinstance(node.target, ast.Name)):
                kind = _annotation_is_int(node.annotation)
                if kind is not None:
                    kinds[node.target.id] = kind
        return kinds

    def _check_truthiness(
        self, module: ModuleSource, fields: Dict[str, str]
    ) -> Iterator[Violation]:
        param_kinds: Dict[ast.AST, Dict[str, str]] = {}
        seen: Set[int] = set()
        for node in ast.walk(module.tree):
            for root in self._truth_roots(node):
                for leaf in self._expand(root):
                    if id(leaf) in seen:
                        continue
                    seen.add(id(leaf))
                    violation = self._leaf_violation(
                        module, leaf, fields, param_kinds
                    )
                    if violation is not None:
                        yield violation

    def _leaf_violation(
        self,
        module: ModuleSource,
        leaf: ast.expr,
        fields: Dict[str, str],
        param_kinds: Dict[ast.AST, Dict[str, str]],
    ) -> Optional[Violation]:
        kind = None
        label = ""
        if isinstance(leaf, ast.Attribute):
            kind = fields.get(leaf.attr)
            label = f"field `.{leaf.attr}`"
        elif isinstance(leaf, ast.Name):
            func = _enclosing_function(module, leaf)
            if func is not None:
                if func not in param_kinds:
                    param_kinds[func] = self._param_int_kinds(func)
                kind = param_kinds[func].get(leaf.id)
                label = f"`{leaf.id}`"
        if kind is None:
            return None
        wanted = (
            "`is not None` or an explicit compare"
            if kind == "optional_int"
            else "an explicit compare (e.g. `> 0`)"
        )
        return module.violation(
            self,
            leaf,
            f"truthiness test on {kind.replace('_', ' ')} {label}; "
            f"use {wanted}",
        )

    @staticmethod
    def _truth_roots(node: ast.AST) -> Iterator[ast.expr]:
        """Expressions ``node`` itself evaluates for truth."""
        if isinstance(node, (ast.If, ast.While, ast.IfExp)):
            yield node.test
        elif isinstance(node, ast.Assert):
            yield node.test
        elif isinstance(node, ast.comprehension):
            yield from node.ifs
        elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            yield node.operand
        elif isinstance(node, ast.BoolOp):
            # short-circuiting truth-tests every operand except the last;
            # the last is the expression's *value* (`x or default`), and
            # is tested only when an enclosing truth context covers the
            # whole BoolOp (handled by _expand from that root)
            yield from node.values[:-1]

    @classmethod
    def _expand(cls, root: ast.expr) -> Iterator[ast.expr]:
        """Atoms of ``root`` that are bare truthiness tests."""
        if isinstance(root, ast.BoolOp):
            for value in root.values:
                yield from cls._expand(value)
        elif isinstance(root, ast.UnaryOp) and isinstance(root.op, ast.Not):
            yield from cls._expand(root.operand)
        else:
            yield root


# ----------------------------------------------------------------------
# R2 — options threading parity
# ----------------------------------------------------------------------
@register_rule
class OptionsThreadingRule(Rule):
    """Every ``PipelineOptions`` field must actually reach the drivers.

    Two checks:

    1. every field declared on the ``PipelineOptions`` dataclass is read
       (``something.field``) in at least one driver module outside the
       dataclass body itself — a field nobody consumes is a silently
       dead knob;
    2. the ``search_prototype(...)`` call sites across the drivers agree
       on the option keywords they forward (modulo per-site arguments),
       so a flag threaded into the in-process path cannot silently stay
       off in the pooled-worker path.
    """

    id = "R2"
    title = "options-threading parity"
    rationale = (
        "new PipelineOptions flags were silently dropped on some driver "
        "paths (array_nlcc initially defaulted off in pooled workers)"
    )

    #: keywords legitimately differing between search_prototype call
    #: sites: per-call state, caches, and features rejected by
    #: PipelineOptions.__post_init__ for that execution mode
    _SITE_SPECIFIC = frozenset(
        {"cache", "recycle", "array_scope", "warm_mask", "collect_matches"}
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        drivers = [m for m in project.modules if m.is_driver]
        options = self._find_options_class(project)
        if options is not None:
            yield from self._check_consumption(project, drivers, *options)
        yield from self._check_call_parity(drivers)

    # ------------------------------------------------------------------
    def _find_options_class(
        self, project: Project
    ) -> Optional[Tuple[ModuleSource, ast.ClassDef]]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and node.name == "PipelineOptions":
                    return module, node
        return None

    def _check_consumption(
        self,
        project: Project,
        drivers: List[ModuleSource],
        options_module: ModuleSource,
        options_class: ast.ClassDef,
    ) -> Iterator[Violation]:
        fields = {}
        for stmt in options_class.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                fields[stmt.target.id] = stmt
        if not fields:
            return
        class_lines = range(
            options_class.lineno,
            (options_class.end_lineno or options_class.lineno) + 1,
        )
        consumed: Set[str] = set()
        for module in drivers:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Attribute) and node.attr in fields:
                    if (module is options_module
                            and node.lineno in class_lines):
                        continue  # the dataclass body / __post_init__
                    consumed.add(node.attr)
        for name, stmt in fields.items():
            if name not in consumed:
                yield options_module.violation(
                    self,
                    stmt,
                    f"PipelineOptions.{name} is never read in any driver "
                    f"module (search/pipeline/topdown/restart/parallel/"
                    f"naive) — dead or dropped option",
                )

    def _check_call_parity(
        self, drivers: List[ModuleSource]
    ) -> Iterator[Violation]:
        sites: List[Tuple[ModuleSource, ast.Call, Set[str]]] = []
        for module in drivers:
            for node in ast.walk(module.tree):
                if (isinstance(node, ast.Call)
                        and _call_name(node) == "search_prototype"):
                    keywords = {
                        kw.arg for kw in node.keywords if kw.arg is not None
                    }
                    sites.append((module, node, keywords))
        if len(sites) < 2:
            return
        union: Set[str] = set()
        for _, _, keywords in sites:
            union |= keywords
        required = union - self._SITE_SPECIFIC
        for module, node, keywords in sites:
            missing = sorted(required - keywords)
            if missing:
                yield module.violation(
                    self,
                    node,
                    "search_prototype call drops option keyword(s) other "
                    f"driver sites forward: {', '.join(missing)}",
                )


# ----------------------------------------------------------------------
# R3 — tracer zero-overhead guard
# ----------------------------------------------------------------------
@register_rule
class TracerGuardRule(Rule):
    """Span counter calls in hot modules must be ``enabled``-guarded.

    The tracing contract is one attribute check per guarded site when
    tracing is off.  A bare ``span.add(vertices_pruned=before - after)``
    evaluates its (often O(V)) arguments on every untraced run.
    """

    id = "R3"
    title = "tracer zero-overhead"
    rationale = (
        "counter computation (active_counts() diffs etc.) silently ran on "
        "untraced hot paths until guarded behind tracer.enabled"
    )
    hot_modules_only = True

    _COUNTER_METHODS = frozenset({"add", "record_span"})

    def check_module(
        self, project: Project, module: ModuleSource
    ) -> Iterator[Violation]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            span_names, guard_names = self._span_and_guard_names(func)
            if not span_names:
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                func_expr = node.func
                if not (isinstance(func_expr, ast.Attribute)
                        and func_expr.attr in self._COUNTER_METHODS):
                    continue
                receiver = func_expr.value
                if not (isinstance(receiver, ast.Name)
                        and receiver.id in span_names):
                    continue
                if self._is_guarded(module, node, guard_names, func):
                    continue
                yield module.violation(
                    self,
                    node,
                    f"unguarded `{receiver.id}.{func_expr.attr}(...)` in hot "
                    f"module; wrap in `if tracer.enabled:` (or a variable "
                    f"assigned from it) so untraced runs skip the counter "
                    f"computation",
                )

    # ------------------------------------------------------------------
    def _span_and_guard_names(
        self, func: ast.AST
    ) -> Tuple[Set[str], Set[str]]:
        """Names bound to spans/tracers and to enabled-flags in ``func``."""
        span_names: Set[str] = set()
        guard_names: Set[str] = set()
        args = getattr(func, "args", None)
        if args is not None:
            for arg in list(args.args) + list(args.kwonlyargs):
                if arg.arg == "tracer":
                    span_names.add(arg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                value = node.value
                if isinstance(value, ast.Attribute):
                    if value.attr == "tracer":
                        span_names.add(target.id)
                    elif value.attr == "enabled":
                        guard_names.add(target.id)
                elif isinstance(value, ast.Call):
                    name = _call_name(value)
                    if name in ("span", "Tracer"):
                        span_names.add(target.id)
                elif (isinstance(value, ast.IfExp)
                      and isinstance(value.body, ast.Call)
                      and _call_name(value.body) in ("Tracer",)):
                    span_names.add(target.id)
            elif isinstance(node, ast.With):
                for item in node.items:
                    ctx = item.context_expr
                    if (item.optional_vars is not None
                            and isinstance(item.optional_vars, ast.Name)
                            and isinstance(ctx, ast.Call)
                            and _call_name(ctx) == "span"):
                        span_names.add(item.optional_vars.id)
        return span_names, guard_names

    def _is_guarded(
        self,
        module: ModuleSource,
        node: ast.AST,
        guard_names: Set[str],
        func: ast.AST,
    ) -> bool:
        for ancestor in module.ancestors(node):
            if ancestor is func:
                break
            if isinstance(ancestor, (ast.If, ast.IfExp)) and self._test_guards(
                ancestor.test, guard_names
            ):
                return True
        return False

    @staticmethod
    def _test_guards(test: ast.expr, guard_names: Set[str]) -> bool:
        for sub in ast.walk(test):
            if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
                return True
            if isinstance(sub, ast.Name) and sub.id in guard_names:
                return True
        return False


# ----------------------------------------------------------------------
# R4 — array fast-path fallback parity
# ----------------------------------------------------------------------
@register_rule
class FallbackParityRule(Rule):
    """Array-dispatch ``if``s must keep a reachable dict fallback.

    A dispatch site counts as any ``if`` testing ``array_state`` /
    ``array_nlcc`` (names, attributes or keywords-into-flags) or calling
    ``supports_array_fixpoint``.  The fallback is reachable when the
    ``if`` has an ``else``/``elif`` branch, or its body leaves the
    function (return/raise/continue/break) with further statements
    following in the same block.

    Second check: on the *array* side of a dispatch (an ``if`` testing a
    dispatch flag or an array-state name like ``astate``), enumeration
    must go through ``enumerate_matches_array`` — a dict
    ``enumerate_matches`` call there drops back to the per-vertex
    backtracker while holding a live array state, defeating the takeover
    the dispatch exists for.  Dict calls in the ``else`` branch are the
    fallback and stay legal.
    """

    id = "R4"
    title = "fallback parity"
    rationale = (
        "the array kernels must step aside (role kernel off) rather than "
        "fail, and the array branch must not quietly re-enter the dict "
        "backtracker it replaced"
    )

    _FLAG_NAMES = frozenset({"array_state", "array_nlcc"})
    _DISPATCH_CALLS = frozenset({"supports_array_fixpoint"})
    #: array-side state names: an ``if`` testing one of these selects the
    #: array branch, where only the array enumerator may run
    _ARRAY_STATE_NAMES = frozenset({"astate", "array_scope"})
    _DICT_ENUMERATOR = "enumerate_matches"
    _TERMINAL = (ast.Return, ast.Raise, ast.Continue, ast.Break)

    def check_module(
        self, project: Project, module: ModuleSource
    ) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.If):
                continue
            if self._is_array_branch_test(node.test):
                yield from self._check_enum_bypass(module, node)
            if not self._is_dispatch_test(node.test):
                continue
            if node.orelse:
                continue
            if self._body_exits_with_following_code(module, node):
                continue
            yield module.violation(
                self,
                node,
                "array fast-path dispatch without a reachable dict fallback "
                "branch (no else, and the body does not return into "
                "fallback code)",
            )

    def _is_dispatch_test(self, test: ast.expr) -> bool:
        for sub in ast.walk(test):
            if isinstance(sub, ast.Name) and sub.id in self._FLAG_NAMES:
                return True
            if isinstance(sub, ast.Attribute) and sub.attr in self._FLAG_NAMES:
                return True
            if (isinstance(sub, ast.Call)
                    and _call_name(sub) in self._DISPATCH_CALLS):
                return True
        return False

    def _is_array_branch_test(self, test: ast.expr) -> bool:
        if self._is_dispatch_test(test):
            return True
        for sub in ast.walk(test):
            if (isinstance(sub, ast.Name)
                    and sub.id in self._ARRAY_STATE_NAMES):
                return True
            if (isinstance(sub, ast.Attribute)
                    and sub.attr in self._ARRAY_STATE_NAMES):
                return True
        return False

    def _check_enum_bypass(
        self, module: ModuleSource, node: ast.If
    ) -> Iterator[Violation]:
        """Dict ``enumerate_matches`` calls on the array branch body."""
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if (isinstance(sub, ast.Call)
                        and _call_name(sub) == self._DICT_ENUMERATOR):
                    yield module.violation(
                        self,
                        sub,
                        "array-dispatch branch calls the dict backtracker "
                        "enumerate_matches(...); with a live array state, "
                        "enumeration must route through "
                        "enumerate_matches_array",
                    )

    def _body_exits_with_following_code(
        self, module: ModuleSource, node: ast.If
    ) -> bool:
        if not isinstance(node.body[-1], self._TERMINAL):
            return False
        parent = module.parents.get(node)
        body = getattr(parent, "body", None)
        if not isinstance(body, list) or node not in body:
            return False
        return body.index(node) < len(body) - 1


# ----------------------------------------------------------------------
# R5 — hot-loop hygiene
# ----------------------------------------------------------------------
@register_rule
class HotLoopHygieneRule(Rule):
    """Vectorization-undoing patterns in the hot kernel modules.

    Flags ``np.append`` inside a loop (quadratic reallocation),
    object-dtype array construction (boxes every element), and Python
    ``for`` loops iterating a CSR array field per element (the exact
    shape the array kernels replaced with gathers and reduceat folds).
    Explicit ``.tolist()`` conversions are allowed — they document the
    crossing back into dict-land.
    """

    id = "R5"
    title = "hot-loop hygiene"
    rationale = (
        "PRs 2/4 replaced per-element CSR loops with vectorized folds; a "
        "stray Python loop or np.append quietly reverts the speedup"
    )
    hot_modules_only = True

    _CSR_ARRAY_ATTRS = frozenset({
        "indptr", "indices", "src", "mirror", "degrees",
        "vertex_active", "edge_alive", "role_mask",
    })

    def check_module(
        self, project: Project, module: ModuleSource
    ) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, ast.For):
                yield from self._check_for(module, node)

    def _check_call(
        self, module: ModuleSource, node: ast.Call
    ) -> Iterator[Violation]:
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr == "append"
                and isinstance(func.value, ast.Name)
                and func.value.id in ("np", "numpy")):
            if any(isinstance(a, (ast.For, ast.While))
                   for a in module.ancestors(node)):
                yield module.violation(
                    self,
                    node,
                    "np.append inside a loop reallocates the whole array "
                    "per iteration; collect parts and np.concatenate once",
                )
        for keyword in node.keywords:
            if keyword.arg != "dtype":
                continue
            value = keyword.value
            is_object = (
                (isinstance(value, ast.Name) and value.id == "object")
                or (isinstance(value, ast.Constant) and value.value == "object")
                or (isinstance(value, ast.Attribute)
                    and value.attr in ("object_", "object"))
            )
            if is_object:
                yield module.violation(
                    self,
                    keyword.value,
                    "object-dtype array construction boxes every element; "
                    "use a numeric dtype or keep the data in dict form",
                )

    def _check_for(
        self, module: ModuleSource, node: ast.For
    ) -> Iterator[Violation]:
        target = self._csr_iteration_target(node.iter)
        if target is None:
            return
        yield module.violation(
            self,
            node,
            f"per-element Python loop over CSR array `{target}`; use "
            f"vectorized gathers/folds (or an explicit .tolist() at a "
            f"documented dict boundary)",
        )

    def _csr_iteration_target(self, iter_expr: ast.expr) -> Optional[str]:
        # for x in csr.indices: ...
        if (isinstance(iter_expr, ast.Attribute)
                and iter_expr.attr in self._CSR_ARRAY_ATTRS):
            return iter_expr.attr
        # for i in range(len(csr.indices)): ...
        if (isinstance(iter_expr, ast.Call)
                and _call_name(iter_expr) == "range"
                and len(iter_expr.args) == 1
                and isinstance(iter_expr.args[0], ast.Call)
                and _call_name(iter_expr.args[0]) == "len"
                and iter_expr.args[0].args):
            inner = iter_expr.args[0].args[0]
            if (isinstance(inner, ast.Attribute)
                    and inner.attr in self._CSR_ARRAY_ATTRS):
                return inner.attr
        # for v in np.nonzero(...)[0]: ...   (and bare np.nonzero(...))
        probe = iter_expr
        if isinstance(probe, ast.Subscript):
            probe = probe.value
        if isinstance(probe, ast.Call) and _call_name(probe) == "nonzero":
            return "np.nonzero(...)"
        return None


@register_rule
class SharedMemoryLifecycleRule(Rule):
    """Direct ``SharedMemory(...)`` construction outside ``runtime/shm.py``.

    POSIX shared-memory segments outlive the creating process until
    somebody unlinks them: a stray ``SharedMemory(create=True, ...)``
    call that isn't paired with the wrapper's registry + atexit sweep
    leaks a ``/dev/shm`` entry on any crashed run, and an out-of-band
    attach can double-unlink a segment the owner still serves.  All
    segment construction must go through :class:`SharedGraphCsr` /
    :func:`attach_shared_csr` in :mod:`repro.runtime.shm`.
    """

    id = "R6"
    title = "shared-memory lifecycle"
    rationale = (
        "named segments persist past interpreter exit unless unlinked; "
        "only the shm wrapper's owner/attach registry guarantees cleanup"
    )

    _WRAPPER_BASENAME = "shm.py"

    def check_module(
        self, project: Project, module: ModuleSource
    ) -> Iterator[Violation]:
        if module.basename == self._WRAPPER_BASENAME:
            return
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and _call_name(node) == "SharedMemory"):
                yield module.violation(
                    self,
                    node,
                    "direct SharedMemory(...) construction outside the "
                    "runtime/shm lifecycle wrapper; use SharedGraphCsr "
                    "(owner) or attach_shared_csr (worker) so the segment "
                    "is registered for unlink/close cleanup",
                )


# ----------------------------------------------------------------------
# R7 — batched template execution
# ----------------------------------------------------------------------
@register_rule
class BatchedTemplateExecutionRule(Rule):
    """Per-template ``run_pipeline`` loops outside the batch executor.

    A ``for`` loop over a template/motif/pattern collection that calls
    ``run_pipeline`` in its body re-pays kernel compilation, prototype
    generation and the ``M*`` background traversal once per iteration —
    precisely the redundancy :mod:`repro.core.batch` exists to share.
    Flagged when either the loop target or the iterated expression
    mentions a template-ish name; intentional baselines carry an
    explicit suppression comment.
    """

    id = "R7"
    title = "batched template execution"
    rationale = (
        "looping run_pipeline over a template list recomputes kernels, "
        "prototypes and M* per template; core/batch.py shares them"
    )

    _EXECUTOR_BASENAME = "batch.py"

    #: loop target / iterable name fragments marking a template sweep
    _HINTS = (
        "template", "motif", "pattern", "prototype", "protos",
        "instantiation", "quer",
    )

    def check_module(
        self, project: Project, module: ModuleSource
    ) -> Iterator[Violation]:
        if module.basename == self._EXECUTOR_BASENAME:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            if not self._calls_run_pipeline(node):
                continue
            if not (self._templateish(node.target)
                    or self._templateish(node.iter)):
                continue
            yield module.violation(
                self,
                node,
                "run_pipeline called once per template inside a loop; "
                "route multi-template work through core/batch.py "
                "(TemplateLibrary/run_batch) to share kernels, prototypes "
                "and the M* traversal",
            )

    @staticmethod
    def _calls_run_pipeline(loop: ast.AST) -> bool:
        for stmt in getattr(loop, "body", ()):
            for sub in ast.walk(stmt):
                if (isinstance(sub, ast.Call)
                        and _call_name(sub) == "run_pipeline"):
                    return True
        return False

    @classmethod
    def _templateish(cls, node: ast.expr) -> bool:
        for sub in ast.walk(node):
            name = None
            if isinstance(sub, ast.Name):
                name = sub.id
            elif isinstance(sub, ast.Attribute):
                name = sub.attr
            if name is not None:
                lowered = name.lower()
                if any(hint in lowered for hint in cls._HINTS):
                    return True
        return False


# ----------------------------------------------------------------------
# R8 — metric accumulation through the registry
# ----------------------------------------------------------------------
@register_rule
class MetricAccumulationRule(Rule):
    """Hot-module metric counting must go through registry handles.

    An ad-hoc ``stats["hits"] += 1`` dict (as the kernel cache once
    kept) or a bare ``self.misses += 1`` attribute counter lives and
    dies in its own module: it never reaches the always-on
    :class:`~repro.runtime.metrics.MetricsRegistry`, so the count is
    invisible to ``repro metrics``, is dropped on the floor by the
    pooled workers' export/merge path, and can't drive the adaptive
    consumers.  Hot modules accumulate through a resolved
    ``metrics.counter(...)``/``histogram(...)`` handle instead.
    """

    id = "R8"
    title = "metric accumulation"
    rationale = (
        "kernels.py counted cache hits in a module dict that pooled "
        "workers and the metrics report never saw; registry handles "
        "merge across processes for free"
    )
    hot_modules_only = True

    #: subscript keys / attribute names that mark a metric counter
    _METRIC_NAMES = frozenset(
        {"hits", "misses", "hit_count", "miss_count", "evictions"}
    )

    def check_module(
        self, project: Project, module: ModuleSource
    ) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AugAssign):
                continue
            name = self._metric_target_name(node.target)
            if name is None:
                continue
            yield module.violation(
                self,
                node,
                f"ad-hoc metric accumulation on {name!r} in a hot module; "
                f"resolve a handle once (`m = metrics.counter(...)`) and "
                f"`m.inc(...)` so the count reaches snapshots, reports and "
                f"the pooled export/merge path",
            )

    @classmethod
    def _metric_target_name(cls, target: ast.expr) -> Optional[str]:
        """The metric-ish key/attr an AugAssign accumulates into, if any."""
        if isinstance(target, ast.Subscript):
            inner = _subscript_slice(target)
            if (isinstance(inner, ast.Constant)
                    and isinstance(inner.value, str)
                    and inner.value in cls._METRIC_NAMES):
                return inner.value
        if (isinstance(target, ast.Attribute)
                and target.attr in cls._METRIC_NAMES):
            return target.attr
        return None
