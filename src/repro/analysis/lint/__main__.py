"""Standalone entry point: ``python -m repro.analysis.lint`` (CI runner)."""

import sys

from .runner import main

sys.exit(main())
