"""Intraprocedural control-flow graphs for the dataflow rules.

One :class:`Cfg` per function: basic blocks of consecutive simple
statements, edges for the branching constructs.  The granularity is what
the flow-sensitive rules need — *which statements can execute after
which* — not a compiler-grade IR:

* ``if``/``while``/``for`` produce the usual diamond / loop shapes
  (conditions are recorded as :class:`BranchMarker` pseudo-statements so
  transfer functions can inspect them);
* ``break``/``continue``/``return``/``raise`` terminate their block and
  edge to the loop exit / function exit;
* ``try`` is conservative: every handler is reachable from the block
  preceding the body *and* from the body's end (any statement may
  raise), ``finally`` joins all of it;
* ``with`` bodies run sequentially; a :class:`WithExit` pseudo-statement
  after the body marks the context managers' ``__exit__`` point (the
  release event R9 cares about).

Blocks hold a mix of real ``ast.stmt`` nodes and the pseudo-statement
markers; dataflow transfer functions dispatch on type.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

__all__ = ["BasicBlock", "Cfg", "BranchMarker", "WithExit", "build_cfg"]


class BranchMarker:
    """Pseudo-statement: a branch condition evaluated at block end."""

    __slots__ = ("test",)

    def __init__(self, test: ast.expr) -> None:
        self.test = test


class WithExit:
    """Pseudo-statement: ``with`` context managers released here."""

    __slots__ = ("items",)

    def __init__(self, items: List[ast.withitem]) -> None:
        self.items = items


class BasicBlock:
    """A straight-line run of statements."""

    __slots__ = ("id", "statements", "successors", "predecessors")

    def __init__(self, block_id: int) -> None:
        self.id = block_id
        self.statements: List[object] = []
        self.successors: List[int] = []
        self.predecessors: List[int] = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<block {self.id} [{len(self.statements)} stmts] "
            f"-> {self.successors}>"
        )


class Cfg:
    """The block graph of one function body."""

    def __init__(self) -> None:
        self.blocks: List[BasicBlock] = []
        self.entry: int = self.new_block().id
        self.exit: int = self.new_block().id

    def new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].successors:
            self.blocks[src].successors.append(dst)
            self.blocks[dst].predecessors.append(src)


class _Builder:
    def __init__(self) -> None:
        self.cfg = Cfg()
        #: (break target, continue target) stack of enclosing loops
        self.loops: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    def build(self, body: List[ast.stmt]) -> Cfg:
        cfg = self.cfg
        end = self._sequence(cfg.entry, body)
        if end is not None:
            cfg.add_edge(end, cfg.exit)
        return cfg

    def _sequence(
        self, current: Optional[int], body: List[ast.stmt]
    ) -> Optional[int]:
        """Thread ``body`` from block ``current``; None = unreachable."""
        for stmt in body:
            if current is None:
                # unreachable code still gets blocks (rules may want
                # them) but no incoming edges
                current = self.cfg.new_block().id
            current = self._statement(current, stmt)
        return current

    # ------------------------------------------------------------------
    def _statement(self, current: int, stmt: ast.stmt) -> Optional[int]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            cfg.blocks[current].statements.append(BranchMarker(stmt.test))
            then_block = cfg.new_block().id
            cfg.add_edge(current, then_block)
            then_end = self._sequence(then_block, stmt.body)
            if stmt.orelse:
                else_block = cfg.new_block().id
                cfg.add_edge(current, else_block)
                else_end = self._sequence(else_block, stmt.orelse)
            else:
                else_end = current
            join = cfg.new_block().id
            for end in (then_end, else_end):
                if end is not None:
                    cfg.add_edge(end, join)
            return join if cfg.blocks[join].predecessors else None
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = cfg.new_block().id
            cfg.add_edge(current, header)
            if isinstance(stmt, ast.While):
                cfg.blocks[header].statements.append(BranchMarker(stmt.test))
            else:
                # the loop target assignment happens in the header
                cfg.blocks[header].statements.append(stmt)
            exit_block = cfg.new_block().id
            cfg.add_edge(header, exit_block)  # zero-iteration path
            body_block = cfg.new_block().id
            cfg.add_edge(header, body_block)
            self.loops.append((exit_block, header))
            body_end = self._sequence(body_block, stmt.body)
            self.loops.pop()
            if body_end is not None:
                cfg.add_edge(body_end, header)
            if stmt.orelse:
                else_end = self._sequence(exit_block, stmt.orelse)
                if else_end is not None and else_end != exit_block:
                    return else_end
            return exit_block
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            cfg.blocks[current].statements.append(stmt)
            body_end = self._sequence(current, stmt.body)
            if body_end is None:
                return None
            cfg.blocks[body_end].statements.append(WithExit(stmt.items))
            return body_end
        if isinstance(stmt, ast.Try):
            pre = current
            body_block = cfg.new_block().id
            cfg.add_edge(pre, body_block)
            body_end = self._sequence(body_block, stmt.body)
            join = cfg.new_block().id
            handler_ends: List[Optional[int]] = []
            for handler in stmt.handlers:
                handler_block = cfg.new_block().id
                # a handler can be entered before any body statement ran
                # or after any of them — approximate with both endpoints
                cfg.add_edge(body_block, handler_block)
                if body_end is not None:
                    cfg.add_edge(body_end, handler_block)
                handler_ends.append(
                    self._sequence(handler_block, handler.body)
                )
            if stmt.orelse and body_end is not None:
                body_end = self._sequence(body_end, stmt.orelse)
            for end in [body_end] + handler_ends:
                if end is not None:
                    cfg.add_edge(end, join)
            if not cfg.blocks[join].predecessors:
                if not stmt.finalbody:
                    return None
                join_opt: Optional[int] = None
            else:
                join_opt = join
            if stmt.finalbody:
                if join_opt is None:
                    join_opt = join  # finally runs even on the raise path
                    cfg.add_edge(body_block, join_opt)
                return self._sequence(join_opt, stmt.finalbody)
            return join_opt
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cfg.blocks[current].statements.append(stmt)
            cfg.add_edge(current, cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            cfg.blocks[current].statements.append(stmt)
            if self.loops:
                cfg.add_edge(current, self.loops[-1][0])
            return None
        if isinstance(stmt, ast.Continue):
            cfg.blocks[current].statements.append(stmt)
            if self.loops:
                cfg.add_edge(current, self.loops[-1][1])
            return None
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            # nested definitions are opaque statements at this level
            cfg.blocks[current].statements.append(stmt)
            return current
        cfg.blocks[current].statements.append(stmt)
        return current


def build_cfg(func: ast.AST) -> Cfg:
    """The CFG of a function's body."""
    return _Builder().build(list(func.body))
