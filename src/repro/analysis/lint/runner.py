"""Command-line runner shared by ``repro lint`` and ``python -m``.

Exit codes: 0 clean (modulo baseline), 1 new violations, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .framework import (
    Baseline,
    LintReport,
    all_rules,
    rule_sort_key,
    run_lint,
)

__all__ = ["add_lint_arguments", "lint_from_args", "main"]

#: baseline file looked up next to the scanned root's repo when
#: ``--baseline`` is given without a value
DEFAULT_BASELINE_NAME = "lint-baseline.json"


def default_root() -> Path:
    """The installed ``repro`` package — what CI checks."""
    import repro

    return Path(repro.__file__).resolve().parent


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--rule", action="append", dest="rules", metavar="ID",
        help="run only this rule id (repeatable, e.g. --rule R1 --rule R3)",
    )
    parser.add_argument(
        "--baseline", nargs="?", const=DEFAULT_BASELINE_NAME, metavar="PATH",
        help="accepted-violations file; findings in it do not fail the run "
             f"(default path when the flag is bare: ./{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write all current findings to the --baseline path and exit 0",
    )
    parser.add_argument(
        "--json", action="store_true", dest="json_output",
        help="print the machine-readable report instead of one line per "
             "finding",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--deep", action="store_true",
        help="include the interprocedural rules (R9+: call graph / CFG / "
             "dataflow — what `repro analyze` runs)",
    )
    parser.add_argument(
        "--explain", metavar="ID",
        help="print a rule's contract and a minimal bad/good example "
             "pair, then exit",
    )


def _resolve_targets(paths: Sequence[str]) -> tuple:
    """(root, explicit file list or None) from the positional args."""
    if not paths:
        return default_root(), None
    resolved = [Path(p).resolve() for p in paths]
    missing = [p for p in resolved if not p.exists()]
    if missing:
        raise FileNotFoundError(str(missing[0]))
    if len(resolved) == 1 and resolved[0].is_dir():
        return resolved[0], None
    files: List[Path] = []
    for path in resolved:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    try:
        import os

        root = Path(os.path.commonpath([str(p.parent) for p in files]))
    except ValueError:
        root = Path.cwd()
    return root, files


def _render_text(report: LintReport, baseline_used: bool) -> str:
    lines = [v.render() for v in report.violations]
    summary = (
        f"repro-lint: {len(report.violations)} new finding(s) across "
        f"{report.files_checked} file(s)"
    )
    extras = []
    if baseline_used:
        extras.append(f"{len(report.baselined)} baselined")
    if report.suppressed > 0:
        extras.append(f"{report.suppressed} suppressed")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def _explain_rule(rule_id: str) -> int:
    registry = all_rules()
    rule = registry.get(rule_id.upper())
    if rule is None:
        known = ", ".join(sorted(registry, key=rule_sort_key))
        print(
            f"error: unknown rule id {rule_id!r}; known: {known}",
            file=sys.stderr,
        )
        return 2
    tier = " [deep: repro analyze / lint --deep]" if rule.deep else ""
    print(f"{rule.id}  {rule.title}{tier}")
    print(f"why: {rule.rationale}")
    contract = rule.contract or (rule.__doc__ or "").strip()
    print()
    print("contract:")
    print(f"  {contract}")
    if rule.example_bad:
        print()
        print("bad:")
        for line in rule.example_bad.rstrip("\n").splitlines():
            print(f"  {line}")
    if rule.example_good:
        print()
        print("good:")
        for line in rule.example_good.rstrip("\n").splitlines():
            print(f"  {line}")
    return 0


def lint_from_args(args: argparse.Namespace) -> int:
    if getattr(args, "explain", None):
        return _explain_rule(args.explain)
    if args.list_rules:
        registry = all_rules()
        for rule_id in sorted(registry, key=rule_sort_key):
            rule = registry[rule_id]
            tier = " [deep]" if rule.deep else ""
            print(f"{rule_id}{tier}  {rule.title} — {rule.rationale}")
        return 0

    try:
        root, files = _resolve_targets(args.paths)
    except FileNotFoundError as error:
        print(f"error: no such path: {error}", file=sys.stderr)
        return 2

    baseline: Optional[Baseline] = None
    baseline_path: Optional[Path] = None
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
        if baseline_path.exists() and not args.write_baseline:
            try:
                baseline = Baseline.load(baseline_path)
            except (ValueError, KeyError, json.JSONDecodeError) as error:
                print(
                    f"error: cannot read baseline {baseline_path}: {error}",
                    file=sys.stderr,
                )
                return 2
        elif not args.write_baseline:
            print(
                f"error: baseline {baseline_path} does not exist "
                f"(use --write-baseline to create it)",
                file=sys.stderr,
            )
            return 2

    try:
        report = run_lint(
            root, rule_ids=args.rules, baseline=baseline, paths=files,
            deep=getattr(args, "deep", False),
        )
    except ValueError as error:  # unknown rule id
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        if baseline_path is None:
            print(
                "error: --write-baseline requires --baseline PATH",
                file=sys.stderr,
            )
            return 2
        Baseline.from_violations(
            report.violations + report.baselined
        ).save(baseline_path)
        print(
            f"baseline written to {baseline_path} "
            f"({len(report.violations) + len(report.baselined)} entries)"
        )
        return 0

    if args.json_output:
        print(json.dumps(report.to_json(), indent=1))
    else:
        print(_render_text(report, baseline_used=baseline is not None))
    return 0 if report.clean else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="project-specific AST invariant checks "
                    "(see docs/INTERNALS.md §11)",
    )
    add_lint_arguments(parser)
    return lint_from_args(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
