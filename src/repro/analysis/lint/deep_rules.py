"""The interprocedural rules (R9–R13) behind ``repro analyze``.

These rules reason across function boundaries — call graph, CFG,
dataflow, effect summaries — and are therefore slower and subtler than
the per-file passes in :mod:`.rules`.  They carry ``deep = True``: the
default ``repro lint`` run skips them, ``repro analyze`` /
``repro lint --deep`` / an explicit ``--rule R9`` runs them.

Each rule guards one contract that has no runtime tripwire:

* **R9** ``shm-use-after-release`` — a shared-memory segment (or a view
  derived from one) must not be touched after ``close()``/``unlink()``
  released it, including releases a helper performed on the caller's
  behalf.  Reading a closed segment is a use-after-free that numpy
  cannot detect: the mapping is gone or recycled.
* **R10** ``resident-state-immutability`` — :class:`GraphCsr` /
  :class:`RoleKernel` instances are frozen after construction
  (``.setflags(write=False)`` is the runtime boundary); no attribute
  rebinding or in-place array stores afterwards, because the instances
  are shared across worker processes and memoized caches.
* **R11** ``pickles-empty-export`` — types that deliberately pickle to
  empty (``Tracer``, ``MetricsRegistry``) lose all worker-side state at
  the process boundary; workers must export that state into the result
  payload and the parent must merge it.
* **R12** ``dtype-contract`` — CSR arrays are fixed-width integers;
  object-dtype escapes and silent int→float upcasts (numpy's float64
  default, true division) defeat the vectorized kernels or crash
  indexing.
* **R13** ``options-threading-interprocedural`` — a
  ``PipelineOptions`` field read in a leaf function is only honored if
  every driver call chain forwards ``options`` down to it; a defaulted
  ``options`` parameter that the caller silently omits resets the leaf
  to defaults.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .callgraph import CallGraph, CallSite, annotation_class, callgraph_of
from .cfg import BranchMarker, WithExit, build_cfg
from .dataflow import Analysis, solve, statement_facts
from .effects import (
    EffectsIndex,
    dtype_label,
    effects_of,
    map_arguments,
)
from .framework import ModuleSource, Project, Rule, Violation, register_rule

__all__ = [
    "ShmUseAfterReleaseRule",
    "ResidentStateImmutabilityRule",
    "PicklesEmptyExportRule",
    "DtypeContractRule",
    "OptionsThreadingDeepRule",
]

#: constructors/attachers whose result is (or wraps) a shared-memory
#: mapping — the values R9 tracks
SHM_SOURCES = frozenset(
    {"share_csr", "attach_shared_csr", "SharedGraphCsr", "SharedMemory"}
)

#: the wrapper module implementing the ownership protocol itself —
#: close-then-unlink inside it is the protocol, not a violation
SHM_WRAPPER_BASENAMES = frozenset({"shm.py"})

#: classes whose instances are immutable once constructed
RESIDENT_CLASSES = frozenset({"GraphCsr", "RoleKernel"})

#: calls returning an already-constructed resident instance
RESIDENT_PRODUCERS = frozenset(
    {"csr_of", "cached_role_kernel", "induced_view", "attach_shared_csr"}
)

#: methods of resident classes allowed to initialize ``self``
CONSTRUCTION_METHODS = frozenset({"__init__", "__new__", "__post_init__"})

#: types whose ``__reduce__`` ships no state across the process boundary
PICKLES_EMPTY_TYPES = frozenset({"Tracer", "MetricsRegistry"})

#: methods that move pickles-empty state into a picklable payload
EXPORT_METHODS = frozenset({"export", "to_payload"})

#: executor methods that ship a callable to another process
SUBMIT_METHODS = frozenset({"submit", "map", "apply_async"})

#: GraphCsr slots that must stay integer-family dtypes
INT_SLOTS = frozenset(
    {"order", "indptr", "indices", "src", "mirror", "degrees",
     "zero_degree", "label_codes", "pair_code", "edge_label_codes"}
)


def _call_final_name(node: ast.Call) -> str:
    """Last path component of the called name (``np.zeros`` -> zeros)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_shm_source(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and _call_final_name(node) in SHM_SOURCES
    )


def _shallow_nodes(statement: object) -> Iterator[ast.AST]:
    """AST nodes belonging to *this* statement, not to nested bodies.

    CFG blocks hold compound statements (With/For) whose ``.body`` lives
    in other blocks — a naive ``ast.walk`` would double-count it.
    """
    if isinstance(statement, BranchMarker):
        yield from ast.walk(statement.test)
    elif isinstance(statement, WithExit):
        return
    elif isinstance(statement, (ast.With, ast.AsyncWith)):
        for item in statement.items:
            yield from ast.walk(item.context_expr)
            if item.optional_vars is not None:
                yield from ast.walk(item.optional_vars)
    elif isinstance(statement, (ast.For, ast.AsyncFor)):
        yield from ast.walk(statement.target)
        yield from ast.walk(statement.iter)
    elif isinstance(
        statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return
    elif isinstance(statement, ast.stmt):
        yield from ast.walk(statement)


def _assigned_names(statement: object) -> Set[str]:
    """Local names (re)bound by this statement."""
    names: Set[str] = set()
    if isinstance(statement, ast.Assign):
        for target in statement.targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Name):
                    names.add(node.id)
    elif isinstance(statement, ast.AnnAssign):
        if isinstance(statement.target, ast.Name) and statement.value:
            names.add(statement.target.id)
    elif isinstance(statement, (ast.With, ast.AsyncWith)):
        for item in statement.items:
            if isinstance(item.optional_vars, ast.Name):
                names.add(item.optional_vars.id)
    elif isinstance(statement, (ast.For, ast.AsyncFor)):
        for node in ast.walk(statement.target):
            if isinstance(node, ast.Name):
                names.add(node.id)
    elif isinstance(statement, ast.Delete):
        for target in statement.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


# ----------------------------------------------------------------------
# R9: use of shared memory after release
# ----------------------------------------------------------------------
class _ReleaseState:
    """Per-function context shared by the R9 transfer function."""

    def __init__(
        self,
        roots: Set[str],
        derived: Dict[str, Set[str]],
        sites: Dict[int, CallSite],
        effects: EffectsIndex,
    ) -> None:
        self.roots = roots            #: names bound to shm segments
        self.derived = derived        #: name -> shm roots it aliases
        self.sites = sites            #: id(call node) -> CallSite
        self.effects = effects

    def roots_of(self, name: str) -> Set[str]:
        if name in self.roots:
            return {name}
        return self.derived.get(name, set())

    def releases(self, statement: object) -> Set[str]:
        released: Set[str] = set()
        if isinstance(statement, WithExit):
            for item in statement.items:
                if _is_shm_source(item.context_expr) and isinstance(
                    item.optional_vars, ast.Name
                ):
                    released.add(item.optional_vars.id)
            return released
        for node in _shallow_nodes(statement):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in ("close", "unlink")
                    and isinstance(func.value, ast.Name)
                    and func.value.id in self.roots):
                released.add(func.value.id)
                continue
            site = self.sites.get(id(node))
            if site is None:
                continue
            for callee_qname in site.callees:
                callee = self.effects.graph.functions.get(callee_qname)
                callee_fx = self.effects.by_qname.get(callee_qname)
                if callee is None or callee_fx is None:
                    continue
                if not callee_fx.closes:
                    continue
                for arg, param in map_arguments(node, callee):
                    if (isinstance(arg, ast.Name)
                            and arg.id in self.roots
                            and param in callee_fx.closes):
                        released.add(arg.id)
        return released


class _ReleaseAnalysis(Analysis):
    """Forward may-analysis: names released on *some* path so far."""

    may = True

    def __init__(self, state: _ReleaseState) -> None:
        self.state = state

    def transfer(self, fact, statement):
        released = set(fact)
        released |= self.state.releases(statement)
        # a rebind installs a fresh value under the name
        released -= _assigned_names(statement)
        return frozenset(released)


@register_rule
class ShmUseAfterReleaseRule(Rule):
    """Shared-memory views must not be used after close()/unlink()."""

    id = "R9"
    title = "shm-use-after-release"
    deep = True
    rationale = (
        "reading a numpy view into a closed SharedMemory segment is a "
        "use-after-free the interpreter cannot catch — the mapping is "
        "unmapped (crash) or recycled (silent garbage)"
    )
    contract = (
        "A name bound to a shared-memory segment (share_csr, "
        "attach_shared_csr, SharedGraphCsr, SharedMemory) — or any view "
        "derived from one — must not be read after a path on which it "
        "was released via .close()/.unlink(), whether the release "
        "happened inline, at a with-block exit, or inside a helper the "
        "segment was passed to.  Re-calling .close()/.unlink() stays "
        "legal (the wrapper is idempotent), and rebinding the name "
        "starts a fresh lifetime."
    )
    example_bad = (
        "shared = share_csr(csr)\n"
        "view = shared.view()\n"
        "shared.close()\n"
        "total = view.indptr[-1]   # R9: view derived from closed segment\n"
    )
    example_good = (
        "shared = share_csr(csr)\n"
        "view = shared.view()\n"
        "total = view.indptr[-1]\n"
        "shared.close()            # release strictly after the last use\n"
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        graph = callgraph_of(project)
        effects = effects_of(project)
        for qname, info in graph.functions.items():
            module = info.module
            if module.basename in SHM_WRAPPER_BASENAMES:
                continue
            yield from self._check_function(
                module, qname, info.node, graph, effects
            )

    # ------------------------------------------------------------------
    def _collect(
        self, func_node: ast.AST
    ) -> Tuple[Set[str], Dict[str, Set[str]]]:
        """(shm-rooted names, derived-name -> roots) for one function."""
        roots: Set[str] = set()
        for node in ast.walk(func_node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and _is_shm_source(
                    node.value
                ):
                    roots.add(target.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if _is_shm_source(item.context_expr) and isinstance(
                        item.optional_vars, ast.Name
                    ):
                        roots.add(item.optional_vars.id)
        derived: Dict[str, Set[str]] = {}
        for _round in range(3):  # alias-of-alias chains are shallow
            changed = False
            for node in ast.walk(func_node):
                if not (isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)):
                    continue
                target = node.targets[0].id
                if target in roots or _is_shm_source(node.value):
                    continue
                sources: Set[str] = set()
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name):
                        if sub.id in roots:
                            sources.add(sub.id)
                        else:
                            sources |= derived.get(sub.id, set())
                if sources - derived.get(target, set()):
                    derived.setdefault(target, set()).update(sources)
                    changed = True
            if not changed:
                break
        return roots, derived

    def _check_function(
        self,
        module: ModuleSource,
        qname: str,
        func_node: ast.AST,
        graph: CallGraph,
        effects: EffectsIndex,
    ) -> Iterator[Violation]:
        roots, derived = self._collect(func_node)
        if not roots:
            return
        sites = {
            id(site.node): site
            for site in graph.calls_from.get(qname, ())
        }
        state = _ReleaseState(roots, derived, sites, effects)
        analysis = _ReleaseAnalysis(state)
        cfg = build_cfg(func_node)
        in_facts = solve(cfg, analysis)
        reported: Set[int] = set()
        for statement, fact in statement_facts(cfg, analysis, in_facts):
            if not fact:
                continue
            for node in _shallow_nodes(statement):
                if not (isinstance(node, ast.Name)
                        and isinstance(node.ctx, ast.Load)):
                    continue
                hit = state.roots_of(node.id) & fact
                if not hit:
                    continue
                if self._is_release_receiver(node, module):
                    continue  # re-close/unlink is idempotent, allowed
                if node.id not in state.roots and not self._dereferences(
                    node, module
                ):
                    # derived names may hold scalar copies (shared.size);
                    # only a dereference provably touches the mapping
                    continue
                if id(node) in reported:
                    continue
                reported.add(id(node))
                root = ", ".join(sorted(hit))
                yield module.violation(
                    self, node,
                    f"'{node.id}' used after shared-memory segment "
                    f"'{root}' was released on some path "
                    f"(close()/unlink() already ran)",
                )

    @staticmethod
    def _dereferences(node: ast.Name, module: ModuleSource) -> bool:
        """True when the use reads through the value (attr/subscript)."""
        parent = module.parents.get(node)
        return (
            (isinstance(parent, ast.Attribute) and parent.value is node)
            or (isinstance(parent, ast.Subscript)
                and parent.value is node)
        )

    @staticmethod
    def _is_release_receiver(node: ast.Name, module: ModuleSource) -> bool:
        parent = module.parents.get(node)
        grand = module.parents.get(parent) if parent is not None else None
        return (
            isinstance(parent, ast.Attribute)
            and parent.attr in ("close", "unlink")
            and isinstance(grand, ast.Call)
            and grand.func is parent
        )


# ----------------------------------------------------------------------
# R10: resident state is immutable after construction
# ----------------------------------------------------------------------
@register_rule
class ResidentStateImmutabilityRule(Rule):
    """No stores into GraphCsr/RoleKernel state after construction."""

    id = "R10"
    title = "resident-state-immutability"
    deep = True
    rationale = (
        "GraphCsr and RoleKernel instances are memoized and shared "
        "across worker processes; a post-construction store corrupts "
        "every holder of the reference and desynchronizes shm copies"
    )
    contract = (
        "After construction ends (the .setflags(write=False) freeze), "
        "GraphCsr and RoleKernel instances are immutable: no attribute "
        "rebinding (csr.indptr = ...), no in-place array stores "
        "(csr.indices[k] = ...; alias = csr.src; alias[k] = ...), and "
        "no thawing (csr.indptr.flags.writeable = True).  Stores are "
        "legal only while constructing: inside __init__/__new__/"
        "__post_init__ of the class itself, or onto a local the same "
        "function just created via ClassName(...) / "
        "ClassName.__new__(ClassName)."
    )
    example_bad = (
        "csr = csr_of(graph)\n"
        "csr.degrees[v] -= 1        # R10: in-place store into resident array\n"
        "csr.indptr = new_indptr    # R10: attribute rebinding\n"
    )
    example_good = (
        "view = GraphCsr.__new__(GraphCsr)   # construction scope\n"
        "view.degrees = degrees.copy()       # ok: still constructing\n"
        "view.degrees.setflags(write=False)  # freeze ends construction\n"
    )

    def check_module(
        self, project: Project, module: ModuleSource
    ) -> Iterator[Violation]:
        yield from self._check_self_stores(module)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    # ------------------------------------------------------------------
    def _check_self_stores(
        self, module: ModuleSource
    ) -> Iterator[Violation]:
        """self.x = ... outside construction methods of resident classes."""
        for class_node in ast.walk(module.tree):
            if not (isinstance(class_node, ast.ClassDef)
                    and class_node.name in RESIDENT_CLASSES):
                continue
            for method in class_node.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if method.name in CONSTRUCTION_METHODS:
                    continue
                for node in ast.walk(method):
                    if (isinstance(node, ast.Attribute)
                            and isinstance(node.ctx, ast.Store)
                            and isinstance(node.value, ast.Name)
                            and node.value.id == "self"):
                        yield module.violation(
                            self, node,
                            f"store into self.{node.attr} outside "
                            f"construction of resident class "
                            f"{class_node.name} (only "
                            f"{'/'.join(sorted(CONSTRUCTION_METHODS))} "
                            f"may initialize)",
                        )

    # ------------------------------------------------------------------
    def _resident_names(
        self, func_node: ast.AST
    ) -> Tuple[Set[str], Set[str], Dict[str, str]]:
        """(resident names, construction-scope names, array aliases).

        Array aliases map ``a`` -> ``csr`` for ``a = csr.attr``.
        """
        resident: Set[str] = set()
        constructing: Set[str] = set()
        args = getattr(func_node, "args", None)
        if args is not None:
            for arg in (list(getattr(args, "posonlyargs", []))
                        + list(args.args) + list(args.kwonlyargs)):
                cls = annotation_class(arg.annotation)
                if cls in RESIDENT_CLASSES:
                    resident.add(arg.arg)
        for node in ast.walk(func_node):
            if not (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)):
                continue
            target = node.targets[0].id
            call = node.value
            name = _call_final_name(call)
            if name in RESIDENT_CLASSES or (
                name == "__new__"
                and isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id in RESIDENT_CLASSES
            ):
                constructing.add(target)
                resident.discard(target)
            elif name in RESIDENT_PRODUCERS:
                resident.add(target)
                constructing.discard(target)
        aliases: Dict[str, str] = {}
        for node in ast.walk(func_node):
            if (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Attribute)
                    and isinstance(node.value.value, ast.Name)
                    and node.value.value.id in resident):
                aliases[node.targets[0].id] = node.value.value.id
        return resident, constructing, aliases

    def _check_function(
        self, module: ModuleSource, func_node: ast.AST
    ) -> Iterator[Violation]:
        resident, _constructing, aliases = self._resident_names(func_node)
        if not resident and not aliases:
            return
        for node in ast.walk(func_node):
            # csr.attr = ... (attribute rebinding)
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Store)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in resident):
                yield module.violation(
                    self, node,
                    f"attribute rebinding {node.value.id}.{node.attr} "
                    f"on resident instance after construction",
                )
            # csr.attr[...] = ... / alias[...] = ... (in-place store)
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Store
            ):
                base = node.value
                if (isinstance(base, ast.Attribute)
                        and isinstance(base.value, ast.Name)
                        and base.value.id in resident):
                    yield module.violation(
                        self, node,
                        f"in-place store into "
                        f"{base.value.id}.{base.attr}[...] on resident "
                        f"instance (arrays are frozen after "
                        f"construction)",
                    )
                elif isinstance(base, ast.Name) and base.id in aliases:
                    yield module.violation(
                        self, node,
                        f"in-place store through '{base.id}', an alias "
                        f"of resident array "
                        f"{aliases[base.id]}.<slot> (arrays are frozen "
                        f"after construction)",
                    )
            # csr.attr.flags.writeable = True (thawing)
            elif (isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Store)
                    and node.attr == "writeable"):
                chain = node.value
                if (isinstance(chain, ast.Attribute)
                        and chain.attr == "flags"
                        and isinstance(chain.value, ast.Attribute)
                        and isinstance(chain.value.value, ast.Name)
                        and chain.value.value.id in resident):
                    parent = module.parents.get(node)
                    value = getattr(parent, "value", None)
                    if not (isinstance(value, ast.Constant)
                            and value.value is False):
                        yield module.violation(
                            self, node,
                            f"thawing resident array "
                            f"{chain.value.value.id}."
                            f"{chain.value.attr} "
                            f"(writeable may only be set to False)",
                        )


# ----------------------------------------------------------------------
# R11: pickles-empty worker state must be exported and merged
# ----------------------------------------------------------------------
@register_rule
class PicklesEmptyExportRule(Rule):
    """Worker-side Tracer/MetricsRegistry state must cross the boundary."""

    id = "R11"
    title = "pickles-empty-export"
    deep = True
    rationale = (
        "Tracer and MetricsRegistry pickle to empty by design; state "
        "accumulated inside a worker process silently evaporates unless "
        "the worker exports it into the result payload and the parent "
        "merges it"
    )
    contract = (
        "A function shipped to a worker (via executor submit/map/"
        "apply_async or a pool initializer) that constructs a "
        "pickles-empty type (Tracer, MetricsRegistry) and mutates it "
        "must call .export()/.to_payload() on that instance before "
        "returning, and the submitting module must merge worker "
        "payloads parent-side (a .merge(...) call)."
    )
    example_bad = (
        "def _task(payload):\n"
        "    registry = MetricsRegistry()\n"
        "    registry.incr('steps', run(payload))\n"
        "    return {'ok': True}     # R11: registry state dropped\n"
    )
    example_good = (
        "def _task(payload):\n"
        "    registry = MetricsRegistry()\n"
        "    registry.incr('steps', run(payload))\n"
        "    return {'ok': True, 'metrics': registry.export()}\n"
        "# parent: outcome.metrics.merge(payload['metrics'])\n"
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        graph = callgraph_of(project)
        entries, submit_sites = self._worker_entries(project, graph)
        if not entries:
            return
        dropping: Set[str] = set()
        for entry_qname in sorted(entries):
            info = graph.functions.get(entry_qname)
            if info is None:
                continue
            module_path = entry_qname.split("::", 1)[0]
            for qname in sorted(graph.reachable_from({entry_qname})):
                if qname.split("::", 1)[0] != module_path:
                    continue  # cross-module helpers: parent-side code
                reached = graph.functions[qname]
                for violation in self._check_worker_function(
                    reached.module, reached.node
                ):
                    dropping.add(entry_qname)
                    yield violation
        # parent side: a module that ships workers touching
        # pickles-empty state must merge the payloads back
        for module, node, worker_qnames in submit_sites:
            touches = any(
                self._constructs_pickles_empty(graph, q)
                for q in worker_qnames
            )
            if touches and not self._module_merges(module):
                yield module.violation(
                    self, node,
                    "worker payloads carry pickles-empty state "
                    "(Tracer/MetricsRegistry) but this module never "
                    "merges it parent-side (.merge(...) missing)",
                )

    # ------------------------------------------------------------------
    def _worker_entries(
        self, project: Project, graph: CallGraph
    ) -> Tuple[Set[str], List[Tuple[ModuleSource, ast.AST, Tuple[str, ...]]]]:
        entries: Set[str] = set()
        submit_sites: List[
            Tuple[ModuleSource, ast.AST, Tuple[str, ...]]
        ] = []
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                referenced: List[str] = []
                is_submit = False
                if (isinstance(func, ast.Attribute)
                        and func.attr in SUBMIT_METHODS
                        and node.args
                        and isinstance(node.args[0], ast.Name)):
                    referenced.append(node.args[0].id)
                    is_submit = True
                for keyword in node.keywords:
                    if keyword.arg == "initializer" and isinstance(
                        keyword.value, ast.Name
                    ):
                        referenced.append(keyword.value.id)
                resolved: List[str] = []
                for name in referenced:
                    resolved.extend(graph.resolve_name(module, name))
                entries.update(resolved)
                if is_submit and resolved:
                    submit_sites.append((module, node, tuple(resolved)))
        return entries, submit_sites

    def _check_worker_function(
        self, module: ModuleSource, func_node: ast.AST
    ) -> Iterator[Violation]:
        constructed: Dict[str, ast.AST] = {}
        mutated: Set[str] = set()
        exported: Set[str] = set()
        for node in ast.walk(func_node):
            if (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                    and _call_final_name(node.value)
                    in PICKLES_EMPTY_TYPES):
                constructed[node.targets[0].id] = node.value
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                receiver = node.func.value
                if isinstance(receiver, ast.Name):
                    if node.func.attr in EXPORT_METHODS:
                        exported.add(receiver.id)
                    else:
                        mutated.add(receiver.id)
        for name, node in sorted(constructed.items()):
            if name in mutated and name not in exported:
                yield module.violation(
                    self, node,
                    f"worker-side '{name}' "
                    f"({_call_final_name(node)}) is mutated but never "
                    f"exported — its state pickles to empty and is "
                    f"lost at the process boundary",
                )

    def _constructs_pickles_empty(
        self, graph: CallGraph, entry_qname: str
    ) -> bool:
        module_path = entry_qname.split("::", 1)[0]
        for qname in graph.reachable_from({entry_qname}):
            if qname.split("::", 1)[0] != module_path:
                continue
            node = graph.functions[qname].node
            for sub in ast.walk(node):
                if (isinstance(sub, ast.Call)
                        and _call_final_name(sub)
                        in PICKLES_EMPTY_TYPES):
                    return True
        return False

    @staticmethod
    def _module_merges(module: ModuleSource) -> bool:
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "merge"):
                return True
        return False


# ----------------------------------------------------------------------
# R12: CSR dtype contract
# ----------------------------------------------------------------------
@register_rule
class DtypeContractRule(Rule):
    """CSR arrays stay integer dtypes; no object escapes, no float indices."""

    id = "R12"
    title = "dtype-contract"
    deep = True
    rationale = (
        "the array kernels assume fixed-width integer CSR slots; an "
        "object-dtype escape silently falls back to per-element python "
        "dispatch, and a float array used as an index raises at runtime"
    )
    contract = (
        "GraphCsr/SharedGraphCsr integer slots (indptr, indices, src, "
        "mirror, degrees, order, zero_degree, label_codes, pair_code, "
        "edge_label_codes) must be built from integer-family arrays — "
        "np.zeros(n) without dtype= is float64, true division produces "
        "float, and both propagate through helper returns.  No "
        "dtype=object arrays in non-test code, and no float-inferred "
        "value may be used as an array index."
    )
    example_bad = (
        "degrees = np.zeros(n)                # float64 by default\n"
        "csr = GraphCsr(degrees=degrees, ...) # R12: float into int slot\n"
        "mid = total / 2\n"
        "pivot = order[mid]                   # R12: float index\n"
    )
    example_good = (
        "degrees = np.zeros(n, dtype=np.int64)\n"
        "csr = GraphCsr(degrees=degrees, ...)\n"
        "mid = total // 2\n"
        "pivot = order[mid]\n"
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        graph = callgraph_of(project)
        effects = effects_of(project)
        for qname, info in graph.functions.items():
            module = info.module
            env = effects.function_env(info)
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    yield from self._check_ctor(
                        module, node, env, effects
                    )
                    yield from self._check_object_dtype(module, node)
                elif isinstance(node, ast.Subscript) and isinstance(
                    node.ctx, ast.Load
                ):
                    yield from self._check_index(module, node, env)
        for module in project.modules:
            for site in graph.module_calls.get(module.rel_path, ()):
                yield from self._check_object_dtype(module, site.node)

    # ------------------------------------------------------------------
    def _check_ctor(
        self,
        module: ModuleSource,
        node: ast.Call,
        env: Dict[str, Optional[str]],
        effects: EffectsIndex,
    ) -> Iterator[Violation]:
        if _call_final_name(node) not in ("GraphCsr", "SharedGraphCsr"):
            return
        for keyword in node.keywords:
            if keyword.arg not in INT_SLOTS:
                continue
            label = effects.infer_expr(keyword.value, env)
            if label in ("float", "object"):
                yield module.violation(
                    self, keyword.value,
                    f"{label}-dtype value bound to integer CSR slot "
                    f"'{keyword.arg}' (kernels require fixed-width "
                    f"integers; add dtype=np.int64 at the source)",
                )

    def _check_object_dtype(
        self, module: ModuleSource, node: ast.Call
    ) -> Iterator[Violation]:
        name = _call_final_name(node)
        if name not in (
            "array", "asarray", "empty", "zeros", "ones", "full",
            "fromiter",
        ):
            return
        for keyword in node.keywords:
            if keyword.arg == "dtype" and dtype_label(
                keyword.value
            ) == "object":
                yield module.violation(
                    self, node,
                    "object-dtype array escapes the vectorized kernels "
                    "(per-element python dispatch; use a fixed-width "
                    "dtype or a list)",
                )

    def _check_index(
        self,
        module: ModuleSource,
        node: ast.Subscript,
        env: Dict[str, Optional[str]],
    ) -> Iterator[Violation]:
        index = node.slice
        if isinstance(index, ast.Name) and env.get(index.id) == "float":
            yield module.violation(
                self, index,
                f"'{index.id}' is float-inferred (numpy defaults / true "
                f"division) but used as an array index — use // or an "
                f"explicit integer dtype",
            )


# ----------------------------------------------------------------------
# R13: options threading through the call graph
# ----------------------------------------------------------------------
@register_rule
class OptionsThreadingDeepRule(Rule):
    """PipelineOptions must be forwarded down to every leaf that reads it."""

    id = "R13"
    title = "options-threading-interprocedural"
    deep = True
    rationale = (
        "a call chain that silently drops its options argument resets "
        "every PipelineOptions field the leaf reads to defaults — the "
        "driver's configuration is ignored with no error"
    )
    contract = (
        "When a function holding a PipelineOptions parameter calls a "
        "function that (transitively) reads PipelineOptions fields and "
        "whose options parameter is defaulted, the call must forward "
        "options explicitly — omitting it silently reverts the callee "
        "to default options."
    )
    example_bad = (
        "def driver(graph, options):\n"
        "    return expand(graph)       # R13: options dropped\n"
        "def expand(graph, options=None):\n"
        "    opts = options or PipelineOptions()\n"
        "    if opts.budget: ...\n"
    )
    example_good = (
        "def driver(graph, options):\n"
        "    return expand(graph, options=options)\n"
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        graph = callgraph_of(project)
        effects = effects_of(project)
        needy = self._needy_functions(graph, effects)
        for qname, sites in graph.calls_from.items():
            caller_fx = effects.by_qname.get(qname)
            if caller_fx is None or caller_fx.options_param is None:
                continue
            info = graph.functions[qname]
            module = info.module
            for site in sites:
                if site.external or len(site.callees) != 1:
                    continue
                callee_qname = site.callees[0]
                if callee_qname not in needy:
                    continue
                callee = graph.functions.get(callee_qname)
                callee_fx = effects.by_qname.get(callee_qname)
                if callee is None or callee_fx is None:
                    continue
                opt = callee_fx.options_param
                if opt is None or opt not in callee.defaults:
                    continue  # no param / required param: not silent
                if self._passes_options(site.node, callee, opt):
                    continue
                yield module.violation(
                    self, site.node,
                    f"call drops PipelineOptions: {callee.name}() reads "
                    f"options fields (transitively) but '{opt}' is not "
                    f"forwarded — the callee silently falls back to "
                    f"defaults",
                )

    # ------------------------------------------------------------------
    def _needy_functions(
        self, graph: CallGraph, effects: EffectsIndex
    ) -> Set[str]:
        """Functions whose options parameter observably matters."""
        needy = {
            qname
            for qname, fx in effects.by_qname.items()
            if fx.options_param is not None and fx.options_fields
        }
        changed = True
        while changed:
            changed = False
            for qname, sites in graph.calls_from.items():
                if qname in needy:
                    continue
                fx = effects.by_qname.get(qname)
                if fx is None or fx.options_param is None:
                    continue
                for site in sites:
                    for callee_qname in site.callees:
                        if callee_qname not in needy:
                            continue
                        callee = graph.functions.get(callee_qname)
                        callee_fx = effects.by_qname.get(callee_qname)
                        if callee is None or callee_fx is None:
                            continue
                        target = callee_fx.options_param
                        if target is None:
                            continue
                        for arg, param in map_arguments(
                            site.node, callee
                        ):
                            if (param == target
                                    and isinstance(arg, ast.Name)
                                    and arg.id == fx.options_param):
                                needy.add(qname)
                                changed = True
                                break
                        if qname in needy:
                            break
                    if qname in needy:
                        break
        return needy

    @staticmethod
    def _passes_options(
        node: ast.Call, callee, opt: str
    ) -> bool:
        for keyword in node.keywords:
            if keyword.arg == opt or keyword.arg is None:
                return True  # explicit or **kwargs forwarding
        positional = callee.positional_params()
        if opt in positional:
            if any(isinstance(a, ast.Starred) for a in node.args):
                return True  # *args splat may cover it
            if len(node.args) > positional.index(opt):
                return True
        return False
