"""Precision/recall auditing of pipeline results.

The system's guarantees are proven in the test suite against a brute-force
matcher; this module packages the same check as a user-facing utility so a
downstream adopter can *audit* any run on their own (small) data: given a
graph, a template and a :class:`~repro.core.results.PipelineResult`, it
recomputes ground truth by exhaustive backtracking and reports precision
and recall per prototype.

Intended for validation at development scale — the brute-force reference
enumerates every match, so audit graphs should be small.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..graph.graph import Graph, canonical_edge
from ..graph.isomorphism import find_subgraph_isomorphisms
from ..core.results import PipelineResult


class PrototypeAudit:
    """Precision/recall of one prototype's reported solution subgraph."""

    def __init__(self, proto_id: int, name: str) -> None:
        self.proto_id = proto_id
        self.name = name
        self.true_vertices: Set[int] = set()
        self.reported_vertices: Set[int] = set()
        self.true_edges: Set[tuple] = set()
        self.reported_edges: Set[tuple] = set()
        self.match_count_reported: Optional[int] = None
        self.match_count_true = 0

    @property
    def false_positives(self) -> Set[int]:
        return self.reported_vertices - self.true_vertices

    @property
    def false_negatives(self) -> Set[int]:
        return self.true_vertices - self.reported_vertices

    @property
    def vertex_precision(self) -> float:
        if not self.reported_vertices:
            return 1.0
        return len(self.reported_vertices & self.true_vertices) / len(
            self.reported_vertices
        )

    @property
    def vertex_recall(self) -> float:
        if not self.true_vertices:
            return 1.0
        return len(self.reported_vertices & self.true_vertices) / len(
            self.true_vertices
        )

    @property
    def edge_precision(self) -> float:
        if not self.reported_edges:
            return 1.0
        return len(self.reported_edges & self.true_edges) / len(self.reported_edges)

    @property
    def edge_recall(self) -> float:
        if not self.true_edges:
            return 1.0
        return len(self.reported_edges & self.true_edges) / len(self.true_edges)

    @property
    def exact(self) -> bool:
        checks = [
            self.true_vertices == self.reported_vertices,
            self.true_edges == self.reported_edges,
        ]
        if self.match_count_reported is not None:
            checks.append(self.match_count_reported == self.match_count_true)
        return all(checks)

    def __repr__(self) -> str:
        return (
            f"PrototypeAudit({self.name}, precision={self.vertex_precision:.3f}, "
            f"recall={self.vertex_recall:.3f}, exact={self.exact})"
        )


class AuditReport:
    """Full audit of one pipeline run."""

    def __init__(self) -> None:
        self.prototypes: List[PrototypeAudit] = []

    @property
    def exact(self) -> bool:
        return all(audit.exact for audit in self.prototypes)

    def worst_precision(self) -> float:
        return min(
            (a.vertex_precision for a in self.prototypes), default=1.0
        )

    def worst_recall(self) -> float:
        return min((a.vertex_recall for a in self.prototypes), default=1.0)

    def failures(self) -> List[PrototypeAudit]:
        return [audit for audit in self.prototypes if not audit.exact]

    def __repr__(self) -> str:
        return (
            f"AuditReport(prototypes={len(self.prototypes)}, exact={self.exact}, "
            f"min_precision={self.worst_precision():.3f}, "
            f"min_recall={self.worst_recall():.3f})"
        )


def audit_result(graph: Graph, result: PipelineResult) -> AuditReport:
    """Recompute ground truth by brute force and compare to ``result``.

    Covers per-prototype solution vertices, solution edges, and (when the
    run counted) match-mapping counts.  The per-vertex match vectors are
    implied by the per-prototype vertex sets, so they are covered too.
    """
    report = AuditReport()
    for proto in result.prototype_set:
        outcome = result.outcome_for(proto.id)
        audit = PrototypeAudit(proto.id, proto.name)
        audit.reported_vertices = set(outcome.solution_vertices)
        audit.reported_edges = {
            canonical_edge(u, v) for u, v in outcome.solution_edges
        }
        audit.match_count_reported = outcome.match_mappings
        proto_edges = list(proto.graph.edges())
        for mapping in find_subgraph_isomorphisms(proto.graph, graph):
            audit.match_count_true += 1
            audit.true_vertices.update(mapping.values())
            for u, v in proto_edges:
                audit.true_edges.add(canonical_edge(mapping[u], mapping[v]))
        report.prototypes.append(audit)
    return report


def audit_match_vectors(
    graph: Graph, result: PipelineResult
) -> Dict[int, Dict[str, Set[int]]]:
    """Vertex-level diff of the match vectors against brute force.

    Returns ``{vertex: {"missing": ids, "spurious": ids}}`` for vertices
    whose vector differs from ground truth (empty dict = exact).
    """
    truth: Dict[int, Set[int]] = {}
    for proto in result.prototype_set:
        for mapping in find_subgraph_isomorphisms(proto.graph, graph):
            for vertex in mapping.values():
                truth.setdefault(vertex, set()).add(proto.id)
    diff: Dict[int, Dict[str, Set[int]]] = {}
    for vertex in set(truth) | set(result.match_vectors):
        expected = truth.get(vertex, set())
        reported = set(result.match_vectors.get(vertex, set()))
        if expected != reported:
            diff[vertex] = {
                "missing": expected - reported,
                "spurious": reported - expected,
            }
    return diff
