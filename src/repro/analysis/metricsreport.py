"""Metrics snapshots: derived ratios, report rendering, exporters.

Consumes :meth:`repro.runtime.metrics.MetricsRegistry.snapshot` dumps
(either bare, or embedded as the ``"metrics"`` key of a
``stats_document``) and renders them three ways:

* :func:`render_report` — the human tables behind ``repro metrics``;
* :func:`to_prometheus` — Prometheus text exposition format
  (``repro_``-prefixed, dots mapped to underscores, histograms as
  cumulative ``_bucket``/``_sum``/``_count`` series with log2 ``le``
  bounds);
* :func:`to_json` — the snapshot plus the :func:`derived_metrics` block,
  which is where the headline ratios live (cache hit ratios, dense-round
  fraction, pool utilization).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .report import format_seconds, format_table

__all__ = [
    "derived_metrics",
    "load_snapshot",
    "render_report",
    "to_json",
    "to_prometheus",
    "write_snapshot",
]


def load_snapshot(path) -> Dict[str, object]:
    """Load a metrics snapshot from ``path``.

    Accepts a bare registry snapshot, a ``stats_document`` carrying a
    ``"metrics"`` key, or a full ``repro search --json`` output document.
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: not a JSON object")
    if "metrics" in document and isinstance(document["metrics"], dict):
        document = document["metrics"]
    if not any(k in document for k in ("counters", "gauges", "histograms")):
        raise ValueError(
            f"{path}: JSON object without counters/gauges/histograms"
        )
    document.setdefault("counters", {})
    document.setdefault("gauges", {})
    document.setdefault("histograms", {})
    return document


def _ratio(hits: float, misses: float) -> Optional[float]:
    total = hits + misses
    if total <= 0:
        return None
    return hits / total


def derived_metrics(snapshot: Dict[str, object]) -> Dict[str, object]:
    """The headline ratios computed from a snapshot's raw instruments.

    Every value is ``None`` when its inputs were never recorded, so a
    consumer can tell "measured as zero" apart from "not applicable".
    """
    counters: Dict[str, float] = snapshot.get("counters", {})  # type: ignore[assignment]
    gauges: Dict[str, float] = snapshot.get("gauges", {})  # type: ignore[assignment]
    dense = counters.get("fixpoint.rounds_dense", 0.0)
    sparse = counters.get("fixpoint.rounds_sparse", 0.0)
    adaptive_dense = counters.get("fixpoint.rounds_adaptive_dense", 0.0)
    busy = counters.get("pool.busy_seconds", 0.0)
    idle = counters.get("pool.idle_seconds", 0.0)
    worklist = counters.get("fixpoint.worklist_vertices", 0.0)
    evaluated = counters.get("fixpoint.active_vertices", 0.0)
    derived: Dict[str, object] = {
        "nlcc_cache_hit_ratio": _ratio(
            counters.get("cache.nlcc.hits", 0.0),
            counters.get("cache.nlcc.misses", 0.0),
        ),
        "mstar_memo_hit_ratio": _ratio(
            counters.get("cache.mstar_memo.hits", 0.0),
            counters.get("cache.mstar_memo.misses", 0.0),
        ),
        "kernel_cache_hit_ratio": _ratio(
            counters.get("cache.kernel.hits", 0.0),
            counters.get("cache.kernel.misses", 0.0),
        ),
        "prototype_cache_hit_ratio": _ratio(
            counters.get("cache.prototype.hits", 0.0),
            counters.get("cache.prototype.misses", 0.0),
        ),
        "dense_round_fraction": (
            dense / (dense + sparse) if dense + sparse > 0 else None
        ),
        "adaptive_dense_rounds": adaptive_dense,
        "mean_worklist_density": (
            worklist / evaluated if evaluated > 0 else None
        ),
        "pool_utilization": (
            busy / (busy + idle) if busy + idle > 0 else None
        ),
        "shm_segment_bytes": gauges.get("shm.segment_bytes"),
    }
    return derived


def to_json(snapshot: Dict[str, object]) -> Dict[str, object]:
    """Snapshot plus the derived-ratio block, JSON-serializable."""
    document = dict(snapshot)
    document["derived"] = derived_metrics(snapshot)
    return document


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"repro_{cleaned}"


def _bucket_bound(index: int, buckets: int) -> str:
    """Upper bound label of log2 bucket ``index`` (last bucket = +Inf)."""
    if index >= buckets - 1:
        return "+Inf"
    if index == 0:
        return "0"
    return str(1 << index)


def to_prometheus(snapshot: Dict[str, object]) -> str:
    """Prometheus text exposition of a snapshot (counters first)."""
    lines: List[str] = []
    counters: Dict[str, float] = snapshot.get("counters", {})  # type: ignore[assignment]
    for name in sorted(counters):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {counters[name]:g}")
    gauges: Dict[str, float] = snapshot.get("gauges", {})  # type: ignore[assignment]
    for name in sorted(gauges):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {gauges[name]:g}")
    histograms: Dict[str, Dict[str, object]] = snapshot.get(
        "histograms", {}
    )  # type: ignore[assignment]
    for name in sorted(histograms):
        histogram = histograms[name]
        prom = _prom_name(name)
        buckets: List[int] = histogram.get("buckets", [])  # type: ignore[assignment]
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for index, count in enumerate(buckets):
            cumulative += int(count)
            bound = _bucket_bound(index, len(buckets))
            lines.append(f'{prom}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f"{prom}_sum {histogram.get('sum', 0.0):g}")
        lines.append(f"{prom}_count {cumulative}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_snapshot(path, snapshot: Dict[str, object]) -> None:
    """Write the JSON snapshot (with derived ratios) to ``path``.

    A ``.prom`` extension selects Prometheus text exposition instead.
    """
    text = (
        to_prometheus(snapshot)
        if str(path).endswith(".prom")
        else json.dumps(to_json(snapshot), indent=2) + "\n"
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _format_value(name: str, value: float) -> str:
    if name.endswith("_seconds"):
        return format_seconds(value)
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.4g}"


def render_report(snapshot: Dict[str, object]) -> str:
    """The full ``repro metrics`` report: derived ratios + raw tables."""
    counters: Dict[str, float] = snapshot.get("counters", {})  # type: ignore[assignment]
    gauges: Dict[str, float] = snapshot.get("gauges", {})  # type: ignore[assignment]
    histograms: Dict[str, Dict[str, object]] = snapshot.get(
        "histograms", {}
    )  # type: ignore[assignment]
    if not counters and not gauges and not histograms:
        return "metrics snapshot is empty"
    sections: List[str] = []

    derived = derived_metrics(snapshot)
    rows = [
        [name, "-" if value is None else _format_value(name, float(value))]
        for name, value in sorted(derived.items())
        if not (value is None and name.endswith("_ratio"))
    ]
    sections.append("== derived ==")
    sections.append(format_table(["metric", "value"], rows))

    if counters:
        rows = [
            [name, _format_value(name, value)]
            for name, value in sorted(counters.items())
        ]
        sections.append("\n== counters ==")
        sections.append(format_table(["counter", "total"], rows))

    if gauges:
        rows = [
            [name, _format_value(name, value)]
            for name, value in sorted(gauges.items())
        ]
        sections.append("\n== gauges ==")
        sections.append(format_table(["gauge", "value"], rows))

    if histograms:
        rows = []
        for name in sorted(histograms):
            histogram = histograms[name]
            count = int(histogram.get("count", 0))
            total = float(histogram.get("sum", 0.0))
            buckets: List[int] = histogram.get("buckets", [])  # type: ignore[assignment]
            top = "-"
            if count:
                top_index = max(
                    index for index, c in enumerate(buckets) if c
                )
                top = f"<={_bucket_bound(top_index, len(buckets))}"
            mean = total / count if count else 0.0
            rows.append([
                name, count,
                (format_seconds(mean) if name.endswith("_seconds")
                 else f"{mean:.4g}"),
                top,
            ])
        sections.append("\n== histograms ==")
        sections.append(format_table(
            ["histogram", "observations", "mean", "max bucket"], rows
        ))

    return "\n".join(sections)
