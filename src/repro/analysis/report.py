"""Plain-text table/series formatting shared by benchmarks and examples.

The benchmark harness prints the same rows and series the paper's tables
and figures report; these helpers keep that output consistent and easy to
diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A fixed-width text table with a header rule."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, value in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(value))
            else:
                widths.append(len(value))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append(
            "  ".join(value.ljust(widths[i]) for i, value in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def format_seconds(seconds: float) -> str:
    """Human scale: µs → s → min → h."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 120.0:
        return f"{seconds:.2f}s"
    if seconds < 7200.0:
        return f"{seconds / 60.0:.1f}min"
    return f"{seconds / 3600.0:.2f}h"


def format_bytes(num_bytes: int) -> str:
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024.0 or unit == "TB":
            return f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}TB"  # pragma: no cover - loop always returns


def format_count(count: int) -> str:
    """Compact counts: 1.2K / 3.4M / 5.6B."""
    value = float(count)
    for threshold, suffix in ((1e9, "B"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= threshold:
            return f"{value / threshold:.1f}{suffix}"
    return str(count)


def speedup(baseline: float, improved: float) -> float:
    """``baseline / improved`` guarded against zero."""
    if improved <= 0:
        return float("inf") if baseline > 0 else 1.0
    return baseline / improved


def series(label: str, xs: Sequence[object], ys: Sequence[float]) -> str:
    """One figure series as aligned ``x: y`` pairs."""
    lines = [f"[{label}]"]
    for x, y in zip(xs, ys):
        lines.append(f"  {x}: {y:.4f}" if isinstance(y, float) else f"  {x}: {y}")
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[object],
    values: Sequence[float],
    width: int = 48,
    unit: str = "",
) -> str:
    """An ASCII horizontal bar chart — the benchmark harness's "figure".

    Bars are scaled to the maximum value; each row is
    ``label  |██████____| value``.
    """
    if not values:
        return "(no data)"
    peak = max(values) or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round(width * value / peak))
        bar = "#" * filled + "." * (width - filled)
        rendered = (
            f"{value:.3g}{unit}" if isinstance(value, float) else str(value)
        )
        lines.append(f"{str(label).ljust(label_width)}  |{bar}| {rendered}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


__all__: List[str] = [
    "bar_chart",
    "format_bytes",
    "format_count",
    "format_seconds",
    "format_table",
    "series",
    "speedup",
]
