"""Dataset summary table (the Table 1 analog).

The paper's Table 1 characterizes each evaluation dataset by |V|, 2|E|,
d_max, d_avg, d_stdev and storage size.  :func:`dataset_row` computes the
same row for any graph (storage from the CSR memory model), and
:func:`datasets_table` renders the standard summary for this repository's
generator-backed stand-ins.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..graph.graph import Graph
from .memory import topology_bytes
from .report import format_bytes, format_count, format_table


def dataset_row(name: str, graph: Graph, kind: str = "Synth.") -> List[object]:
    """One Table 1-style row: type, |V|, 2|E|, degree stats, storage."""
    stats = graph.degree_statistics()
    return [
        name,
        kind,
        format_count(graph.num_vertices),
        format_count(2 * graph.num_edges),
        format_count(stats.d_max),
        f"{stats.d_avg:.1f}",
        f"{stats.d_stdev:.1f}",
        format_bytes(topology_bytes(graph)),
    ]


def datasets_table(graphs: Dict[str, Graph], kinds: Dict[str, str] = None) -> str:
    """Render a Table 1-style summary for a set of graphs."""
    kinds = kinds or {}
    rows = [
        dataset_row(name, graph, kinds.get(name, "Synth."))
        for name, graph in graphs.items()
    ]
    return format_table(
        ["dataset", "type", "|V|", "2|E|", "d_max", "d_avg", "d_stdev", "size"],
        rows,
    )


def standard_datasets(seed: int = 0) -> Dict[str, Graph]:
    """The repository's stand-ins for the paper's Table 1 datasets.

    Sized for interactive use; the benchmark harness uses its own cached
    instances (see ``benchmarks/common.py``).
    """
    from ..graph.generators import (
        imdb_graph,
        reddit_graph,
        rmat_graph,
        suite_graphs,
        webgraph,
    )

    graphs: Dict[str, Graph] = {
        "WDC-like": webgraph(4000, num_labels=50, seed=seed),
        "Reddit-like": reddit_graph(num_authors=500, seed=seed),
        "IMDb-like": imdb_graph(num_movies=300, seed=seed),
        "R-MAT s10": rmat_graph(scale=10, edge_factor=8, seed=seed),
    }
    for name, graph in suite_graphs(seed=seed):
        graphs[name] = graph
    return graphs
