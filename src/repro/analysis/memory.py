"""Memory model of the distributed system (§5.7, Fig. 11).

The paper breaks cluster-wide memory into three categories:

* **topology** — the CSR graph (vertex offsets, edge targets, labels);
* **static** — algorithm state allocated before search begins: per-vertex
  prototype match vectors, candidate bitsets (``ω``), per-edge active
  bitsets (``ε``), satisfied-constraint sets (``κ``), and the per-vertex
  MPI process map maintained by HavoqGT;
* **dynamic** — state created during the search, dominated by the visitor
  message queues.

This module reproduces that model with the datatype sizes of Fig. 11(a)
(32 prototypes / 32 template vertices / 32 constraints by default), and
computes the naïve vs HGT-C vs HGT-P peak comparison of Fig. 11(b) from a
run's recorded statistics.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..graph.graph import Graph
from ..runtime.messages import MessageStats

#: Fig. 11(a) datatype sizes, in bits.
VERTEX_OFFSET_BITS = 64
EDGE_TARGET_BITS = 64
VERTEX_LABEL_BITS = 16
MATCH_VECTOR_BITS = 32  # one bit per prototype, 32 prototypes assumed
OMEGA_BITS = 32  # candidate-role bitset, 32 template vertices assumed
EPSILON_BITS_PER_EDGE = 8  # the 8-bit active-edge bitset of Alg. 3
KAPPA_BITS = 32  # satisfied non-local constraints, 32 assumed
MPI_RANK_BITS = 32  # HavoqGT per-vertex controller rank
MESSAGE_BYTES = 32  # one queued visitor (target, payload header)


def topology_bytes(graph: Graph) -> int:
    """CSR storage: offsets + directed edge targets + labels."""
    bits = (
        VERTEX_OFFSET_BITS * (graph.num_vertices + 1)
        + EDGE_TARGET_BITS * 2 * graph.num_edges
        + VERTEX_LABEL_BITS * graph.num_vertices
    )
    return bits // 8


def static_state_bytes(
    graph: Graph,
    num_prototypes: int = 32,
    template_vertices: int = 32,
    num_constraints: int = 32,
) -> int:
    """Statically allocated algorithm state (Fig. 11(a) legend)."""
    per_vertex_bits = (
        _round_up_bits(num_prototypes)  # rho match vector
        + _round_up_bits(template_vertices)  # omega candidate bitset
        + _round_up_bits(num_constraints)  # kappa satisfied constraints
        + MPI_RANK_BITS
    )
    per_edge_bits = EPSILON_BITS_PER_EDGE
    bits = per_vertex_bits * graph.num_vertices + per_edge_bits * 2 * graph.num_edges
    return bits // 8


def dynamic_state_bytes(stats: MessageStats) -> int:
    """Peak message-queue bytes across the run's barrier intervals.

    The per-interval max over ranks approximates the largest queue any
    rank held; multiplying by the rank count bounds the cluster-wide peak.
    """
    if not stats.intervals:
        return 0
    peak_per_rank = max(interval[1] for interval in stats.intervals)
    return peak_per_rank * stats.num_ranks * MESSAGE_BYTES


def memory_breakdown(
    graph: Graph,
    stats: Optional[MessageStats] = None,
    num_prototypes: int = 32,
    template_vertices: int = 32,
    num_constraints: int = 32,
) -> Dict[str, int]:
    """Fig. 11(a)-style breakdown for one graph + optional run stats."""
    breakdown = {
        "topology": topology_bytes(graph),
        "static": static_state_bytes(
            graph, num_prototypes, template_vertices, num_constraints
        ),
        "dynamic": dynamic_state_bytes(stats) if stats is not None else 0,
    }
    breakdown["total"] = sum(breakdown.values())
    return breakdown


def relative_breakdown(breakdown: Dict[str, int]) -> Dict[str, float]:
    """Fractions of total memory per category."""
    total = breakdown.get("total") or sum(
        v for k, v in breakdown.items() if k != "total"
    )
    if not total:
        return {k: 0.0 for k in breakdown if k != "total"}
    return {k: v / total for k, v in breakdown.items() if k != "total"}


def _round_up_bits(count: int) -> int:
    """Bitsets are allocated in whole bytes."""
    return ((count + 7) // 8) * 8
