"""Graph-simulation baselines (the §6 "Graph Simulation family").

The related-work section contrasts the paper's exact-semantics system with
the graph simulation family [Henzinger et al., FOCS'95; Fan et al., VLDB'10]:
polynomial-time relaxations whose results are supersets of subgraph-
isomorphism semantics.  Implementing them makes the paper's precision
argument concrete:

* :func:`graph_simulation` — a vertex matches template vertex ``w`` if for
  every template-neighbor of ``w`` it has *some* matching neighbor
  (child-condition only);
* :func:`dual_simulation` — same condition iterated as a fixed point in
  both directions over undirected adjacency (this coincides with the LCC
  arc-consistency fixed point — which is exactly why PruneJuice needed the
  non-local constraints on top);
* :func:`strong_simulation` — dual simulation restricted to diameter-
  bounded balls [Ma et al., WWW'12], tighter but still not exact.

All three run in polynomial time and may report *false positives* w.r.t.
subgraph isomorphism — never false negatives.  The comparison tests and
the extensions benchmark quantify that precision gap against the exact
pipeline.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Set

from ..graph.algorithms import bfs_order, shortest_path_lengths
from ..graph.graph import Graph


class SimulationResult:
    """Per-template-vertex candidate sets produced by a simulation run."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        #: template vertex -> set of background vertices simulating it
        self.candidates: Dict[int, Set[int]] = {}
        self.iterations = 0
        self.wall_seconds = 0.0

    def matched_vertices(self) -> Set[int]:
        matched: Set[int] = set()
        for vertices in self.candidates.values():
            matched |= vertices
        return matched

    @property
    def empty(self) -> bool:
        return not any(self.candidates.values())

    def __repr__(self) -> str:
        return (
            f"SimulationResult({self.kind}, matched="
            f"{len(self.matched_vertices())}, iterations={self.iterations})"
        )


def graph_simulation(graph: Graph, template) -> SimulationResult:
    """Plain graph simulation: one-direction child condition, no iteration
    to a global fixed point beyond candidate initialization.

    ``template`` is a :class:`~repro.core.template.PatternTemplate` or any
    object with ``vertices()`` / ``label()`` and a ``graph`` attribute.
    """
    return _simulate(graph, template, iterate=False, kind="graph-simulation")


def dual_simulation(graph: Graph, template) -> SimulationResult:
    """Dual simulation: iterate the neighbor condition to a fixed point."""
    return _simulate(graph, template, iterate=True, kind="dual-simulation")


def strong_simulation(
    graph: Graph, template, ball_radius: Optional[int] = None
) -> SimulationResult:
    """Strong simulation: dual simulation within diameter-bounded balls.

    A vertex keeps its candidacy only if the dual simulation *restricted to
    the ball around it* (radius = template diameter by default) still
    contains it.  Tighter than dual simulation; still polynomial; still
    not exact.
    """
    started = time.perf_counter()
    template_graph = template.graph
    if ball_radius is None:
        ball_radius = _diameter(template_graph)
    base = dual_simulation(graph, template)
    result = SimulationResult("strong-simulation")
    result.iterations = base.iterations
    result.candidates = {w: set() for w in template_graph.vertices()}
    for w, candidates in base.candidates.items():
        for vertex in candidates:
            ball = _ball(graph, vertex, ball_radius)
            local = dual_simulation(graph.subgraph(ball), template)
            if vertex in local.candidates.get(w, ()):
                result.candidates[w].add(vertex)
    result.wall_seconds = time.perf_counter() - started
    return result


def _simulate(graph: Graph, template, iterate: bool, kind: str) -> SimulationResult:
    started = time.perf_counter()
    template_graph = template.graph
    result = SimulationResult(kind)
    by_label: Dict[int, Set[int]] = {}
    for v in graph.vertices():
        by_label.setdefault(graph.label(v), set()).add(v)
    candidates: Dict[int, Set[int]] = {
        w: set(by_label.get(template_graph.label(w), ()))
        for w in template_graph.vertices()
    }

    changed = True
    while changed:
        result.iterations += 1
        changed = False
        for w in template_graph.vertices():
            survivors = set()
            for v in candidates[w]:
                ok = True
                neighbors = graph.neighbors(v)
                for t_nbr in template_graph.neighbors(w):
                    if not (candidates[t_nbr] & neighbors):
                        ok = False
                        break
                if ok:
                    survivors.add(v)
            if survivors != candidates[w]:
                candidates[w] = survivors
                changed = True
        if not iterate:
            break
    # A simulation exists only if every template vertex has candidates.
    if any(not c for c in candidates.values()):
        candidates = {w: set() for w in candidates}
    result.candidates = candidates
    result.wall_seconds = time.perf_counter() - started
    return result


def _diameter(graph: Graph) -> int:
    best = 0
    for v in graph.vertices():
        lengths = shortest_path_lengths(graph, v)
        if lengths:
            best = max(best, max(lengths.values()))
    return best


def _ball(graph: Graph, center: int, radius: int) -> Set[int]:
    lengths = shortest_path_lengths(graph, center)
    return {v for v, d in lengths.items() if d <= radius}


__all__ = [
    "SimulationResult",
    "dual_simulation",
    "graph_simulation",
    "strong_simulation",
    "bfs_order",
]
