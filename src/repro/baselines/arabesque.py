"""Arabesque-style baseline: Think-Like-an-Embedding motif counting (§5.6).

Arabesque (Teixeira et al., SOSP'15) expresses graph mining as BSP rounds
of *embedding expansion*: size-``i`` embeddings are extended to size
``i+1`` each superstep, with a canonicality rule ensuring each embedding is
generated once.  Two properties drive the comparison in the paper:

* the input graph is **replicated in the memory of every worker**, so the
  largest supported graph is bounded by single-node memory;
* the embedding frontier grows combinatorially with graph density and
  pattern size — the 4-motif/LiveJournal run dies with OOM after an hour.

This module reproduces both: a level-synchronous ESU-style enumeration of
connected vertex-induced subgraphs with per-superstep frontier storage, a
replication + frontier memory model, and a configurable memory budget that
raises :class:`~repro.errors.MemoryLimitExceeded` exactly the way the real
system OOMs.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..errors import MemoryLimitExceeded
from ..graph.graph import Graph
from ..graph.isomorphism import canonical_form

#: modeled bytes per replicated edge endpoint (CSR target + bookkeeping)
BYTES_PER_EDGE_ENDPOINT = 16
#: modeled bytes per replicated vertex (offset + label)
BYTES_PER_VERTEX = 10
#: modeled bytes per stored embedding vertex (id + extension bookkeeping)
BYTES_PER_EMBEDDING_VERTEX = 24


class ArabesqueResult:
    """Counts and execution statistics of one Arabesque-style run."""

    def __init__(self, size: int, num_ranks: int) -> None:
        self.size = size
        self.num_ranks = num_ranks
        #: canonical form → number of vertex-induced embeddings
        self.counts: Dict[Tuple, int] = {}
        self.supersteps = 0
        self.embeddings_processed = 0
        self.peak_frontier = 0
        self.peak_memory_bytes = 0
        self.wall_seconds = 0.0
        self.simulated_seconds = 0.0

    def total_embeddings(self) -> int:
        return sum(self.counts.values())

    def __repr__(self) -> str:
        return (
            f"ArabesqueResult(size={self.size}, motifs={len(self.counts)}, "
            f"embeddings={self.total_embeddings()})"
        )


def replicated_graph_bytes(graph: Graph, num_ranks: int) -> int:
    """Cluster-wide bytes to hold one graph copy per worker."""
    per_copy = (
        BYTES_PER_VERTEX * graph.num_vertices
        + BYTES_PER_EDGE_ENDPOINT * 2 * graph.num_edges
    )
    return per_copy * num_ranks


def arabesque_count_motifs(
    graph: Graph,
    size: int,
    num_ranks: int = 4,
    memory_limit_bytes: Optional[int] = None,
    embedding_cost_seconds: float = 5.0e-4,
    superstep_cost_seconds: float = 2.0,
) -> ArabesqueResult:
    """Count connected ``size``-vertex motifs the Arabesque way.

    Enumerates every connected vertex-induced ``size``-subgraph exactly
    once (ESU extension rule), level-synchronously, and classifies each by
    canonical form.  Raises :class:`MemoryLimitExceeded` when replication
    plus the frontier exceeds ``memory_limit_bytes``.

    ``simulated_seconds`` models the BSP execution: embeddings are spread
    over ``num_ranks`` workers, plus a fixed cost per superstep.  The
    default constants are calibrated to the systems gap the paper
    measured — Arabesque runs on Spark/Giraph, paying JVM embedding
    materialization, canonicality filtering and shuffle serialization
    (~0.5 ms per embedding) plus per-superstep stage scheduling (~2 s);
    EXPERIMENTS.md E9 records the fit against the paper's table.
    """
    if size < 1:
        raise ValueError("motif size must be positive")
    result = ArabesqueResult(size, num_ranks)
    started = time.perf_counter()
    replication = replicated_graph_bytes(graph, num_ranks)
    result.peak_memory_bytes = replication
    _check_memory(replication, memory_limit_bytes, "graph replication")

    # Superstep 1: singleton embeddings with ESU extension sets.
    frontier: List[Tuple[Tuple[int, ...], FrozenSet[int]]] = []
    for v in graph.vertices():
        ext = frozenset(u for u in graph.neighbors(v) if u > v)
        frontier.append(((v,), ext))
    result.supersteps = 1
    result.peak_frontier = len(frontier)

    for level in range(2, size + 1):
        new_frontier: List[Tuple[Tuple[int, ...], FrozenSet[int]]] = []
        for sub, ext in frontier:
            result.embeddings_processed += 1
            root = sub[0]
            sub_set = set(sub)
            neighborhood = set()
            for s in sub:
                neighborhood.update(graph.neighbors(s))
            remaining = sorted(ext)
            while remaining:
                w = remaining.pop(0)
                exclusive = {
                    x
                    for x in graph.neighbors(w)
                    if x > root and x not in sub_set and x not in neighborhood
                }
                new_frontier.append((sub + (w,), frozenset(remaining) | exclusive))
        frontier = new_frontier
        result.supersteps += 1
        result.peak_frontier = max(result.peak_frontier, len(frontier))
        frontier_bytes = (
            len(frontier) * level * BYTES_PER_EMBEDDING_VERTEX
        )
        result.peak_memory_bytes = max(
            result.peak_memory_bytes, replication + frontier_bytes
        )
        _check_memory(
            replication + frontier_bytes,
            memory_limit_bytes,
            f"superstep {result.supersteps} frontier",
        )

    # Classification superstep: canonical form of each induced subgraph.
    for sub, _ext in frontier:
        result.embeddings_processed += 1
        induced = graph.subgraph(sub)
        key = canonical_form(induced)
        result.counts[key] = result.counts.get(key, 0) + 1

    result.wall_seconds = time.perf_counter() - started
    result.simulated_seconds = (
        result.embeddings_processed * embedding_cost_seconds / num_ranks
        + result.supersteps * superstep_cost_seconds
    )
    return result


def _check_memory(used: int, limit: Optional[int], where: str) -> None:
    if limit is not None and used > limit:
        raise MemoryLimitExceeded(used, limit, where)
