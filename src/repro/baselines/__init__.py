"""Baseline systems the paper compares against (§5.6, §6)."""

from .arabesque import (
    ArabesqueResult,
    arabesque_count_motifs,
    replicated_graph_bytes,
)
from .simulation import (
    SimulationResult,
    dual_simulation,
    graph_simulation,
    strong_simulation,
)

__all__ = [
    "ArabesqueResult",
    "SimulationResult",
    "arabesque_count_motifs",
    "dual_simulation",
    "graph_simulation",
    "replicated_graph_bytes",
    "strong_simulation",
]
