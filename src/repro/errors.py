"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class GraphError(ReproError):
    """Invalid graph construction or query (unknown vertex, self loop, ...)."""


class TemplateError(ReproError):
    """Invalid search template (disconnected, unlabeled, bad edit-distance)."""


class PrototypeError(ReproError):
    """Prototype generation failed (e.g. requested distance disconnects H0)."""


class ConstraintError(ReproError):
    """Constraint generation or verification failed."""


class PartitionError(ReproError):
    """Invalid partitioning request (zero ranks, unknown vertex, ...)."""


class EngineError(ReproError):
    """The vertex-centric engine was driven incorrectly."""


class PipelineError(ReproError):
    """The approximate-matching pipeline was configured incorrectly."""


class CheckpointError(ReproError):
    """Saving or restoring distributed search state failed."""


class MemoryLimitExceeded(ReproError):
    """A computation exceeded its configured memory budget.

    Used by baselines that replicate the whole graph per rank (Arabesque-like
    systems) to reproduce the out-of-memory behaviour reported in the paper.
    """

    def __init__(self, used_bytes: int, limit_bytes: int, where: str = "") -> None:
        self.used_bytes = used_bytes
        self.limit_bytes = limit_bytes
        self.where = where
        message = (
            f"memory budget exceeded{f' in {where}' if where else ''}: "
            f"{used_bytes} bytes used, limit {limit_bytes} bytes"
        )
        super().__init__(message)
