"""repro — Approximate pattern matching in massive graphs (SIGMOD'20).

A from-scratch Python reproduction of Reza et al., *Approximate Pattern
Matching in Massive Graphs with Precision and Recall Guarantees*
(SIGMOD 2020): edit-distance prototype generation, constraint-checking
based exact matching (local + non-local token walks), the bottom-up
approximate matching pipeline with search-space reduction and redundant
work elimination, a simulated HavoqGT-style distributed runtime, and the
evaluation harness reproducing every table and figure of the paper.

Quickstart::

    from repro import PatternTemplate, PipelineOptions, run_pipeline
    from repro.graph.generators import webgraph

    graph = webgraph(2000, seed=7)
    template = PatternTemplate.from_edges(
        [(0, 1), (1, 2), (2, 0), (2, 3)],
        labels={0: 1, 1: 3, 2: 0, 3: 7},
        name="demo",
    )
    result = run_pipeline(graph, template, k=1, options=PipelineOptions())
    print(result.total_labels_generated(), "vertex/prototype labels")
"""

from . import analysis, baselines, core, graph, runtime
from .core import (
    PatternTemplate,
    PipelineOptions,
    PipelineResult,
    PrototypeSet,
    count_motifs,
    exploratory_search,
    generate_prototypes,
    naive_search,
    run_pipeline,
)
from .errors import (
    CheckpointError,
    ConstraintError,
    EngineError,
    GraphError,
    MemoryLimitExceeded,
    PartitionError,
    PipelineError,
    PrototypeError,
    ReproError,
    TemplateError,
)
from .graph import Graph

__version__ = "1.0.0"

__all__ = [
    "CheckpointError",
    "ConstraintError",
    "EngineError",
    "Graph",
    "GraphError",
    "MemoryLimitExceeded",
    "PartitionError",
    "PatternTemplate",
    "PipelineError",
    "PipelineOptions",
    "PipelineResult",
    "PrototypeError",
    "PrototypeSet",
    "ReproError",
    "TemplateError",
    "analysis",
    "baselines",
    "core",
    "count_motifs",
    "exploratory_search",
    "generate_prototypes",
    "graph",
    "naive_search",
    "run_pipeline",
    "runtime",
    "__version__",
]
