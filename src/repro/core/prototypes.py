"""Prototype generation through recursive edge removal (§3.1).

From the supplied template ``H0``, prototypes in ``P_k`` are generated
level by level: distance ``δ+1`` prototypes are constructed from distance
``δ`` prototypes by removing one optional edge, subject to the prototype
staying connected.  Isomorphic duplicates are merged (label-preserving
isomorphism that also respects which edges are mandatory), and the
parent → child derivation links are retained: they drive the containment
rule and the match-extension enumeration optimization.

Counting convention: ``H_{0,0} = H0`` itself is a prototype, so e.g. the
6-clique with distinct labels yields ``1 + 15 + 105 + 455 + 1365 = 1941``
prototypes within ``k = 4`` — the exact number reported in §5.5.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import PrototypeError
from ..graph.algorithms import is_connected
from ..graph.graph import Edge, Graph, canonical_edge
from ..graph.isomorphism import canonical_form, find_subgraph_isomorphisms
from .kernels import structural_fingerprint
from .template import PatternTemplate


class ChildLink:
    """Derivation link ``parent --remove edge--> child`` (one level down).

    ``iso`` maps vertices of ``parent.graph - removed_edge`` onto vertices
    of the (dedup-representative) child prototype: composing a child match
    with ``iso`` yields a match of the parent minus the removed edge, which
    becomes a parent match whenever the removed edge's image is present.
    """

    __slots__ = ("parent", "child", "removed_edge", "iso")

    def __init__(
        self,
        parent: "Prototype",
        child: "Prototype",
        removed_edge: Edge,
        iso: Dict[int, int],
    ) -> None:
        self.parent = parent
        self.child = child
        self.removed_edge = removed_edge
        self.iso = iso

    def __repr__(self) -> str:
        return (
            f"ChildLink({self.parent.name} -{self.removed_edge}-> {self.child.name})"
        )


class Prototype:
    """One connected edit-distance-``distance`` variant of the template."""

    def __init__(
        self,
        proto_id: int,
        distance: int,
        index: int,
        graph: Graph,
        template: PatternTemplate,
    ) -> None:
        self.id = proto_id
        self.distance = distance
        self.index = index
        self.graph = graph
        self.template = template
        self.name = f"k{distance}_p{index}"
        self.child_links: List[ChildLink] = []
        self.parent_links: List[ChildLink] = []

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def removed_edges(self) -> List[Edge]:
        """Edges of ``H0`` absent from this prototype."""
        return [
            e for e in self.template.graph.edges() if not self.graph.has_edge(*e)
        ]

    def optional_edges(self) -> List[Edge]:
        """This prototype's edges that may still be removed."""
        return [
            e for e in sorted(self.graph.edges())
            if e not in self.template.mandatory_edges
        ]

    def children(self) -> List["Prototype"]:
        return [link.child for link in self.child_links]

    def parents(self) -> List["Prototype"]:
        return [link.parent for link in self.parent_links]

    def __repr__(self) -> str:
        return f"Prototype({self.name}, m={self.num_edges})"


class PrototypeSet:
    """All prototypes within edit-distance ``k``, organized by level."""

    def __init__(self, template: PatternTemplate, levels: List[List[Prototype]]) -> None:
        self.template = template
        self.levels = levels

    @property
    def max_distance(self) -> int:
        return len(self.levels) - 1

    def at(self, distance: int) -> List[Prototype]:
        """Prototypes at exactly ``distance`` (empty beyond max)."""
        if distance < 0:
            raise PrototypeError("distance must be non-negative")
        return self.levels[distance] if distance < len(self.levels) else []

    def all(self) -> List[Prototype]:
        return [proto for level in self.levels for proto in level]

    def __len__(self) -> int:
        return sum(len(level) for level in self.levels)

    def __iter__(self) -> Iterator[Prototype]:
        return iter(self.all())

    def by_id(self, proto_id: int) -> Prototype:
        for proto in self.all():
            if proto.id == proto_id:
                return proto
        raise PrototypeError(f"no prototype with id {proto_id}")

    def level_counts(self) -> List[int]:
        """``[1, |k=1|, |k=2|, ...]`` — the ``#p`` breakdown of the figures."""
        return [len(level) for level in self.levels]

    def __repr__(self) -> str:
        return (
            f"PrototypeSet({self.template.name!r}, k<={self.max_distance}, "
            f"counts={self.level_counts()})"
        )


def _mandatory_aware_key(graph: Graph, template: PatternTemplate) -> Tuple:
    """Canonical form that distinguishes mandatory from optional edges.

    Mandatory edges are subdivided with a reserved-label dummy vertex before
    canonicalization, so two prototypes merge only if some isomorphism maps
    mandatory edges to mandatory edges.
    """
    if not template.mandatory_edges:
        return canonical_form(graph)
    reserved = max(template.label_set()) + 1
    aux = graph.copy()
    next_id = max(graph.vertices()) + 1
    for u, v in sorted(graph.edges()):
        if canonical_edge(u, v) in template.mandatory_edges:
            aux.remove_edge(u, v)
            aux.add_vertex(next_id, reserved)
            aux.add_edge(u, next_id)
            aux.add_edge(next_id, v)
            next_id += 1
    return canonical_form(aux)


def _isomorphism_between(first: Graph, second: Graph) -> Dict[int, int]:
    """A label-preserving isomorphism ``first → second`` (must exist)."""
    for mapping in find_subgraph_isomorphisms(first, second, limit=1):
        return mapping
    raise PrototypeError("expected isomorphic graphs (canonical-form collision?)")


def generate_prototypes(
    template: PatternTemplate,
    k: int,
    max_prototypes: Optional[int] = None,
) -> PrototypeSet:
    """Generate all connected prototypes of ``template`` within distance ``k``.

    ``k`` is clamped to the template's maximum meaningful distance (beyond
    which every spanning subgraph is disconnected).  ``max_prototypes``
    guards against accidental explosion (raises :class:`PrototypeError`).
    """
    if k < 0:
        raise PrototypeError("edit-distance k must be non-negative")
    k = min(k, template.max_meaningful_distance())

    next_id = 0
    root = Prototype(next_id, 0, 0, template.graph.copy(), template)
    next_id += 1
    levels: List[List[Prototype]] = [[root]]
    total = 1

    for distance in range(1, k + 1):
        seen: Dict[Tuple, Prototype] = {}
        level: List[Prototype] = []
        for parent in levels[distance - 1]:
            for edge in parent.optional_edges():
                candidate = parent.graph.copy()
                candidate.remove_edge(*edge)
                if not is_connected(candidate):
                    continue
                key = _mandatory_aware_key(candidate, template)
                child = seen.get(key)
                if child is None:
                    child = Prototype(next_id, distance, len(level), candidate, template)
                    next_id += 1
                    level.append(child)
                    seen[key] = child
                    total += 1
                    if max_prototypes is not None and total > max_prototypes:
                        raise PrototypeError(
                            f"prototype budget exceeded ({max_prototypes}); "
                            f"lower k or raise the budget"
                        )
                    iso = {v: v for v in candidate.vertices()}
                else:
                    iso = _isomorphism_between(candidate, child.graph)
                link = ChildLink(parent, child, edge, iso)
                parent.child_links.append(link)
                child.parent_links.append(link)
        if not level:
            break
        levels.append(level)
    return PrototypeSet(template, levels)


#: process-wide generated-prototype table, keyed by exact template identity
_PROTOTYPE_CACHE: Dict[Tuple, PrototypeSet] = {}

#: cumulative cache traffic, surfaced by the batch executor's counters
_PROTOTYPE_CACHE_STATS = {"hits": 0, "misses": 0}


def cached_prototypes(
    template: PatternTemplate,
    k: int,
    max_prototypes: Optional[int] = None,
) -> PrototypeSet:
    """Class-keyed :func:`generate_prototypes` memoization.

    A :class:`PrototypeSet` is read-only after generation, so every
    pipeline run over a structurally-identical template at the same
    (clamped) ``k`` can share one set.  The key is the exact structural
    fingerprint of the template graph plus its mandatory edges — strong
    enough that prototype vertex ids, labels and derivation links apply
    verbatim to the caller's template.
    """
    key = (
        structural_fingerprint(template.graph),
        tuple(sorted(template.mandatory_edges)),
        min(k, template.max_meaningful_distance()) if k >= 0 else k,
        max_prototypes,
    )
    protos = _PROTOTYPE_CACHE.get(key)
    if protos is None:
        _PROTOTYPE_CACHE_STATS["misses"] += 1
        protos = generate_prototypes(template, k, max_prototypes)
        _PROTOTYPE_CACHE[key] = protos
    else:
        _PROTOTYPE_CACHE_STATS["hits"] += 1
    return protos


def prototype_cache_stats() -> Dict[str, int]:
    """Snapshot of the process-wide prototype-cache hit/miss counters."""
    return dict(_PROTOTYPE_CACHE_STATS)


def clear_prototype_cache() -> None:
    """Drop cached prototype sets and reset the counters (test hook)."""
    _PROTOTYPE_CACHE.clear()
    _PROTOTYPE_CACHE_STATS["hits"] = 0
    _PROTOTYPE_CACHE_STATS["misses"] = 0
