"""Fluent template construction.

Writing templates as raw edge lists with integer labels gets error-prone
once patterns carry names, mandatory edges, edge labels and wildcards.
:class:`TemplateBuilder` provides the adoption-grade front door::

    template = (
        TemplateBuilder("suspicious-cluster")
        .vertex("author", label=AUTHOR)
        .vertex("post", label=POST_POSITIVE)
        .vertex("sub", label=SUBREDDIT)
        .vertex("anything")                       # wildcard label
        .edge("author", "post")                   # optional edge
        .edge("post", "sub", mandatory=True)      # survives every prototype
        .edge("post", "anything", label=UPVOTE)   # edge-labeled
        .build()
    )

Vertex names map deterministically to the integer ids the engine uses
(insertion order); :meth:`TemplateBuilder.vertex_id` recovers the mapping
for interpreting results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import TemplateError
from .template import PatternTemplate
from .wildcards import WILDCARD


class TemplateBuilder:
    """Incremental, named construction of a :class:`PatternTemplate`."""

    def __init__(self, name: str = "template") -> None:
        self.name = name
        self._labels: Dict[str, int] = {}
        self._order: List[str] = []
        self._edges: List[Tuple[str, str]] = []
        self._mandatory: List[Tuple[str, str]] = []
        self._edge_labels: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    def vertex(self, name: str, label: Optional[int] = None) -> "TemplateBuilder":
        """Add a named vertex; ``label=None`` makes it a wildcard."""
        if name in self._labels:
            raise TemplateError(f"vertex {name!r} already defined")
        self._labels[name] = WILDCARD if label is None else int(label)
        self._order.append(name)
        return self

    def edge(
        self,
        first: str,
        second: str,
        mandatory: bool = False,
        label: Optional[int] = None,
    ) -> "TemplateBuilder":
        """Add an edge between two named vertices."""
        for name in (first, second):
            if name not in self._labels:
                raise TemplateError(f"unknown vertex {name!r}; declare it first")
        if first == second:
            raise TemplateError("self loops are not allowed in templates")
        key = (first, second)
        if key in self._edges or (second, first) in self._edges:
            raise TemplateError(f"edge {first!r}-{second!r} already defined")
        self._edges.append(key)
        if mandatory:
            self._mandatory.append(key)
        if label is not None:
            self._edge_labels[key] = int(label)
        return self

    # ------------------------------------------------------------------
    def vertex_id(self, name: str) -> int:
        """The integer id ``build()`` assigns to the named vertex."""
        try:
            return self._order.index(name)
        except ValueError as exc:
            raise TemplateError(f"unknown vertex {name!r}") from exc

    def vertex_names(self) -> Dict[int, str]:
        """``id -> name`` for interpreting result mappings."""
        return dict(enumerate(self._order))

    def has_wildcards(self) -> bool:
        return any(label == WILDCARD for label in self._labels.values())

    # ------------------------------------------------------------------
    def build(self) -> PatternTemplate:
        """Materialize the template (raises on empty/disconnected shapes).

        Wildcard-labeled templates build fine; search them with
        :func:`~repro.core.wildcards.run_wildcard_pipeline`.
        """
        if not self._order:
            raise TemplateError("template must have at least one vertex")
        ids = {name: index for index, name in enumerate(self._order)}
        edges = [(ids[a], ids[b]) for a, b in self._edges]
        labels = {ids[name]: self._labels[name] for name in self._order}
        mandatory = [(ids[a], ids[b]) for a, b in self._mandatory]
        edge_labels = {
            (min(ids[a], ids[b]), max(ids[a], ids[b])): label
            for (a, b), label in self._edge_labels.items()
        }
        return PatternTemplate.from_edges(
            edges,
            labels,
            mandatory_edges=mandatory,
            name=self.name,
            edge_labels=edge_labels,
        )

    def __repr__(self) -> str:
        return (
            f"TemplateBuilder({self.name!r}, vertices={len(self._order)}, "
            f"edges={len(self._edges)})"
        )
