"""Match enumeration and counting (§4, "Match Enumeration and Counting").

Enumeration runs on the pruned solution subgraph with per-vertex candidate
roles as a filter, so it is cheap relative to enumerating on the raw graph.
Two strategies:

* :func:`enumerate_matches` — constrained backtracking (the general path);
* :func:`extend_from_child_matches` — the paper's edit-distance-specific
  optimization: a distance-``δ`` prototype differs from its distance
  ``δ+1`` child by one edge, so its matches are exactly the child's matches
  in which that edge's image is present in the background graph.  Reusing
  the child's enumerated matches replaces a full search by one edge probe
  per match (§5.4 reports ~3.9× on 4-Motif/Youtube from this).

Counting conventions: a *mapping* is an assignment of template vertices to
graph vertices; the number of *distinct subgraphs* is mappings divided by
the prototype's automorphism count.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from ..errors import PipelineError
from ..graph.graph import Graph
from ..graph.isomorphism import automorphism_count, find_subgraph_isomorphisms
from .prototypes import Prototype
from .state import SearchState

Mapping = Dict[int, int]


def enumerate_matches(
    prototype: Prototype,
    state: SearchState,
    limit: Optional[int] = None,
) -> Iterator[Mapping]:
    """Yield match mappings of ``prototype`` within the active state.

    The backtracking search runs on the materialized pruned subgraph and is
    additionally filtered by the per-vertex candidate roles (``ω``).
    """
    pruned = state.to_graph()
    candidates = state.candidates

    def role_filter(template_vertex: int, graph_vertex: int) -> bool:
        return template_vertex in candidates.get(graph_vertex, ())

    yield from find_subgraph_isomorphisms(
        prototype.graph, pruned, limit=limit, candidate_filter=role_filter
    )


def count_match_mappings(prototype: Prototype, state: SearchState) -> int:
    """Number of match mappings of ``prototype`` in the active state."""
    return sum(1 for _ in enumerate_matches(prototype, state))


def matches_from_paths(
    walk: Sequence[int], rows: Sequence[Sequence[int]]
) -> List[Mapping]:
    """Materialize full-walk match mappings from dense path rows.

    ``rows[p][position]`` is the graph vertex the ``p``-th completed
    full-walk token visited at ``position``; the resulting mapping is
    ``{walk[position]: rows[p][position]}`` — exactly the dict the token
    walk's ``_record_match`` builds one completion at a time.  A walk
    visits repeated roles at consistent vertices by construction, so the
    later position silently overwriting the earlier one is lossless.
    """
    return [
        {role: row[position] for position, role in enumerate(walk)}
        for row in rows
    ]


def distinct_match_count(prototype: Prototype, mapping_count: int) -> int:
    """Convert a mapping count into a distinct-subgraph count."""
    autos = automorphism_count(prototype.graph)
    if mapping_count % autos:
        raise PipelineError(
            f"mapping count {mapping_count} not divisible by automorphisms {autos}"
        )
    return mapping_count // autos


def extend_from_child_matches(
    parent: Prototype,
    child: Prototype,
    child_matches: Sequence[Mapping],
    graph: Graph,
) -> List[Mapping]:
    """Derive ``parent`` matches from enumerated matches of one child.

    ``child`` must be a dedup representative linked from ``parent`` (one
    optional edge removed).  Every parent match is a child match (through
    the recorded isomorphism) whose removed edge is present in ``graph``,
    so filtering the child's matches is complete and sound.
    """
    link = next(
        (l for l in parent.child_links if l.child is child),
        None,
    )
    if link is None:
        raise PipelineError(
            f"{child.name} is not a derivation child of {parent.name}"
        )
    a, b = link.removed_edge
    required_label = parent.graph.edge_label(a, b)
    # iso maps (parent − removed_edge) vertices onto child vertices, so the
    # parent-side mapping is m_child ∘ iso.
    iso = link.iso
    matches: List[Mapping] = []
    for child_match in child_matches:
        candidate = {w: child_match[iso[w]] for w in iso}
        if not graph.has_edge(candidate[a], candidate[b]):
            continue
        if required_label is not None and graph.edge_label(
            candidate[a], candidate[b]
        ) != required_label:
            continue
        matches.append(candidate)
    return matches


def state_from_matches(
    state: SearchState, prototype: Prototype, matches: Sequence[Mapping]
) -> SearchState:
    """A fresh state containing exactly the vertices/edges of ``matches``.

    This is the enumeration-based exact verification path: the returned
    state *is* the solution subgraph by construction.
    """
    candidates: Dict[int, set] = {}
    active_edges: Dict[int, set] = {}
    proto_edges = list(prototype.graph.edges())
    for mapping in matches:
        for template_vertex, graph_vertex in mapping.items():
            candidates.setdefault(graph_vertex, set()).add(template_vertex)
        for u, v in proto_edges:
            gu, gv = mapping[u], mapping[v]
            active_edges.setdefault(gu, set()).add(gv)
            active_edges.setdefault(gv, set()).add(gu)
    for vertex in candidates:
        active_edges.setdefault(vertex, set())
    return SearchState(state.graph, candidates, active_edges)
