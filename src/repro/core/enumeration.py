"""Match enumeration and counting (§4, "Match Enumeration and Counting").

Enumeration runs on the pruned solution subgraph with per-vertex candidate
roles as a filter, so it is cheap relative to enumerating on the raw graph.
Two strategies:

* :func:`enumerate_matches` — constrained backtracking (the general path);
* :func:`extend_from_child_matches` — the paper's edit-distance-specific
  optimization: a distance-``δ`` prototype differs from its distance
  ``δ+1`` child by one edge, so its matches are exactly the child's matches
  in which that edge's image is present in the background graph.  Reusing
  the child's enumerated matches replaces a full search by one edge probe
  per match (§5.4 reports ~3.9× on 4-Motif/Youtube from this).

Counting conventions: a *mapping* is an assignment of template vertices to
graph vertices; the number of *distinct subgraphs* is mappings divided by
the prototype's automorphism count.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import PipelineError
from ..graph.graph import Graph
from ..graph.isomorphism import (
    _match_order,
    automorphism_count,
    find_subgraph_isomorphisms,
)
from .prototypes import Prototype
from .state import SearchState

Mapping = Dict[int, int]


def enumerate_matches(
    prototype: Prototype,
    state: SearchState,
    limit: Optional[int] = None,
) -> Iterator[Mapping]:
    """Yield match mappings of ``prototype`` within the active state.

    The backtracking search runs on the materialized pruned subgraph and is
    additionally filtered by the per-vertex candidate roles (``ω``).
    """
    pruned = state.to_graph()
    candidates = state.candidates

    def role_filter(template_vertex: int, graph_vertex: int) -> bool:
        return template_vertex in candidates.get(graph_vertex, ())

    yield from find_subgraph_isomorphisms(
        prototype.graph, pruned, limit=limit, candidate_filter=role_filter
    )


def count_match_mappings(prototype: Prototype, state: SearchState) -> int:
    """Number of match mappings of ``prototype`` in the active state."""
    return sum(1 for _ in enumerate_matches(prototype, state))


class ArrayMatchSet:
    """Dense match table produced by :func:`enumerate_matches_array`.

    ``rows[p][col]`` is the *dense CSR index* of the vertex the ``p``-th
    match assigns to pattern vertex ``order[col]``; :meth:`mappings`
    materializes the same per-match dicts :func:`enumerate_matches`
    yields.  Keeping the dense matrix as the stored form lets array
    consumers (:func:`astate_from_matches`) stay in array land.
    """

    __slots__ = ("order", "rows", "csr", "_mappings")

    def __init__(self, order: Tuple[int, ...], rows: np.ndarray, csr) -> None:
        self.order = order
        self.rows = rows
        self.csr = csr
        self._mappings: Optional[List[Mapping]] = None

    def __len__(self) -> int:
        return int(self.rows.shape[0])

    def mappings(self) -> List[Mapping]:
        """Materialize the per-match dicts (cached)."""
        if self._mappings is None:
            if self.rows.shape[1]:
                vid_rows = self.csr.order[self.rows].tolist()
            else:
                vid_rows = [[] for _ in range(self.rows.shape[0])]
            self._mappings = matches_from_paths(self.order, vid_rows)
        return self._mappings

    def __iter__(self) -> Iterator[Mapping]:
        return iter(self.mappings())


def enumerate_matches_array(
    prototype: Prototype,
    astate,
    limit: Optional[int] = None,
) -> ArrayMatchSet:
    """Array form of :func:`enumerate_matches` (vectorized backtracking).

    Runs the same VF2-ordered search as the dict backtracker, but carries
    the whole candidate frontier as one dense matrix per pattern position:
    each extension step is a batched CSR neighbor gather plus vectorized
    role-mask / degree / injectivity / edge-label tests, never touching
    per-vertex dict state.  Emits exactly the mapping *set* the dict
    matcher emits on the written-back state (enumeration order differs, so
    ``limit`` truncates an unspecified order).
    """
    pattern = prototype.graph
    csr = astate.csr
    n = csr.num_vertices
    order = _match_order(pattern)
    if not order:
        return ArrayMatchSet((), np.zeros((1, 0), dtype=np.int64), csr)
    col_of = {pv: col for col, pv in enumerate(order)}
    back_neighbors: List[List[int]] = []
    for idx, pv in enumerate(order):
        placed = order[:idx]
        back_neighbors.append(
            [q for q in placed if q in pattern.neighbors(pv)]
        )

    empty = ArrayMatchSet(
        tuple(order), np.zeros((0, len(order)), dtype=np.int64), csr
    )
    role_bit = astate.role_bit
    if any(pv not in role_bit for pv in order):
        return empty

    role_mask = astate.role_mask
    wide = role_mask.ndim > 1

    def role_column(pv: int) -> Tuple[np.ndarray, np.uint64]:
        """The uint64 mask column holding ``pv``'s bit, plus that bit."""
        bit = role_bit[pv]
        if wide:
            word, offset = divmod(bit.bit_length() - 1, 64)
            return role_mask[:, word], np.uint64(1 << offset)
        return role_mask, np.uint64(bit)

    # Pruned view: an edge exists iff its smaller->larger slot is alive
    # with both endpoints active (the same asymmetric-aliveness rule
    # SearchState.to_graph applies); ``sym`` is its symmetric closure for
    # neighbor gathers.
    active = astate.vertex_active
    canon = (
        astate.edge_alive
        & csr.vid_gt
        & active[csr.src]
        & active[csr.indices]
    )
    sym = canon | canon[csr.mirror]
    deg = np.bincount(csr.src[sym], minlength=n).astype(np.int64)

    check_edge_labels = pattern.has_edge_labels
    sel_idx = np.nonzero(sym)[0]
    codes_sorted = None
    elab_sorted = None
    if len(order) > 1:
        codes = csr.src[sel_idx] * np.int64(n) + csr.indices[sel_idx]
        sort = np.argsort(codes)
        codes_sorted = codes[sort]
        if check_edge_labels and csr.edge_label_codes is not None:
            elab_sorted = csr.edge_label_codes[sel_idx][sort]

    def required_code(pv: int, anchor: int) -> Optional[int]:
        """CSR code the (pv, anchor) pattern edge demands; None = any."""
        required = pattern.edge_label(pv, anchor)
        if required is None:
            return None
        return csr.edge_label_ids.get(required, -1)

    def slot_labels(slots: np.ndarray) -> np.ndarray:
        if csr.edge_label_codes is None:
            return np.zeros(slots.shape[0], dtype=np.int64)
        return csr.edge_label_codes[slots]

    pv0 = order[0]
    mask_col, bitval = role_column(pv0)
    start = np.nonzero(
        ((mask_col & bitval) != np.uint64(0))
        & (deg >= pattern.degree(pv0))
    )[0]
    rows = start.reshape(-1, 1)

    for idx in range(1, len(order)):
        if not rows.shape[0]:
            return empty
        pv = order[idx]
        anchors = back_neighbors[idx]
        pdeg = pattern.degree(pv)
        mask_col, bitval = role_column(pv)
        if anchors:
            av = rows[:, col_of[anchors[0]]]
            starts = csr.indptr[av]
            counts = csr.indptr[av + 1] - starts
            total = int(counts.sum())
            if total == 0:
                return empty
            row_id = np.repeat(np.arange(rows.shape[0]), counts)
            offsets = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            slots = np.repeat(starts, counts) + offsets
            cand = csr.indices[slots]
            ok = sym[slots]
            ok &= (mask_col[cand] & bitval) != np.uint64(0)
            ok &= deg[cand] >= pdeg
            if check_edge_labels:
                code = required_code(pv, anchors[0])
                if code is not None:
                    ok &= slot_labels(slots) == code
            for col in range(idx):
                ok &= cand != rows[row_id, col]
            for anchor in anchors[1:]:
                if not codes_sorted.shape[0]:
                    ok &= False
                    break
                aimg = rows[row_id, col_of[anchor]]
                query = cand * np.int64(n) + aimg
                pos = np.searchsorted(codes_sorted, query)
                pos_c = np.minimum(pos, codes_sorted.shape[0] - 1)
                found = codes_sorted[pos_c] == query
                ok &= found
                if check_edge_labels:
                    code = required_code(pv, anchor)
                    if code is not None:
                        lab = np.where(
                            found, elab_sorted[pos_c]
                            if elab_sorted is not None
                            else np.int64(0), np.int64(-1),
                        )
                        ok &= lab == code
            keep = np.nonzero(ok)[0]
            rows = np.concatenate(
                [rows[row_id[keep]], cand[keep][:, None]], axis=1
            )
        else:
            # Disconnected pattern component: fresh cross product.
            cand = np.nonzero(
                ((mask_col & bitval) != np.uint64(0)) & (deg >= pdeg)
            )[0]
            if not cand.shape[0]:
                return empty
            k, m = rows.shape[0], cand.shape[0]
            row_id = np.repeat(np.arange(k), m)
            tiled = np.tile(cand, k)
            ok = np.ones(k * m, dtype=bool)
            for col in range(idx):
                ok &= tiled != rows[row_id, col]
            keep = np.nonzero(ok)[0]
            rows = np.concatenate(
                [rows[row_id[keep]], tiled[keep][:, None]], axis=1
            )

    if limit is not None and rows.shape[0] > limit:
        rows = rows[:limit]
    return ArrayMatchSet(tuple(order), rows, csr)


def matches_from_paths(
    walk: Sequence[int], rows: Sequence[Sequence[int]]
) -> List[Mapping]:
    """Materialize full-walk match mappings from dense path rows.

    ``rows[p][position]`` is the graph vertex the ``p``-th completed
    full-walk token visited at ``position``; the resulting mapping is
    ``{walk[position]: rows[p][position]}`` — exactly the dict the token
    walk's ``_record_match`` builds one completion at a time.  A walk
    visits repeated roles at consistent vertices by construction, so the
    later position silently overwriting the earlier one is lossless.
    """
    return [
        {role: row[position] for position, role in enumerate(walk)}
        for row in rows
    ]


def distinct_match_count(prototype: Prototype, mapping_count: int) -> int:
    """Convert a mapping count into a distinct-subgraph count."""
    autos = automorphism_count(prototype.graph)
    if mapping_count % autos:
        raise PipelineError(
            f"mapping count {mapping_count} not divisible by automorphisms {autos}"
        )
    return mapping_count // autos


def extend_from_child_matches(
    parent: Prototype,
    child: Prototype,
    child_matches: Sequence[Mapping],
    graph: Graph,
) -> List[Mapping]:
    """Derive ``parent`` matches from enumerated matches of one child.

    ``child`` must be a dedup representative linked from ``parent`` (one
    optional edge removed).  Every parent match is a child match (through
    the recorded isomorphism) whose removed edge is present in ``graph``,
    so filtering the child's matches is complete and sound.
    """
    link = next(
        (l for l in parent.child_links if l.child is child),
        None,
    )
    if link is None:
        raise PipelineError(
            f"{child.name} is not a derivation child of {parent.name}"
        )
    a, b = link.removed_edge
    required_label = parent.graph.edge_label(a, b)
    # iso maps (parent − removed_edge) vertices onto child vertices, so the
    # parent-side mapping is m_child ∘ iso.
    iso = link.iso
    matches: List[Mapping] = []
    for child_match in child_matches:
        candidate = {w: child_match[iso[w]] for w in iso}
        if not graph.has_edge(candidate[a], candidate[b]):
            continue
        if required_label is not None and graph.edge_label(
            candidate[a], candidate[b]
        ) != required_label:
            continue
        matches.append(candidate)
    return matches


def extend_from_child_matches_array(
    parent: Prototype,
    child: Prototype,
    child_set: ArrayMatchSet,
) -> ArrayMatchSet:
    """Array form of :func:`extend_from_child_matches`.

    The child's dense match table is permuted through the recorded
    isomorphism onto the parent's vertex order, then the removed edge is
    probed for every match at once with one batched CSR row gather
    (plus the edge-label test when the parent edge carries one).
    """
    link = next(
        (l for l in parent.child_links if l.child is child),
        None,
    )
    if link is None:
        raise PipelineError(
            f"{child.name} is not a derivation child of {parent.name}"
        )
    a, b = link.removed_edge
    required_label = parent.graph.edge_label(a, b)
    iso = link.iso
    csr = child_set.csr
    child_col = {pv: col for col, pv in enumerate(child_set.order)}
    order = tuple(sorted(iso))
    k = child_set.rows.shape[0]
    if not k:
        return ArrayMatchSet(
            order, np.zeros((0, len(order)), dtype=np.int64), csr
        )
    rows = np.stack(
        [child_set.rows[:, child_col[iso[w]]] for w in order], axis=1
    )
    pa = rows[:, order.index(a)]
    pb = rows[:, order.index(b)]
    starts = csr.indptr[pa]
    counts = csr.indptr[pa + 1] - starts
    total = int(counts.sum())
    ok = np.zeros(k, dtype=bool)
    if total:
        row_id = np.repeat(np.arange(k), counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        slots = np.repeat(starts, counts) + offsets
        hit = csr.indices[slots] == pb[row_id]
        if required_label is not None:
            if csr.edge_label_codes is None:
                hit &= False
            else:
                code = csr.edge_label_ids.get(required_label, -1)
                hit &= csr.edge_label_codes[slots] == code
        np.logical_or.at(ok, row_id, hit)
    return ArrayMatchSet(order, rows[ok], csr)


def state_from_matches(
    state: SearchState, prototype: Prototype, matches: Sequence[Mapping]
) -> SearchState:
    """A fresh state containing exactly the vertices/edges of ``matches``.

    This is the enumeration-based exact verification path: the returned
    state *is* the solution subgraph by construction.
    """
    candidates: Dict[int, set] = {}
    active_edges: Dict[int, set] = {}
    proto_edges = list(prototype.graph.edges())
    for mapping in matches:
        for template_vertex, graph_vertex in mapping.items():
            candidates.setdefault(graph_vertex, set()).add(template_vertex)
        for u, v in proto_edges:
            gu, gv = mapping[u], mapping[v]
            active_edges.setdefault(gu, set()).add(gv)
            active_edges.setdefault(gv, set()).add(gu)
    for vertex in candidates:
        active_edges.setdefault(vertex, set())
    return SearchState(state.graph, candidates, active_edges)


def astate_from_matches(astate, prototype: Prototype, match_set):
    """Array form of :func:`state_from_matches`.

    Rebuilds ``astate``'s role mask and edge aliveness in place so the
    state contains exactly the vertices/edges of ``match_set`` — the
    array-native enumeration-based verification step.  ``match_set`` is
    an :class:`ArrayMatchSet` over the same CSR.
    """
    csr = astate.csr
    n = csr.num_vertices
    role_bit = astate.role_bit
    role_mask = astate.role_mask
    wide = role_mask.ndim > 1
    new_mask = np.zeros_like(role_mask)
    rows = match_set.rows
    col_of = {pv: col for col, pv in enumerate(match_set.order)}
    for col, pv in enumerate(match_set.order):
        bit = role_bit[pv]
        if wide:
            word, offset = divmod(bit.bit_length() - 1, 64)
            np.bitwise_or.at(
                new_mask[:, word], rows[:, col], np.uint64(1 << offset)
            )
        else:
            np.bitwise_or.at(new_mask, rows[:, col], np.uint64(bit))

    alive = np.zeros_like(astate.edge_alive)
    proto_edges = list(prototype.graph.edges())
    if rows.shape[0] and proto_edges and csr.num_directed_edges:
        heads = []
        tails = []
        for u, v in proto_edges:
            heads.append(rows[:, col_of[u]])
            tails.append(rows[:, col_of[v]])
        head = np.concatenate(heads)
        tail = np.concatenate(tails)
        wanted = np.unique(
            np.concatenate(
                [head * np.int64(n) + tail, tail * np.int64(n) + head]
            )
        )
        all_codes = csr.src * np.int64(n) + csr.indices
        sort = np.argsort(all_codes)
        pos = np.searchsorted(all_codes[sort], wanted)
        pos = np.minimum(pos, sort.shape[0] - 1)
        hit = all_codes[sort][pos] == wanted
        alive[sort[pos[hit]]] = True

    astate.role_mask = new_mask
    astate.vertex_active = (
        (new_mask != np.uint64(0)).any(axis=1)
        if wide
        else new_mask != np.uint64(0)
    )
    astate.edge_alive = alive
    return astate
