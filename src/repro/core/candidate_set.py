"""Maximum candidate set generation — ``M*`` (§3.1, Fig. 1).

``M*`` is the union of all possible approximate matches of the template,
irrespective of edit-distance.  The key insight making it cheap: it depends
only on *local* information.  A vertex can participate in some prototype
match as role ``a`` only if

* its label equals ``l(a)``;
* every *mandatory* neighbor of ``a`` is witnessed by an active neighbor
  (mandatory edges survive in every prototype); and
* at least one template-neighbor of ``a`` is witnessed at all — every
  prototype is connected over the full vertex set ``W0``, so role ``a``
  keeps at least one of its template edges in any prototype.

The procedure iterates these conditions to a fixed point, eliminating
edges to eliminated neighbors along the way (the paper calls this out as a
key optimization to limit network traffic in later pipeline steps).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set, Tuple

from ..runtime.engine import Engine
from ..graph.graph import canonical_edge
from .arraystate import (
    ArraySearchState,
    array_kernel_fixpoint,
)
from .kernels import (
    cached_role_kernel,
    kernel_fixpoint,
    structural_fingerprint,
)
from .lcc import _exchange_candidacies, _has_adjacent_pair
from .state import SearchState
from .template import PatternTemplate


class CandidateSetMemo:
    """Cross-template ``M*`` memo for batched runs over one graph.

    ``M*`` is edit-distance-independent (§3.1): it depends only on the
    template's labels, edges and mandatory edges — so template-library
    classes that differ only in ``k`` (or repeat runs of one class) can
    share a single background traversal.  The owner scopes one memo to
    one background graph; keys are the template's structural fingerprint
    plus its mandatory edges.  Lookups return a fresh :meth:`SearchState
    .copy` because the pipeline mutates ``M*`` into per-level scopes.
    """

    __slots__ = ("_states", "hits", "misses")

    def __init__(self) -> None:
        self._states: Dict[Tuple, SearchState] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(template: PatternTemplate) -> Tuple:
        return (
            structural_fingerprint(template.graph),
            tuple(sorted(template.mandatory_edges)),
        )

    def get(self, template: PatternTemplate) -> Optional[SearchState]:
        state = self._states.get(self.key_for(template))
        if state is None:
            return None
        self.hits += 1
        return state.copy()

    def put(self, template: PatternTemplate, state: SearchState) -> None:
        self.misses += 1
        self._states[self.key_for(template)] = state.copy()


def max_candidate_set(
    graph,
    template: PatternTemplate,
    engine: Engine,
    role_kernel: bool = True,
    delta: bool = True,
    array_state: bool = False,
    memo: Optional[CandidateSetMemo] = None,
    adaptive: bool = False,
) -> SearchState:
    """Compute ``M*`` as a :class:`SearchState` over ``graph``.

    ``role_kernel``/``delta``/``array_state`` select the bitmask,
    semi-naive and vectorized-CSR hot paths; the fixed point is identical
    either way.  The array path seeds the initial labeling directly in
    array form and converts to the dict state only at the boundary.
    ``memo`` (batched runs) returns a cached fixed point for a
    structurally-identical template without touching the graph at all.
    ``adaptive`` (array path only) enables the metrics-driven
    dense/sparse round switch of :func:`array_kernel_fixpoint` — the
    full-graph M* fixpoint is where elimination cascades are densest, so
    this is the switch's main beneficiary.
    """
    if memo is not None:
        cached = memo.get(template)
        if cached is not None:
            return cached
    tracer = engine.tracer
    stats = engine.stats
    if tracer.enabled:
        before_messages = stats.total_messages
        before_remote = stats.total_remote_messages
    with stats.phase("max_candidate_set"), tracer.span(
        "max_candidate_set"
    ) as span:
        state = _compute_max_candidate_set(
            graph, template, engine, role_kernel, delta, array_state,
            adaptive,
        )
    if tracer.enabled:
        vertices, edges = state.active_counts()
        span.add(
            vertices=vertices,
            edges=edges,
            messages=stats.total_messages - before_messages,
            remote_messages=stats.total_remote_messages - before_remote,
        )
    if memo is not None:
        memo.put(template, state)
    return state


def _compute_max_candidate_set(
    graph,
    template: PatternTemplate,
    engine: Engine,
    role_kernel: bool,
    delta: bool,
    array_state: bool,
    adaptive: bool = False,
) -> SearchState:
    """Fixpoint body of :func:`max_candidate_set` (caller owns phase/span)."""
    if role_kernel:
        kernel = cached_role_kernel(template.graph)
        mandatory = kernel.mandatory_masks(template.mandatory_edges)
        if array_state:
            astate = ArraySearchState.initial(graph, template)
            array_kernel_fixpoint(
                astate, kernel, engine,
                delta=delta, mandatory_masks=mandatory,
                adaptive=adaptive,
            )
            return astate.to_search_state()
        state = SearchState.initial(graph, template)
        kernel_fixpoint(
            state, kernel, engine, delta=delta, mandatory_masks=mandatory
        )
        return state
    state = SearchState.initial(graph, template)
    mandatory_neighbors = _mandatory_neighbor_map(template)
    template_graph = template.graph
    changed = True
    while changed:
        received = _exchange_candidacies(state, engine)
        changed = _apply_round(
            state, template_graph, mandatory_neighbors, received
        )
    return state


def _mandatory_neighbor_map(template: PatternTemplate) -> Dict[int, Set[int]]:
    """Template vertex → the neighbors joined to it by mandatory edges."""
    mandatory: Dict[int, Set[int]] = {w: set() for w in template.vertices()}
    for u, v in template.mandatory_edges:
        mandatory[u].add(v)
        mandatory[v].add(u)
    return mandatory


def _apply_round(
    state: SearchState,
    template_graph,
    mandatory_neighbors: Dict[int, Set[int]],
    received: Dict[int, Dict[int, FrozenSet[int]]],
) -> bool:
    changed = False
    new_candidates: Dict[int, Set[int]] = {}
    for vertex, roles in state.candidates.items():
        inbox = received.get(vertex, {})
        active = state.active_edges.get(vertex, ())
        surviving = set()
        for role in roles:
            if _role_viable(
                role, template_graph, mandatory_neighbors, inbox, active
            ):
                surviving.add(role)
        if surviving != roles:
            changed = True
        if surviving:
            new_candidates[vertex] = surviving

    for vertex in list(state.candidates):
        if vertex not in new_candidates:
            state.deactivate_vertex(vertex)
        else:
            state.candidates[vertex] = new_candidates[vertex]

    for vertex in list(state.candidates):
        roles_v = state.candidates[vertex]
        for nbr in list(state.active_edges.get(vertex, ())):
            if nbr < vertex and nbr in state.candidates:
                continue  # the pair is handled from nbr's side
            roles_u = state.candidates.get(nbr)
            if not roles_u or not _has_adjacent_pair(template_graph, roles_v, roles_u):
                state.deactivate_edge(vertex, nbr)
                changed = True
    return changed


def _role_viable(
    role: int,
    template_graph,
    mandatory_neighbors: Dict[int, Set[int]],
    inbox: Dict[int, FrozenSet[int]],
    active_neighbors,
) -> bool:
    required_any = template_graph.neighbors(role)
    if not required_any:  # single-vertex template: label match suffices
        return True
    witnessed = set()
    for nbr in active_neighbors:
        witnessed.update(inbox.get(nbr, ()))
    for mandatory in mandatory_neighbors.get(role, ()):
        if mandatory not in witnessed:
            return False
    return bool(required_any & witnessed)


__all__ = ["CandidateSetMemo", "max_candidate_set", "canonical_edge"]
