"""Result output in the paper's three derived forms (§1, "Target Problem").

The primary product of the pipeline is the per-vertex match vector, but the
paper calls out three derived outputs users need, all with the same
guarantees:

  (i) the union of all the matches;
 (ii) the union of matches for each template version (prototype) separately;
(iii) the full match enumeration for each template version.

This module materializes each form and writes them in documented on-disk
formats (plain text, one record per line) so downstream tooling — or the
``python -m repro`` CLI — can consume results without Python.

File formats
------------
* *label file* (bulk labeling, Def. 3): ``vertex proto_id proto_id ...``
* *union edge list*: ``u v`` per line, canonical order, with a header
  comment naming the prototypes covered;
* *match enumeration*: ``proto_name w0:v0 w1:v1 ...`` — one exact match
  mapping per line, template vertex to graph vertex.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..errors import PipelineError
from ..graph.graph import Edge, Graph
from .arraystate import ArraySearchState
from .enumeration import enumerate_matches_array
from .results import PipelineResult
from .state import SearchState

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Derived forms (in memory)
# ----------------------------------------------------------------------
def union_of_all_matches(result: PipelineResult) -> Tuple[Set[int], Set[Edge]]:
    """Form (i): vertices and edges participating in any prototype match."""
    vertices: Set[int] = set(result.match_vectors)
    edges: Set[Edge] = set()
    for outcome in result.outcomes():
        edges |= outcome.solution_edges
    return vertices, edges


def union_per_prototype(
    result: PipelineResult,
) -> Dict[int, Tuple[Set[int], Set[Edge]]]:
    """Form (ii): per-prototype solution subgraphs, keyed by prototype id."""
    return {
        outcome.proto_id: (
            set(outcome.solution_vertices),
            set(outcome.solution_edges),
        )
        for outcome in result.outcomes()
    }


def enumerate_all_matches(
    result: PipelineResult,
    graph: Graph,
    limit_per_prototype: Optional[int] = None,
) -> Iterator[Tuple[str, Dict[int, int]]]:
    """Form (iii): yield ``(prototype name, mapping)`` for every exact match.

    Uses the stored match lists when the run collected them; otherwise
    re-enumerates on each prototype's (small, exact) solution subgraph.
    """
    for outcome in result.outcomes():
        if outcome.matches is not None:
            matches: Sequence[Dict[int, int]] = outcome.matches
            if limit_per_prototype is not None:
                matches = matches[:limit_per_prototype]
            for mapping in matches:
                yield outcome.name, mapping
            continue
        astate = _solution_astate(graph, outcome)
        match_set = enumerate_matches_array(
            outcome.prototype, astate, limit=limit_per_prototype
        )
        for mapping in match_set.mappings():
            yield outcome.name, mapping


def _solution_astate(graph: Graph, outcome) -> ArraySearchState:
    """Array view of one outcome's exact solution subgraph.

    The CSR of ``graph`` is memoized (:func:`~repro.core.arraystate.csr_of`),
    so re-enumeration after a pipeline run reuses the run's own CSR.
    """
    from .kernels import cached_role_kernel

    kernel = cached_role_kernel(outcome.prototype.graph)
    return ArraySearchState.from_search_state(
        _solution_state(graph, outcome), roles=kernel.roles
    )


def _solution_state(graph: Graph, outcome) -> SearchState:
    """Rebuild a SearchState over one outcome's exact solution subgraph."""
    roles_by_label: Dict[int, Set[int]] = {}
    proto_graph = outcome.prototype.graph
    for w in proto_graph.vertices():
        roles_by_label.setdefault(proto_graph.label(w), set()).add(w)
    candidates = {}
    for vertex in outcome.solution_vertices:
        roles = roles_by_label.get(graph.label(vertex))
        if roles:
            candidates[vertex] = set(roles)
    active_edges: Dict[int, Set[int]] = {v: set() for v in candidates}
    for u, v in outcome.solution_edges:
        active_edges.setdefault(u, set()).add(v)
        active_edges.setdefault(v, set()).add(u)
    return SearchState(graph, candidates, active_edges)


def participation_rates(
    result: PipelineResult, graph: Graph
) -> Dict[int, Dict[int, int]]:
    """Def. 3's richer feature variant: per-vertex match participation counts.

    "our techniques could also populate the vector with prototype
    participation rates, should a richer set of features be desired" —
    returns ``{vertex: {prototype id: number of match mappings the vertex
    participates in}}``.  Zero-count entries are omitted.
    """
    proto_ids = {p.name: p.id for p in result.prototype_set}
    rates: Dict[int, Dict[int, int]] = {}
    for name, mapping in enumerate_all_matches(result, graph):
        proto_id = proto_ids[name]
        for vertex in set(mapping.values()):
            bucket = rates.setdefault(vertex, {})
            bucket[proto_id] = bucket.get(proto_id, 0) + 1
    return rates


# ----------------------------------------------------------------------
# Writers
# ----------------------------------------------------------------------
def write_match_labels(result: PipelineResult, path: PathLike) -> int:
    """Write the bulk-labeling output: one matching vertex per line.

    Returns the number of (vertex, prototype) labels written — the
    quantity Fig. 8's bottom row reports.
    """
    written = 0
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            f"# approximate match vectors: template={result.template_name} "
            f"k={result.k} prototypes={len(result.prototype_set)}\n"
        )
        for vertex in sorted(result.match_vectors):
            ids = sorted(result.match_vectors[vertex])
            handle.write(f"{vertex} " + " ".join(map(str, ids)) + "\n")
            written += len(ids)
    return written


def write_union_subgraph(
    result: PipelineResult,
    path: PathLike,
    proto_id: Optional[int] = None,
) -> int:
    """Write a union-of-matches edge list (all prototypes, or one).

    Returns the number of edges written.
    """
    if proto_id is None:
        vertices, edges = union_of_all_matches(result)
        scope = "all prototypes"
    else:
        per_proto = union_per_prototype(result)
        if proto_id not in per_proto:
            raise PipelineError(f"no outcome for prototype id {proto_id}")
        vertices, edges = per_proto[proto_id]
        scope = f"prototype {proto_id}"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            f"# union of matches ({scope}): {len(vertices)} vertices, "
            f"{len(edges)} edges\n"
        )
        for u, v in sorted(edges):
            handle.write(f"{u} {v}\n")
    return len(edges)


def write_match_enumeration(
    result: PipelineResult,
    graph: Graph,
    path: PathLike,
    limit_per_prototype: Optional[int] = None,
) -> int:
    """Write the full match enumeration; returns the match count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            f"# match enumeration: template={result.template_name} k={result.k}\n"
        )
        for name, mapping in enumerate_all_matches(
            result, graph, limit_per_prototype
        ):
            pairs = " ".join(
                f"{w}:{v}" for w, v in sorted(mapping.items())
            )
            handle.write(f"{name} {pairs}\n")
            count += 1
    return count


def read_match_labels(path: PathLike) -> Dict[int, List[int]]:
    """Read a label file written by :func:`write_match_labels`."""
    vectors: Dict[int, List[int]] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            vectors[int(parts[0])] = [int(p) for p in parts[1:]]
    return vectors
