"""Top-down exploratory search mode (§4, §5.5).

The bottom-up pipeline (Alg. 1) requires a fixed ``k``.  Exploratory search
inverts the sweep: start with exact matches of the full template and
*relax* — increase the edit-distance one level at a time — until a
user-defined stopping condition is met (by default: the first level at
which any match exists, the WDC-4 6-Clique scenario of §5.5).

Each level reuses the same prototype search machinery; the maximum
candidate set is computed once, and NLCC work recycling applies across
levels exactly as in the bottom-up mode (here it flows "top-down", the
first direction of Obs. 2).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from ..graph.graph import Graph
from ..runtime.engine import Engine
from ..runtime.messages import MessageStats
from ..runtime.partition import PartitionedGraph
from .candidate_set import max_candidate_set
from .constraints import generate_constraints
from .ordering import order_constraints
from .pipeline import PipelineOptions, _array_level_eligible, merge_message_stats
from .prototypes import generate_prototypes
from .results import LevelReport, PipelineResult
from .search import search_prototype
from .state import NlccCache, SearchState
from .template import PatternTemplate

#: stop as soon as a level produced at least one matching vertex
def first_match_condition(level: LevelReport) -> bool:
    """Default stopping condition: some prototype at this level matched."""
    return any(outcome.has_matches for outcome in level.outcomes)


def exploratory_search(
    graph: Graph,
    template: PatternTemplate,
    max_k: Optional[int] = None,
    stop_condition: Callable[[LevelReport], bool] = first_match_condition,
    options: Optional[PipelineOptions] = None,
) -> PipelineResult:
    """Search top-down, relaxing the template until ``stop_condition``.

    Returns a :class:`PipelineResult` whose levels run from distance 0
    upward; levels beyond the stopping level are not searched.  If no level
    satisfies the condition within ``max_k`` (default: the template's
    maximum meaningful distance), all levels appear with their (empty)
    outcomes.
    """
    options = options or PipelineOptions()
    if max_k is None:
        max_k = template.max_meaningful_distance()
    with options.tracer.span(
        "pipeline", template=template.name, k=max_k, mode="exploratory"
    ):
        return _run_exploratory(graph, template, max_k, stop_condition, options)


def _run_exploratory(
    graph: Graph,
    template: PatternTemplate,
    max_k: int,
    stop_condition: Callable[[LevelReport], bool],
    options: PipelineOptions,
) -> PipelineResult:
    """Top-down sweep body; the caller owns the ``pipeline`` span."""
    tracer = options.tracer
    wall_start = time.perf_counter()
    protos = generate_prototypes(template, max_k, options.max_prototypes)
    label_frequencies = graph.label_counts()
    cache = NlccCache() if options.work_recycling else None
    cost_model = options.cost_model

    pgraph = PartitionedGraph(
        graph,
        options.num_ranks,
        delegate_degree_threshold=options.delegate_degree_threshold,
        ranks_per_node=options.ranks_per_node,
    )
    mcs_stats = MessageStats(options.num_ranks)
    mcs_engine = Engine(
        pgraph, mcs_stats, options.batch_size, tracer=tracer,
        metrics=options.metrics,
    )
    base_state = max_candidate_set(
        graph, template, mcs_engine,
        role_kernel=options.role_kernel, delta=options.delta_lcc,
        array_state=options.array_state,
        adaptive=options.adaptive,
    )

    result = PipelineResult(template.name, max_k, protos)
    (
        result.candidate_set_vertices,
        result.candidate_set_edges,
    ) = base_state.active_counts()
    result.candidate_set_seconds = cost_model.makespan(mcs_stats)
    all_stats: List[MessageStats] = [mcs_stats]

    # Every exploratory scope derives from M*: convert it to array form
    # once and cut each prototype's scope directly in array form.
    base_astate = None
    if _array_level_eligible(template, options):
        from .arraystate import ArraySearchState

        base_astate = ArraySearchState.from_search_state(
            base_state, roles=sorted(template.graph.vertices())
        )

    pool = None
    if options.worker_processes > 1:
        from ..runtime.parallel import PrototypeSearchPool

        pool = PrototypeSearchPool(
            graph, template, max_k, options, options.worker_processes
        )

    try:
        for distance in range(0, protos.max_distance + 1):
            with tracer.span("level", distance=distance) as level_span:
                level_wall = time.perf_counter()
                level = LevelReport(distance)
                if pool is not None and len(protos.at(distance)) > 1:
                    _pooled_exploratory_level(
                        pool, protos, distance, base_state, base_astate,
                        options, level, result,
                    )
                else:
                    _inline_exploratory_level(
                        graph, pgraph, protos, distance, base_state,
                        base_astate, label_frequencies, cache, options,
                        level, result, all_stats,
                    )
                level.search_seconds = sum(
                    o.simulated_seconds for o in level.outcomes
                )
                level.union_vertices = len(
                    {v for o in level.outcomes for v in o.solution_vertices}
                )
                level.post_lcc_vertices = sum(
                    o.post_lcc_vertices for o in level.outcomes
                )
                level.post_lcc_edges = sum(
                    o.post_lcc_edges for o in level.outcomes
                )
                level_span.add(
                    prototypes=len(level.outcomes),
                    union_vertices=level.union_vertices,
                    post_lcc_vertices=level.post_lcc_vertices,
                    post_lcc_edges=level.post_lcc_edges,
                )
                level.wall_seconds = time.perf_counter() - level_wall
                result.levels.append(level)
            if stop_condition(level):
                break
    finally:
        if pool is not None:
            pool.close()

    result.total_simulated_seconds = result.candidate_set_seconds + sum(
        level.search_seconds for level in result.levels
    )
    result.total_wall_seconds = time.perf_counter() - wall_start
    result.message_summary = merge_message_stats(all_stats)
    if cache is not None:
        constraints, entries = cache.size()
        result.nlcc_cache_stats = {
            "hits": cache.hits,
            "misses": cache.misses,
            "constraints": constraints,
            "entries": entries,
        }
    result.metrics = options.metrics
    return result


def _inline_exploratory_level(
    graph: Graph,
    pgraph: PartitionedGraph,
    protos,
    distance: int,
    base_state: SearchState,
    base_astate,
    label_frequencies: Dict[int, int],
    cache: Optional[NlccCache],
    options: PipelineOptions,
    level: LevelReport,
    result: PipelineResult,
    all_stats: List[MessageStats],
) -> None:
    """Search one exploratory level in-process."""
    tracer = options.tracer
    cost_model = options.cost_model
    for proto in protos.at(distance):
        constraint_set = generate_constraints(
            proto.graph, label_frequencies, options.include_full_walk
        )
        constraint_set.non_local = order_constraints(
            constraint_set.non_local,
            label_frequencies,
            optimize=options.constraint_ordering,
        )
        if base_astate is not None:
            state = SearchState.empty(graph)
            array_scope = base_astate.for_prototype_search(proto)
        else:
            state = base_state.for_prototype_search(proto)
            array_scope = None
        stats = MessageStats(options.num_ranks)
        engine = Engine(
            pgraph, stats, options.batch_size, tracer=tracer,
            metrics=options.metrics,
        )
        outcome = search_prototype(
            state,
            proto,
            constraint_set,
            engine,
            cache=cache,
            recycle=options.work_recycling,
            count_matches=options.count_matches,
            collect_matches=options.collect_matches,
            verification=options.verification,
            role_kernel=options.role_kernel,
            delta_lcc=options.delta_lcc,
            array_state=options.array_state,
            array_nlcc=options.array_nlcc,
            array_scope=array_scope,
            adaptive=options.adaptive,
            constraint_costs=options.constraint_costs,
        )
        outcome.simulated_seconds = cost_model.makespan(stats)
        outcome.messages = stats.total_messages
        outcome.remote_messages = stats.total_remote_messages
        all_stats.append(stats)
        level.outcomes.append(outcome)
        for vertex in outcome.solution_vertices:
            result.match_vectors.setdefault(vertex, set()).add(proto.id)


def _pooled_exploratory_level(
    pool,
    protos,
    distance: int,
    base_state: SearchState,
    base_astate,
    options: PipelineOptions,
    level: LevelReport,
    result: PipelineResult,
) -> None:
    """Search one exploratory level on the worker pool.

    Every scope is cut fresh from M* (no cross-level unions top-down), so
    warm seeds never apply; with an array-eligible pool the scopes ship
    as packed bitmaps over the shared CSR, otherwise as legacy dict
    payloads.  Workers generate their own constraint sets at init.  Like
    the bottom-up pooled path, worker message traces fold into the
    per-outcome totals but not ``result.message_summary``.
    """
    from ..runtime.parallel import array_task, dict_task, payload_to_outcome

    tasks = []
    for proto in protos.at(distance):
        if base_astate is not None and pool.array_payloads:
            tasks.append(
                array_task(proto.id, base_astate.for_prototype_search(proto))
            )
        else:
            tasks.append(
                dict_task(proto.id, base_state.for_prototype_search(proto))
            )
    tracer = options.tracer
    for payload in pool.search_level(tasks):
        proto = protos.by_id(payload["proto_id"])
        outcome = payload_to_outcome(
            proto, payload, tracer=tracer, metrics=options.metrics
        )
        level.outcomes.append(outcome)
        for vertex in outcome.solution_vertices:
            result.match_vectors.setdefault(vertex, set()).add(proto.id)


def stopping_distance(result: PipelineResult) -> Optional[int]:
    """The first distance at which matches were found, if any."""
    for level in result.levels:
        if any(outcome.has_matches for outcome in level.outcomes):
            return level.distance
    return None
