"""The naïve baseline (§5.3).

The naïve approach "generates all prototypes and searches them
independently in the background graph": no maximum candidate set, no
containment rule, no work recycling, no constraint or prototype ordering,
no load balancing.  Each prototype still uses the exact constraint-checking
search (so the comparison isolates the *pipeline* optimizations, exactly as
the paper's comparison does).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..graph.graph import Graph
from .pipeline import PipelineOptions, PipelineResult, run_pipeline
from .template import PatternTemplate


def naive_options(base: Optional[PipelineOptions] = None) -> PipelineOptions:
    """Options describing the naïve baseline (derived from ``base``)."""
    base = base or PipelineOptions()
    return dataclasses.replace(
        base,
        use_max_candidate_set=False,
        use_containment=False,
        work_recycling=False,
        constraint_ordering=False,
        prototype_ordering=False,
        enumeration_optimization=False,
        load_balance="none",
        reload_ranks=None,
        parallel_deployments=1,
    )


def naive_search(
    graph: Graph,
    template: PatternTemplate,
    k: int,
    options: Optional[PipelineOptions] = None,
) -> PipelineResult:
    """Run the naïve baseline; results are identical, costs are not."""
    return run_pipeline(graph, template, k, options=naive_options(options))
