"""Constraint and prototype ordering heuristics (§5.4, Fig. 9(b)).

Two optimizations from the paper:

* **Constraint ordering** — non-local walks are orchestrated so vertices
  with lower-frequency labels are visited early: tokens die sooner, so
  fewer messages circulate.  :func:`order_constraints` sorts cheap checks
  first and orients each walk by ascending label frequency.
* **Prototype ordering** — when prototypes are searched in parallel on
  replica deployments, overlapping the most expensive searches improves
  makespan.  :func:`schedule_prototypes` implements LPT (longest processing
  time first) scheduling given per-prototype cost estimates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .constraints import (
    CYCLE_KIND,
    FULL_WALK_KIND,
    PATH_KIND,
    TDS_KIND,
    NonLocalConstraint,
)

_KIND_PRIORITY = {CYCLE_KIND: 0, PATH_KIND: 1, TDS_KIND: 2, FULL_WALK_KIND: 3}


def orient_walk(
    constraint: NonLocalConstraint, label_frequencies: Dict[int, int]
) -> NonLocalConstraint:
    """Pick the walk direction that visits rarer labels earlier.

    A closed walk can be traversed in either direction from its root; the
    direction whose early hops have rarer labels kills non-matching tokens
    faster.  Compares the frequency sequences lexicographically.
    """
    forward = [label_frequencies.get(lab, 0) for lab in constraint.labels[1:]]
    reverse_walk = constraint.walk[::-1]
    reverse_labels = constraint.labels[::-1]
    backward = [label_frequencies.get(lab, 0) for lab in reverse_labels[1:]]
    if backward < forward:
        return NonLocalConstraint(
            constraint.kind, reverse_walk, reverse_labels, constraint.proto_graph
        )
    return constraint


def order_constraints(
    constraints: Sequence[NonLocalConstraint],
    label_frequencies: Optional[Dict[int, int]] = None,
    optimize: bool = True,
    measured=None,
) -> List[NonLocalConstraint]:
    """Checking order for one prototype's non-local constraints.

    Cheap kinds first (cycles, then paths, then combined TDS, full walk
    last — it benefits the most from prior pruning and exactness relies
    on it running after everything else), shorter walks before longer,
    and with ``optimize`` each walk is oriented rare-labels-first and
    constraints whose early labels are rare run before frequent ones.
    Disabling ``optimize`` preserves only the kind/length order — the
    baseline of the Fig. 9(b) ablation.

    ``measured`` (a :class:`~repro.runtime.metrics.ConstraintCostModel`)
    supplies per-constraint wall times observed on earlier prototypes of
    the same template; within a kind, measured-cheap constraints then run
    before measured-expensive ones, overriding the static length/
    frequency estimate.  Costs are quantized to coarse log2 buckets
    (the paper reorders from a *measured* previous run — §5.4), so
    sub-resolution measurements all land in bucket 0 and the static
    order is preserved exactly; the kind order is never overridden.
    """
    def base_key(constraint: NonLocalConstraint) -> Tuple:
        return (_KIND_PRIORITY.get(constraint.kind, 9), constraint.length)

    if not optimize or not label_frequencies:
        return sorted(constraints, key=lambda c: (base_key(c), c.key))

    oriented = [orient_walk(c, label_frequencies) for c in constraints]

    def opt_key(constraint: NonLocalConstraint) -> Tuple:
        freqs = tuple(label_frequencies.get(lab, 0) for lab in constraint.labels)
        bucket = measured.bucket(constraint.key) if measured is not None else 0
        return (
            _KIND_PRIORITY.get(constraint.kind, 9),
            bucket,
            constraint.length,
            freqs,
            constraint.key,
        )

    return sorted(oriented, key=opt_key)


def reorder_measured(
    constraints: Sequence[NonLocalConstraint], measured
) -> List[NonLocalConstraint]:
    """Stable re-sort of an already-ordered constraint list by measured cost.

    ``measured`` is a :class:`~repro.runtime.metrics.ConstraintCostModel`;
    within each kind, constraints in cheaper measured log2 buckets move
    ahead of more expensive ones while ties (including every unmeasured
    constraint, bucket 0) keep the incoming static order — so an empty or
    sub-resolution model returns the input order unchanged.  The kind
    order is never overridden: exactness relies on the full walk running
    after every other pruning constraint.
    """
    ordered = list(constraints)
    if measured is None or not len(measured):
        return ordered
    ordered.sort(
        key=lambda c: (_KIND_PRIORITY.get(c.kind, 9), measured.bucket(c.key))
    )
    return ordered


def estimate_prototype_cost(prototype, label_frequencies: Dict[int, int]) -> float:
    """Heuristic cost of searching one prototype.

    Proportional to the candidate mass of its labels times its edge count,
    with a superlinear bump for cyclic prototypes (NLCC token fan-out).
    The paper instead reorders from a *measured* previous run and calls the
    result an upper bound on what cost-projection heuristics can achieve —
    :func:`schedule_prototypes` accepts measured costs too.
    """
    mass = sum(
        label_frequencies.get(prototype.graph.label(v), 1)
        for v in prototype.graph.vertices()
    )
    cyclic_penalty = 1.0 + max(
        0, prototype.num_edges - (prototype.num_vertices - 1)
    )
    return mass * prototype.num_edges * cyclic_penalty


def schedule_prototypes(
    costs: Sequence[float], num_deployments: int, optimize: bool = True
) -> List[List[int]]:
    """Assign prototype indices to ``num_deployments`` parallel replicas.

    With ``optimize``, LPT scheduling: sort by descending cost and always
    give the next prototype to the least-loaded replica (overlapping the
    expensive searches, Fig. 9(b) middle).  Without, round-robin in the
    given order — the naive baseline.
    """
    if num_deployments <= 0:
        raise ValueError("num_deployments must be positive")
    batches: List[List[int]] = [[] for _ in range(num_deployments)]
    if optimize:
        loads = [0.0] * num_deployments
        for index in sorted(range(len(costs)), key=lambda i: -costs[i]):
            target = loads.index(min(loads))
            batches[target].append(index)
            loads[target] += costs[index]
    else:
        for index in range(len(costs)):
            batches[index % num_deployments].append(index)
    return batches


def parallel_makespan(costs: Sequence[float], batches: List[List[int]]) -> float:
    """Simulated level time: the busiest replica's total cost."""
    if not batches:
        return 0.0
    return max(sum(costs[i] for i in batch) for batch in batches)
