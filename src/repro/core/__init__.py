"""Core algorithms: templates, prototypes, constraint checking, pipeline."""

from .arraystate import (
    ArraySearchState,
    GraphCsr,
    array_kernel_fixpoint,
    csr_of,
    run_array_fixpoint,
    supports_array_fixpoint,
)
from .builder import TemplateBuilder
from .candidate_set import max_candidate_set
from .constraints import (
    ConstraintSet,
    LocalConstraint,
    NonLocalConstraint,
    cycle_constraints,
    full_walk_constraint,
    generate_constraints,
    is_edge_monocyclic,
    local_constraints,
    path_constraints,
    tds_constraints,
)
from .flips import (
    FlipResult,
    envelope_template,
    generate_flip_variants,
    run_flip_pipeline,
)
from .cost_estimation import (
    GraphStatistics,
    estimate_success_probability,
    estimate_walk_cost,
    order_constraints_by_cost,
    pruning_efficiency,
)
from .enumeration import (
    count_match_mappings,
    distinct_match_count,
    enumerate_matches,
    extend_from_child_matches,
    state_from_matches,
)
from .kernels import RoleKernel, compile_role_kernel, kernel_fixpoint
from .lcc import local_constraint_checking
from .motifs import MotifCounts, count_motifs, motif_prototypes, motif_template
from .naive import naive_options, naive_search
from .nlcc import NlccResult, non_local_constraint_checking
from .output import (
    enumerate_all_matches,
    participation_rates,
    read_match_labels,
    union_of_all_matches,
    union_per_prototype,
    write_match_enumeration,
    write_match_labels,
    write_union_subgraph,
)
from .ordering import (
    estimate_prototype_cost,
    order_constraints,
    parallel_makespan,
    schedule_prototypes,
)
from .patterns import (
    PAPER_PATTERNS,
    imdb1_template,
    rdt1_template,
    rmat1_template,
    wdc1_template,
    wdc2_template,
    wdc3_template,
    wdc4_template,
)
from .pipeline import PipelineOptions, run_pipeline
from .prototypes import ChildLink, Prototype, PrototypeSet, generate_prototypes
from .restart import resume_pipeline, run_pipeline_with_checkpoints
from .results import LevelReport, PipelineResult, PrototypeSearchOutcome
from .search import search_prototype
from .state import NlccCache, SearchState
from .template import PatternTemplate, clique_template, cycle_template, path_template
from .topdown import exploratory_search, first_match_condition, stopping_distance
from .wildcards import (
    WILDCARD,
    WildcardResult,
    has_wildcards,
    run_wildcard_pipeline,
    wildcard_vertices,
)

__all__ = [
    "ArraySearchState",
    "ChildLink",
    "PAPER_PATTERNS",
    "WILDCARD",
    "WildcardResult",
    "ConstraintSet",
    "FlipResult",
    "GraphStatistics",
    "LevelReport",
    "LocalConstraint",
    "MotifCounts",
    "NlccCache",
    "NlccResult",
    "NonLocalConstraint",
    "PatternTemplate",
    "PipelineOptions",
    "PipelineResult",
    "Prototype",
    "PrototypeSearchOutcome",
    "PrototypeSet",
    "RoleKernel",
    "SearchState",
    "TemplateBuilder",
    "GraphCsr",
    "array_kernel_fixpoint",
    "csr_of",
    "run_array_fixpoint",
    "supports_array_fixpoint",
    "clique_template",
    "count_match_mappings",
    "count_motifs",
    "cycle_constraints",
    "cycle_template",
    "distinct_match_count",
    "enumerate_all_matches",
    "enumerate_matches",
    "envelope_template",
    "estimate_prototype_cost",
    "estimate_success_probability",
    "estimate_walk_cost",
    "exploratory_search",
    "extend_from_child_matches",
    "first_match_condition",
    "full_walk_constraint",
    "generate_constraints",
    "generate_flip_variants",
    "generate_prototypes",
    "has_wildcards",
    "imdb1_template",
    "is_edge_monocyclic",
    "compile_role_kernel",
    "kernel_fixpoint",
    "local_constraint_checking",
    "local_constraints",
    "max_candidate_set",
    "motif_prototypes",
    "motif_template",
    "naive_options",
    "naive_search",
    "non_local_constraint_checking",
    "order_constraints",
    "order_constraints_by_cost",
    "parallel_makespan",
    "participation_rates",
    "path_constraints",
    "pruning_efficiency",
    "path_template",
    "rdt1_template",
    "read_match_labels",
    "rmat1_template",
    "run_pipeline",
    "resume_pipeline",
    "run_flip_pipeline",
    "run_pipeline_with_checkpoints",
    "run_wildcard_pipeline",
    "schedule_prototypes",
    "search_prototype",
    "state_from_matches",
    "stopping_distance",
    "union_of_all_matches",
    "union_per_prototype",
    "wdc1_template",
    "wdc2_template",
    "wdc3_template",
    "wdc4_template",
    "tds_constraints",
    "wildcard_vertices",
    "write_match_enumeration",
    "write_match_labels",
    "write_union_subgraph",
]
