"""Level-granular pipeline checkpointing and restart (§4, "Load Balancing").

The paper's system checkpoints the execution state between edit-distance
levels — that is what allows it to *reload* the pruned graph on a
rebalanced or smaller deployment and resume the sweep.  This module makes
the same capability available around :func:`~repro.core.pipeline.run_pipeline`:

* :func:`run_pipeline_with_checkpoints` saves, after the candidate set and
  after every completed level, everything needed to resume: the level
  union's active vertices/edges, the per-vertex match vectors so far, and
  the per-prototype solution subgraphs;
* :func:`resume_pipeline` restores that state and continues the bottom-up
  sweep from the first incomplete level — on the same or a different
  deployment size (the reload scenario of §5.4).

Resumed runs produce results identical to uninterrupted ones (validated by
the failure-injection tests), because the containment rule only needs the
previous level's union.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Set, Union

from ..errors import CheckpointError
from ..graph.graph import Graph
from ..runtime.engine import Engine
from ..runtime.messages import MessageStats
from ..runtime.partition import PartitionedGraph
from .candidate_set import max_candidate_set
from .pipeline import PipelineOptions, run_pipeline
from .prototypes import generate_prototypes
from .results import PipelineResult
from .state import SearchState
from .template import PatternTemplate

PathLike = Union[str, Path]

MANIFEST = "pipeline_checkpoint.json"


def _state_payload(state: SearchState) -> Dict:
    return {
        "candidates": {str(v): sorted(state.roles(v)) for v in state.active_vertices()},
        "edges": state.active_edge_list(),
    }


def _restore_state(graph: Graph, payload: Dict) -> SearchState:
    candidates = {int(v): set(roles) for v, roles in payload["candidates"].items()}
    active_edges: Dict[int, Set[int]] = {v: set() for v in candidates}
    for u, v in payload["edges"]:
        active_edges.setdefault(int(u), set()).add(int(v))
        active_edges.setdefault(int(v), set()).add(int(u))
    return SearchState(graph, candidates, active_edges)


def run_pipeline_with_checkpoints(
    graph: Graph,
    template: PatternTemplate,
    k: int,
    checkpoint_dir: PathLike,
    options: Optional[PipelineOptions] = None,
    fail_after_level: Optional[int] = None,
) -> PipelineResult:
    """Run the pipeline, persisting a resumable checkpoint per level.

    ``fail_after_level`` aborts (raises ``RuntimeError``) right after the
    checkpoint for that edit-distance level is written — the failure
    injection hook used by the tests.
    """
    options = options or PipelineOptions()
    directory = Path(checkpoint_dir)
    directory.mkdir(parents=True, exist_ok=True)

    # Delegate the actual searching to run_pipeline level by level: run the
    # full sweep but capture state via the per-level union recomputation.
    # For checkpointing we re-execute the sweep explicitly.
    protos = generate_prototypes(template, k, options.max_prototypes)
    deepest = protos.max_distance

    manifest = {
        "template": template.name,
        "k": deepest,
        "completed_levels": [],
        "match_vectors": {},
        "outcomes": {},
    }

    with options.tracer.span(
        "pipeline", template=template.name, k=deepest, mode="checkpointed"
    ):
        # Base candidate set (checkpointed as the pre-sweep state).
        pgraph = PartitionedGraph(
            graph, options.num_ranks,
            delegate_degree_threshold=options.delegate_degree_threshold,
            ranks_per_node=options.ranks_per_node,
        )
        engine = Engine(
            pgraph, MessageStats(options.num_ranks), options.batch_size,
            tracer=options.tracer,
        )
        if options.use_max_candidate_set:
            base_state = max_candidate_set(
                graph, template, engine,
                role_kernel=options.role_kernel, delta=options.delta_lcc,
                array_state=options.array_state,
                adaptive=options.adaptive,
            )
        else:
            base_state = SearchState.initial(graph, template)
        manifest["base_state"] = _state_payload(base_state)
        _write_manifest(directory, manifest)

        return _sweep(
            graph, template, protos, base_state, options,
            manifest, directory, start_level=deepest,
            fail_after_level=fail_after_level,
        )


def resume_pipeline(
    graph: Graph,
    template: PatternTemplate,
    checkpoint_dir: PathLike,
    options: Optional[PipelineOptions] = None,
) -> PipelineResult:
    """Resume an interrupted checkpointed run from its last completed level.

    ``options`` may differ from the original run's (e.g. fewer ranks — the
    paper's reload-on-smaller-deployment move); results are unaffected.
    """
    options = options or PipelineOptions()
    directory = Path(checkpoint_dir)
    manifest = _read_manifest(directory)
    if manifest["template"] != template.name:
        raise CheckpointError(
            f"checkpoint is for template {manifest['template']!r}, "
            f"not {template.name!r}"
        )
    protos = generate_prototypes(template, manifest["k"], options.max_prototypes)
    completed = manifest["completed_levels"]
    deepest = protos.max_distance
    if completed:
        start_level = min(completed) - 1
        union_payload = manifest[f"union_after_{min(completed)}"]
        prev_union = _restore_state(graph, union_payload)
    else:
        start_level = deepest
        prev_union = None
    base_state = _restore_state(graph, manifest["base_state"])
    with options.tracer.span(
        "pipeline", template=template.name, k=deepest, mode="checkpointed"
    ):
        return _sweep(
            graph, template, protos, base_state, options,
            manifest, directory, start_level=start_level,
            prev_union=prev_union,
        )


def _sweep(
    graph,
    template,
    protos,
    base_state,
    options,
    manifest,
    directory,
    start_level,
    prev_union=None,
    fail_after_level=None,
):
    """Run levels ``start_level .. 0``, checkpointing after each."""
    from .constraints import generate_constraints
    from .ordering import order_constraints
    from .search import search_prototype
    from .state import NlccCache

    wall_start = time.perf_counter()
    tracer = options.tracer
    label_frequencies = graph.label_counts()
    cache = NlccCache() if options.work_recycling else None
    result = PipelineResult(template.name, protos.max_distance, protos)
    (
        result.candidate_set_vertices,
        result.candidate_set_edges,
    ) = base_state.active_counts()

    # Restore previously completed work into the result object.
    for vertex, ids in manifest["match_vectors"].items():
        result.match_vectors[int(vertex)] = set(ids)
    restored_outcomes = dict(manifest["outcomes"])

    pgraph = PartitionedGraph(
        graph, options.num_ranks,
        delegate_degree_threshold=options.delegate_degree_threshold,
        ranks_per_node=options.ranks_per_node,
    )

    from .results import LevelReport, PrototypeSearchOutcome

    deepest = protos.max_distance
    for distance in range(deepest, -1, -1):
        level = LevelReport(distance)
        if distance > start_level:
            # Already completed before the interruption: rebuild outcomes.
            for proto in protos.at(distance):
                payload = restored_outcomes[str(proto.id)]
                outcome = PrototypeSearchOutcome(proto)
                outcome.solution_vertices = set(payload["vertices"])
                outcome.solution_edges = {
                    (int(u), int(v)) for u, v in payload["edges"]
                }
                level.outcomes.append(outcome)
            result.levels.append(level)
            continue

        union = SearchState.empty(graph)
        with tracer.span("level", distance=distance) as level_span:
            for proto in protos.at(distance):
                if (
                    options.use_containment
                    and distance < deepest
                    and prev_union is not None
                    and proto.child_links
                ):
                    link = proto.child_links[0]
                    a, b = link.removed_edge
                    pair = (template.graph.label(a), template.graph.label(b))
                    state = prev_union.for_prototype_search(
                        proto, readmit_label_pairs=[pair]
                    )
                else:
                    state = base_state.for_prototype_search(proto)
                constraint_set = generate_constraints(
                    proto.graph, label_frequencies, options.include_full_walk
                )
                constraint_set.non_local = order_constraints(
                    constraint_set.non_local, label_frequencies,
                    optimize=bool(options.constraint_ordering),
                )
                stats = MessageStats(options.num_ranks)
                engine = Engine(
                    pgraph, stats, options.batch_size, tracer=tracer,
                    metrics=options.metrics,
                )
                outcome = search_prototype(
                    state, proto, constraint_set, engine,
                    cache=cache, recycle=options.work_recycling,
                    count_matches=options.count_matches,
                    collect_matches=options.collect_matches,
                    verification=options.verification,
                    role_kernel=options.role_kernel,
                    delta_lcc=options.delta_lcc,
                    array_state=options.array_state,
                    array_nlcc=options.array_nlcc,
                    adaptive=options.adaptive,
                    constraint_costs=options.constraint_costs,
                )
                outcome.simulated_seconds = options.cost_model.makespan(stats)
                level.outcomes.append(outcome)
                union.union_with(state)
                for vertex in outcome.solution_vertices:
                    result.match_vectors.setdefault(vertex, set()).add(proto.id)
                manifest["outcomes"][str(proto.id)] = {
                    "vertices": sorted(outcome.solution_vertices),
                    "edges": sorted(outcome.solution_edges),
                }
            level.union_vertices, level.union_edges = union.active_counts()
            level_span.add(
                prototypes=len(level.outcomes),
                union_vertices=level.union_vertices,
                union_edges=level.union_edges,
            )
        level.search_seconds = sum(o.simulated_seconds for o in level.outcomes)
        result.levels.append(level)
        prev_union = union

        manifest["completed_levels"].append(distance)
        manifest[f"union_after_{distance}"] = _state_payload(union)
        manifest["match_vectors"] = {
            str(v): sorted(ids) for v, ids in result.match_vectors.items()
        }
        _write_manifest(directory, manifest)
        if fail_after_level is not None and distance == fail_after_level:
            raise RuntimeError(
                f"injected failure after checkpointing level {distance}"
            )

    result.total_simulated_seconds = sum(
        lvl.search_seconds for lvl in result.levels
    )
    result.total_wall_seconds = time.perf_counter() - wall_start
    return result


def _write_manifest(directory: Path, manifest: Dict) -> None:
    path = directory / MANIFEST
    tmp = directory / (MANIFEST + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle)
    tmp.replace(path)  # atomic on POSIX: a crash never corrupts the manifest


def _read_manifest(directory: Path) -> Dict:
    path = directory / MANIFEST
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"cannot read checkpoint manifest {path}: {exc}") from exc
