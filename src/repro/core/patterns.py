"""The paper's search templates (Figs. 4, 5 and 10).

Concrete :class:`~repro.core.template.PatternTemplate` instances used across
examples and benchmarks.  Where the paper pins exact prototype counts, the
templates here reproduce them:

* **RMAT-1** (Fig. 4): 6 distinct degree-class labels, 7 edges, maximum
  edit-distance 2 — ``24`` prototypes total, ``16`` of them at ``k = 2``;
* **WDC-1** (Fig. 5 family): the Fig. 3(a) shape (a triangle and a square
  sharing a vertex) — ``20`` prototypes at ``k ≤ 2`` (7 at ``k=1``, 12 at
  ``k=2``, exactly Fig. 3's counts);
* **WDC-2**: two 4-cycles sharing an edge (non-edge-monocyclic — requires
  TDS checks) with a repeated ``org`` label (requires path checks);
* **WDC-3**: a denser 6-vertex pattern searched up to ``k = 4`` with
  ``61`` prototypes at ``k = 3`` and 100+ in total, as in Fig. 8;
* **WDC-4** (§5.5): the 6-Clique — ``1,941`` prototypes within ``k = 4``,
  ``1,365`` of them at ``k = 4``;
* **RDT-1** (Fig. 10): the adversarial poster-commenter query with four
  optional author edges — ``5`` prototypes at ``k = 1``;
* **IMDB-1** (Fig. 10): actress/actor/director × two same-genre movies
  with optional second-movie edges — ``7`` prototypes at ``k = 2``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import TemplateError
from ..graph.generators import imdb as imdb_labels
from ..graph.generators import reddit as rdt_labels
from ..graph.generators.webgraph import domain_label
from .template import PatternTemplate, clique_template


def rmat1_template(labels: Optional[Sequence[int]] = None) -> PatternTemplate:
    """RMAT-1 (Fig. 4): 24 prototypes, disconnecting beyond ``k = 2``.

    ``labels`` are the six degree-class labels (default 4..9 — the frequent
    classes of mid-size R-MAT graphs); they must be distinct to preserve
    the prototype counts.
    """
    if labels is None:
        labels = [4, 5, 6, 7, 8, 9]
    if len(labels) != 6 or len(set(labels)) != 6:
        raise TemplateError("RMAT-1 needs six distinct labels")
    edges = [(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 5), (4, 5)]
    return PatternTemplate.from_edges(
        edges, {i: int(labels[i]) for i in range(6)}, name="RMAT-1"
    )


def wdc1_template() -> PatternTemplate:
    """WDC-1: triangle + square sharing a vertex (the Fig. 3(a) shape).

    Distinct domain labels; 20 prototypes at ``k ≤ 2`` (1 + 7 + 12).
    """
    edges = [(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 5), (5, 0)]
    labels = {
        0: domain_label("org"),
        1: domain_label("net"),
        2: domain_label("edu"),
        3: domain_label("gov"),
        4: domain_label("co"),
        5: domain_label("ac"),
    }
    return PatternTemplate.from_edges(edges, labels, name="WDC-1")


def wdc2_template() -> PatternTemplate:
    """WDC-2: two 4-cycles sharing an edge, with a repeated ``org`` label.

    Non-edge-monocyclic (needs TDS) and duplicate-labeled (needs path
    constraints) — the "expensive NLCC" stressor of §5.2.
    """
    edges = [(0, 1), (1, 2), (2, 3), (3, 0), (3, 4), (4, 5), (5, 2)]
    labels = {
        0: domain_label("org"),
        1: domain_label("net"),
        2: domain_label("edu"),
        3: domain_label("gov"),
        4: domain_label("org"),
        5: domain_label("co"),
    }
    return PatternTemplate.from_edges(edges, labels, name="WDC-2")


def wdc3_template() -> PatternTemplate:
    """WDC-3: dense 6-vertex pattern, 61 prototypes at ``k = 3``, 100+ total.

    Searched up to ``k = 4`` in the Fig. 8 breakdown experiments.
    """
    edges = [
        (0, 1), (0, 4), (1, 3), (1, 4), (1, 5), (2, 3), (2, 4), (3, 4), (4, 5),
    ]
    labels = {
        0: domain_label("org"),
        1: domain_label("net"),
        2: domain_label("edu"),
        3: domain_label("gov"),
        4: domain_label("co"),
        5: domain_label("ac"),
    }
    return PatternTemplate.from_edges(edges, labels, name="WDC-3")


def wdc4_template() -> PatternTemplate:
    """WDC-4 (§5.5): the 6-Clique — 1,941 prototypes within ``k = 4``."""
    labels = [domain_label(name) for name in ("org", "net", "edu", "gov", "co", "ac")]
    template = clique_template(6, labels=labels, name="WDC-4")
    return template


def rdt1_template() -> PatternTemplate:
    """RDT-1 (Fig. 10): adversarial poster-commenter query, 5 prototypes.

    Vertices: author ``A``; posts ``P+``/``P-`` in two *distinct*
    subreddits; a negative comment on the positive post and a positive
    comment on the negative post.  The four author edges are optional
    ("a valid match can be missing an author-post or an author-comment
    edge"); everything else is mandatory.  ``k = 1`` yields 5 prototypes.
    """
    edges = [
        (0, 1),  # A - P+            (optional)
        (0, 2),  # A - P-            (optional)
        (0, 3),  # A - C-            (optional)
        (0, 4),  # A - C+            (optional)
        (1, 3),  # P+ - C-           (mandatory)
        (2, 4),  # P- - C+           (mandatory)
        (1, 5),  # P+ - S            (mandatory)
        (2, 6),  # P- - S            (mandatory)
    ]
    labels = {
        0: rdt_labels.AUTHOR,
        1: rdt_labels.POST_POSITIVE,
        2: rdt_labels.POST_NEGATIVE,
        3: rdt_labels.COMMENT_NEGATIVE,
        4: rdt_labels.COMMENT_POSITIVE,
        5: rdt_labels.SUBREDDIT,
        6: rdt_labels.SUBREDDIT,
    }
    mandatory = [(1, 3), (2, 4), (1, 5), (2, 6)]
    return PatternTemplate.from_edges(edges, labels, mandatory, name="RDT-1")


def imdb1_template() -> PatternTemplate:
    """IMDB-1 (Fig. 10): shared cast across two same-genre movies.

    Actress, actor and director each appear in movie ``M1`` (mandatory)
    and optionally repeat their role in ``M2``; both movies carry the
    genre.  ``k = 2`` (so at least one individual still spans both movies)
    yields 7 prototypes.
    """
    edges = [
        (0, 3),  # Actress - M1   (mandatory)
        (0, 4),  # Actress - M2   (optional)
        (1, 3),  # Actor   - M1   (mandatory)
        (1, 4),  # Actor   - M2   (optional)
        (2, 3),  # Director- M1   (mandatory)
        (2, 4),  # Director- M2   (optional)
        (3, 5),  # M1 - Genre     (mandatory)
        (4, 5),  # M2 - Genre     (mandatory)
    ]
    labels = {
        0: imdb_labels.ACTRESS,
        1: imdb_labels.ACTOR,
        2: imdb_labels.DIRECTOR,
        3: imdb_labels.MOVIE,
        4: imdb_labels.MOVIE,
        5: imdb_labels.GENRE,
    }
    mandatory = [(0, 3), (1, 3), (2, 3), (3, 5), (4, 5)]
    return PatternTemplate.from_edges(edges, labels, mandatory, name="IMDB-1")


#: canonical (template, k) pairs used throughout the benchmarks
PAPER_PATTERNS = {
    "RMAT-1": (rmat1_template, 2),
    "WDC-1": (wdc1_template, 2),
    "WDC-2": (wdc2_template, 2),
    "WDC-3": (wdc3_template, 4),
    "WDC-4": (wdc4_template, 4),
    "RDT-1": (rdt1_template, 1),
    "IMDB-1": (imdb1_template, 2),
}
