"""Edge-flip template variants (§3.1's second "interesting search scenario").

The paper notes that besides edge deletion, "edge 'flip' (i.e., swapping
edges while keeping the number of edges constant) fits our pipeline's
design and requires small updates".  A *flip* removes one optional edge
and adds one currently-absent edge, keeping the variant connected and
simple — it models relationships the analyst may have mis-specified.

Implementation: flip variants are generated with isomorphism dedup (like
prototypes), and the whole family is searched through the standard exact
machinery with two pipeline ideas carried over:

* a **family-wide candidate set**: ``M*`` computed against the *envelope*
  template (the union of every variant's edges over the same vertex set)
  is a sound superset for each variant, so it is built once and every
  variant search starts from it;
* **work recycling**: non-local constraints shared between variants (their
  identity keys coincide whenever the walks coincide) hit the same
  :class:`~repro.core.state.NlccCache`.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, List, Optional, Set, Tuple

from ..errors import TemplateError
from ..graph.algorithms import is_connected
from ..graph.graph import Graph, canonical_edge
from ..graph.isomorphism import canonical_form
from ..runtime.engine import Engine
from ..runtime.messages import MessageStats
from ..runtime.partition import PartitionedGraph
from .candidate_set import max_candidate_set
from .constraints import generate_constraints
from .ordering import order_constraints
from .pipeline import PipelineOptions
from .prototypes import Prototype
from .results import PrototypeSearchOutcome
from .search import search_prototype
from .state import NlccCache
from .template import PatternTemplate


def generate_flip_variants(
    template: PatternTemplate,
    flips: int = 1,
    max_variants: Optional[int] = 10_000,
) -> List[PatternTemplate]:
    """All connected variants within ``flips`` edge swaps of the template.

    The original template is variant 0.  Mandatory edges are never removed
    (added edges are considered optional in subsequent flips).  Variants
    are de-duplicated by label-preserving isomorphism.
    """
    if flips < 0:
        raise TemplateError("flips must be non-negative")
    seen = {canonical_form(template.graph): template}
    frontier = [template]
    counter = itertools.count(1)
    for _round in range(flips):
        next_frontier: List[PatternTemplate] = []
        for variant in frontier:
            for flipped in _single_flips(variant):
                key = canonical_form(flipped.graph)
                if key in seen:
                    continue
                if max_variants is not None and len(seen) >= max_variants:
                    raise TemplateError(
                        f"flip variant budget exceeded ({max_variants})"
                    )
                named = PatternTemplate(
                    flipped.graph,
                    mandatory_edges=flipped.mandatory_edges,
                    name=f"{template.name}~flip{next(counter)}",
                )
                seen[key] = named
                next_frontier.append(named)
        frontier = next_frontier
    return list(seen.values())


def _single_flips(template: PatternTemplate) -> List[PatternTemplate]:
    """Every connected simple variant one edge swap away."""
    vertices = template.vertices()
    non_edges = [
        (u, v)
        for i, u in enumerate(vertices)
        for v in vertices[i + 1 :]
        if not template.graph.has_edge(u, v)
    ]
    variants = []
    for removed in template.optional_edges():
        for added in non_edges:
            candidate = template.graph.copy()
            candidate.remove_edge(*removed)
            candidate.add_edge(*added)
            if not is_connected(candidate):
                continue
            variants.append(
                PatternTemplate(
                    candidate,
                    mandatory_edges=template.mandatory_edges,
                    name=template.name,
                )
            )
    return variants


def envelope_template(
    template: PatternTemplate, variants: List[PatternTemplate]
) -> PatternTemplate:
    """The union-of-edges template used for the family-wide ``M*``.

    Sound for every variant: each variant's adjacency is a subset of the
    envelope's, so the at-least-one-neighbor viability test can only keep
    more vertices.
    """
    union = Graph()
    for vertex in template.vertices():
        union.add_vertex(vertex, template.label(vertex))
    for variant in variants:
        for u, v in variant.edges():
            if not union.has_edge(u, v):
                union.add_edge(u, v)
    return PatternTemplate(
        union,
        mandatory_edges=template.mandatory_edges,
        name=template.name + "~envelope",
    )


class FlipResult:
    """Merged results over a flip family."""

    def __init__(self, template: PatternTemplate, flips: int) -> None:
        self.template = template
        self.flips = flips
        self.variants: List[PatternTemplate] = []
        #: variant name → search outcome (exact solution subgraph etc.)
        self.outcomes: Dict[str, PrototypeSearchOutcome] = {}
        #: vertex → set of variant names it matches
        self.match_vectors: Dict[int, Set[str]] = {}
        self.candidate_set_vertices = 0
        self.total_simulated_seconds = 0.0
        self.total_wall_seconds = 0.0

    def matched_vertices(self) -> Set[int]:
        return set(self.match_vectors)

    def variants_with_matches(self) -> List[str]:
        return [
            name for name, outcome in self.outcomes.items() if outcome.has_matches
        ]

    def __repr__(self) -> str:
        return (
            f"FlipResult({self.template.name!r}, variants={len(self.variants)}, "
            f"matched_vertices={len(self.match_vectors)})"
        )


def run_flip_pipeline(
    graph: Graph,
    template: PatternTemplate,
    flips: int = 1,
    options: Optional[PipelineOptions] = None,
    max_variants: Optional[int] = 10_000,
) -> FlipResult:
    """Exact matching over every variant within ``flips`` edge swaps.

    Builds the family-wide candidate set once, then runs the standard
    per-prototype search for each variant with shared NLCC recycling;
    per-variant results carry the usual 100% precision/recall guarantee.
    """
    options = options or PipelineOptions()
    wall_start = time.perf_counter()
    variants = generate_flip_variants(template, flips, max_variants)
    result = FlipResult(template, flips)
    result.variants = variants

    envelope = envelope_template(template, variants)
    pgraph = PartitionedGraph(
        graph,
        options.num_ranks,
        delegate_degree_threshold=options.delegate_degree_threshold,
        ranks_per_node=options.ranks_per_node,
    )
    mcs_engine = Engine(pgraph, MessageStats(options.num_ranks), options.batch_size)
    base_state = max_candidate_set(graph, envelope, mcs_engine)
    result.candidate_set_vertices = base_state.num_active_vertices
    result.total_simulated_seconds += options.cost_model.makespan(mcs_engine.stats)

    label_frequencies = graph.label_counts()
    cache = NlccCache() if options.work_recycling else None
    for index, variant in enumerate(variants):
        proto = Prototype(index, 0, index, variant.graph.copy(), variant)
        proto.name = variant.name
        constraint_set = generate_constraints(
            proto.graph, label_frequencies, options.include_full_walk
        )
        constraint_set.non_local = order_constraints(
            constraint_set.non_local,
            label_frequencies,
            optimize=options.constraint_ordering,
        )
        state = base_state.for_prototype_search(proto)
        stats = MessageStats(options.num_ranks)
        engine = Engine(pgraph, stats, options.batch_size)
        outcome = search_prototype(
            state,
            proto,
            constraint_set,
            engine,
            cache=cache,
            recycle=options.work_recycling,
            count_matches=options.count_matches,
            collect_matches=options.collect_matches,
            verification=options.verification,
        )
        outcome.simulated_seconds = options.cost_model.makespan(stats)
        result.total_simulated_seconds += outcome.simulated_seconds
        result.outcomes[variant.name] = outcome
        for vertex in outcome.solution_vertices:
            result.match_vectors.setdefault(vertex, set()).add(variant.name)
    result.total_wall_seconds = time.perf_counter() - wall_start
    return result
