"""Wildcard vertex labels (§3.1's "other interesting search scenarios").

The paper notes that "wild-card labels on vertices or edges fit our
pipeline's design and require small updates".  This module provides that
update: a template vertex labeled :data:`WILDCARD` matches a background
vertex of *any* label.

Implementation strategy: rather than threading wildcard awareness through
every label comparison in the matching engine, a wildcard query is
compiled into a family of fully-labeled *instantiations* — one per
assignment of background labels to wildcard vertices that can possibly
match (only labels present in the background graph are considered, and a
cheap degree screen prunes hopeless assignments).  Each instantiation runs
through the unchanged exact pipeline, and the results are merged.  This
keeps the precision/recall guarantee trivially intact and reuses all
pipeline optimizations per instantiation.

For templates with few wildcard vertices (the practical case — wildcards
express "some entity of unknown category"), the instantiation count is
``|labels in G| ** #wildcards``, evaluated lazily.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..errors import TemplateError
from ..graph.graph import Graph
from .pipeline import PipelineOptions, run_pipeline
from .results import PipelineResult
from .template import PatternTemplate

#: reserved label marking a wildcard template vertex
WILDCARD = -1


def has_wildcards(template: PatternTemplate) -> bool:
    return any(
        template.label(v) == WILDCARD for v in template.vertices()
    )


def wildcard_vertices(template: PatternTemplate) -> List[int]:
    return [v for v in template.vertices() if template.label(v) == WILDCARD]


def instantiations(
    template: PatternTemplate,
    graph: Graph,
    max_instantiations: Optional[int] = 10_000,
) -> Iterator[PatternTemplate]:
    """Yield fully-labeled instantiations of a wildcard template.

    Wildcard vertices are assigned every combination of labels occurring
    in ``graph``; assignments whose labels cannot possibly support the
    wildcard vertex's template degree are skipped (degree screen).
    """
    wildcards = wildcard_vertices(template)
    if not wildcards:
        yield template
        return
    graph_labels = sorted(graph.label_set())
    if not graph_labels:
        return
    # Degree screen: a label can host wildcard vertex w only if some graph
    # vertex with that label has at least deg(w) neighbors.
    max_degree_by_label: Dict[int, int] = {}
    for v in graph.vertices():
        label = graph.label(v)
        degree = graph.degree(v)
        if degree > max_degree_by_label.get(label, -1):
            max_degree_by_label[label] = degree
    feasible: Dict[int, List[int]] = {}
    for w in wildcards:
        needed = template.graph.degree(w)
        feasible[w] = [
            lab for lab in graph_labels if max_degree_by_label[lab] >= needed
        ]
    count = 0
    for assignment in itertools.product(*(feasible[w] for w in wildcards)):
        count += 1
        if max_instantiations is not None and count > max_instantiations:
            raise TemplateError(
                f"wildcard instantiation budget exceeded ({max_instantiations})"
            )
        labels = {v: template.label(v) for v in template.vertices()}
        for w, label in zip(wildcards, assignment):
            labels[w] = label
        name = template.name + "[" + ",".join(map(str, assignment)) + "]"
        yield PatternTemplate.from_edges(
            template.edges(), labels,
            mandatory_edges=template.mandatory_edges, name=name,
        )


class WildcardResult:
    """Merged results of all instantiations of a wildcard query."""

    def __init__(self, template: PatternTemplate, k: int) -> None:
        self.template = template
        self.k = k
        #: instantiation name → its PipelineResult
        self.per_instantiation: Dict[str, PipelineResult] = {}
        #: vertex → set of (instantiation name, prototype id) memberships
        self.match_vectors: Dict[int, Set[Tuple[str, int]]] = {}
        self.total_simulated_seconds = 0.0

    def matched_vertices(self) -> Set[int]:
        return set(self.match_vectors)

    def instantiations_with_matches(self) -> List[str]:
        return [
            name
            for name, result in self.per_instantiation.items()
            if result.match_vectors
        ]

    def total_match_mappings(self) -> Optional[int]:
        totals = [
            result.total_match_mappings()
            for result in self.per_instantiation.values()
        ]
        if any(t is None for t in totals):
            return None
        return sum(totals)

    def __repr__(self) -> str:
        return (
            f"WildcardResult({self.template.name!r}, "
            f"instantiations={len(self.per_instantiation)}, "
            f"matched_vertices={len(self.match_vectors)})"
        )


def run_wildcard_pipeline(
    graph: Graph,
    template: PatternTemplate,
    k: int,
    options: Optional[PipelineOptions] = None,
    max_instantiations: Optional[int] = 10_000,
) -> WildcardResult:
    """Approximate matching for a template with wildcard vertices.

    Runs the exact pipeline once per feasible instantiation and merges the
    per-vertex membership vectors; guarantees are inherited unchanged.
    """
    merged = WildcardResult(template, k)
    # Instantiations differ structurally (distinct label assignments), so
    # the batch executor's class sharing buys nothing here — but routing
    # the sweep through run_batch would still share the per-class caches;
    # kept on the direct loop until wildcard batching is profiled.
    for instantiation in instantiations(template, graph, max_instantiations):  # repro-lint: ignore[R7]
        result = run_pipeline(graph, instantiation, k, options)
        merged.per_instantiation[instantiation.name] = result
        merged.total_simulated_seconds += result.total_simulated_seconds
        for vertex, proto_ids in result.match_vectors.items():
            bucket = merged.match_vectors.setdefault(vertex, set())
            for proto_id in proto_ids:
                bucket.add((instantiation.name, proto_id))
    return merged
