"""Motif counting via the approximate-matching pipeline (§5.6).

The paper maps motif counting onto its system directly: starting from the
maximal-edge motif (the ``s``-clique, unlabeled), recursive edge removal
generates the remaining connected ``s``-vertex motifs as prototypes, and
the matching system counts matches for all of them in one run.

Two counting conventions matter:

* the pipeline counts **non-induced** (subgraph) occurrences per motif;
* Arabesque-style motif counting reports **vertex-induced** embeddings.

:func:`count_motifs` returns both: induced counts are recovered from the
non-induced ones by inverting the spanning-subgraph overcounting relation
``noninduced(H) = Σ_G  #spanning-subgraphs-of-G-isomorphic-to-H · induced(G)``
(a triangular integer system over the motif set).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import PipelineError
from ..graph.graph import Graph
from ..graph.isomorphism import (
    automorphism_count,
    canonical_form,
    count_subgraph_isomorphisms,
)
from .pipeline import PipelineOptions, PipelineResult, run_pipeline
from .prototypes import Prototype, PrototypeSet, generate_prototypes
from .template import PatternTemplate, clique_template


def motif_template(size: int) -> PatternTemplate:
    """The unlabeled ``size``-clique — the maximal-edge motif."""
    return clique_template(size, labels=[0] * size, name=f"{size}-motif")


def motif_prototypes(size: int) -> PrototypeSet:
    """All connected ``size``-vertex motifs as a prototype set.

    3 vertices → 2 motifs (triangle, path); 4 vertices → 6 motifs, matching
    the counts quoted in §5.6.
    """
    template = motif_template(size)
    return generate_prototypes(template, template.max_meaningful_distance())


class MotifCounts:
    """Per-motif non-induced and induced counts for one graph."""

    def __init__(
        self,
        size: int,
        prototypes: List[Prototype],
        noninduced: Dict[int, int],
        induced: Dict[int, int],
        result: PipelineResult,
    ) -> None:
        self.size = size
        self.prototypes = prototypes
        #: prototype id → number of distinct non-induced occurrences
        self.noninduced = noninduced
        #: prototype id → number of vertex-induced embeddings
        self.induced = induced
        self.result = result
        #: the :class:`~repro.core.batch.BatchResult` behind a batched
        #: census (None for the single-pipeline and sequential paths)
        self.batch = None

    def by_name(self, induced: bool = True) -> Dict[str, int]:
        counts = self.induced if induced else self.noninduced
        return {proto.name: counts[proto.id] for proto in self.prototypes}

    def total_induced(self) -> int:
        return sum(self.induced.values())

    def __repr__(self) -> str:
        return f"MotifCounts(size={self.size}, induced={self.by_name()})"


def count_motifs(
    graph: Graph,
    size: int,
    options: Optional[PipelineOptions] = None,
    use_extension: bool = True,
    batched: bool = False,
) -> MotifCounts:
    """Count all connected ``size``-vertex motifs of ``graph``.

    Runs the full approximate-matching pipeline on the unlabeled
    ``size``-clique template with maximal edit-distance and counting on.
    ``use_extension`` applies the match-extension counting optimization of
    §4 (disable it for the naive/ablation comparisons).  ``batched``
    routes the census through the template-library batch executor
    instead: each motif becomes an exact (``k = 0``) query, family
    absorption folds them all back into one clique-rooted pipeline, and
    auxiliary pruned views shrink every level — same counts, read off
    the batch result.
    """
    import dataclasses

    options = options or PipelineOptions()
    if batched:
        return _count_motifs_batched(graph, size, options)
    options = dataclasses.replace(
        options, count_matches=True, enumeration_optimization=use_extension
    )
    template = motif_template(size)
    result = run_pipeline(
        graph, template, template.max_meaningful_distance(), options
    )
    prototypes = result.prototype_set.all()
    noninduced: Dict[int, int] = {}
    for proto in prototypes:
        outcome = result.outcome_for(proto.id)
        if outcome.distinct_matches is None:
            raise PipelineError("motif counting requires count_matches")
        noninduced[proto.id] = outcome.distinct_matches
    induced = induced_from_noninduced(prototypes, noninduced)
    return MotifCounts(size, prototypes, noninduced, induced, result)


def _motif_query_template(proto: Prototype) -> PatternTemplate:
    """One motif prototype as a standalone unlabeled query template."""
    return PatternTemplate.from_edges(
        proto.graph.edges(),
        {v: 0 for v in proto.graph.vertices()},
        name=proto.name,
    )


def _count_motifs_batched(
    graph: Graph, size: int, options: PipelineOptions
) -> MotifCounts:
    """Motif census through :func:`~repro.core.batch.run_batch`.

    The match-extension optimization stays off — it carries dict match
    states, which would disable the array level sweeps the auxiliary
    views live on; the batch path gets its speedup from sharing one
    clique-rooted run and from the views themselves.
    """
    import dataclasses

    from .batch import BatchQuery, run_batch

    options = dataclasses.replace(
        options,
        count_matches=True,
        enumeration_optimization=False,
        aux_views=True,
    )
    prototypes = motif_prototypes(size).all()
    queries = [
        BatchQuery(_motif_query_template(proto), 0, name=proto.name)
        for proto in prototypes
    ]
    batch = run_batch(graph, queries, options)
    noninduced: Dict[int, int] = {}
    for proto in prototypes:
        distinct = batch[proto.name].distinct_matches
        if distinct is None:
            raise PipelineError("motif counting requires count_matches")
        noninduced[proto.id] = distinct
    induced = induced_from_noninduced(prototypes, noninduced)
    root_result = next(iter(batch.class_results.values()))
    counts = MotifCounts(size, prototypes, noninduced, induced, root_result)
    counts.batch = batch
    return counts


def count_motifs_sequential(
    graph: Graph,
    size: int,
    options: Optional[PipelineOptions] = None,
) -> MotifCounts:
    """The loop-over-``run_pipeline`` census baseline (benchmark foil).

    Runs one independent exact pipeline per connected ``size``-vertex
    motif — recomputing kernels, prototypes and the ``M*`` traversal
    from scratch each time — exactly the per-template pattern the batch
    executor replaces (and lint rule R7 flags elsewhere).
    """
    import dataclasses

    options = options or PipelineOptions()
    options = dataclasses.replace(
        options, count_matches=True, enumeration_optimization=False
    )
    prototypes = motif_prototypes(size).all()
    noninduced: Dict[int, int] = {}
    result: Optional[PipelineResult] = None
    for proto in prototypes:  # repro-lint: ignore[R7]
        result = run_pipeline(graph, _motif_query_template(proto), 0, options)
        distinct = result.total_distinct_matches()
        if distinct is None:
            raise PipelineError("motif counting requires count_matches")
        noninduced[proto.id] = distinct
    induced = induced_from_noninduced(prototypes, noninduced)
    assert result is not None
    return MotifCounts(size, prototypes, noninduced, induced, result)


def induced_from_noninduced(
    prototypes: List[Prototype], noninduced: Dict[int, int]
) -> Dict[int, int]:
    """Invert the spanning-subgraph overcounting relation (exact integers).

    Processes motifs in descending edge count: the densest motif's induced
    count equals its non-induced count, and each sparser motif subtracts
    the contributions of all denser supergraph motifs.
    """
    ordered = sorted(prototypes, key=lambda p: -p.num_edges)
    spanning = {
        (inner.id, outer.id): spanning_subgraph_count(inner.graph, outer.graph)
        for inner in ordered
        for outer in ordered
        if inner.num_edges <= outer.num_edges
    }
    induced: Dict[int, int] = {}
    for inner in sorted(ordered, key=lambda p: -p.num_edges):
        value = noninduced[inner.id]
        for outer in ordered:
            if outer.id == inner.id or outer.num_edges <= inner.num_edges:
                continue
            coefficient = spanning.get((inner.id, outer.id), 0)
            if coefficient:
                value -= coefficient * induced[outer.id]
        if value < 0:
            raise PipelineError(
                "negative induced count — inconsistent non-induced inputs"
            )
        induced[inner.id] = value
    return induced


#: (canonical inner, canonical outer) → spanning-subgraph coefficient.
#: The coefficients are pure graph invariants, and every census of one
#: motif size keeps re-deriving the same triangular system — across
#: repeat calls, batched/sequential comparisons, and benchmark repeats.
_SPANNING_CACHE: Dict[Tuple, int] = {}

#: canonical form → |Aut(G)| (shared by the coefficient computation)
_AUTOMORPHISM_CACHE: Dict[Tuple, int] = {}


def cached_automorphism_count(graph: Graph) -> int:
    """Memoized :func:`~repro.graph.isomorphism.automorphism_count`."""
    key = canonical_form(graph)
    count = _AUTOMORPHISM_CACHE.get(key)
    if count is None:
        count = automorphism_count(graph)
        _AUTOMORPHISM_CACHE[key] = count
    return count


def spanning_subgraph_count(inner: Graph, outer: Graph) -> int:
    """Number of spanning subgraphs of ``outer`` isomorphic to ``inner``.

    Both graphs have the same vertex count, so every monomorphism is a
    vertex bijection; dividing by ``inner``'s automorphisms counts distinct
    edge subsets.  Memoized on the canonical forms of both graphs — the
    value is an isomorphism invariant.
    """
    if inner.num_vertices != outer.num_vertices:
        return 0
    key = (canonical_form(inner), canonical_form(outer))
    count = _SPANNING_CACHE.get(key)
    if count is None:
        mappings = count_subgraph_isomorphisms(inner, outer)
        count = mappings // cached_automorphism_count(inner)
        _SPANNING_CACHE[key] = count
    return count


def clear_motif_caches() -> None:
    """Drop the memoized inversion coefficients (test hook)."""
    _SPANNING_CACHE.clear()
    _AUTOMORPHISM_CACHE.clear()
