"""Motif counting via the approximate-matching pipeline (§5.6).

The paper maps motif counting onto its system directly: starting from the
maximal-edge motif (the ``s``-clique, unlabeled), recursive edge removal
generates the remaining connected ``s``-vertex motifs as prototypes, and
the matching system counts matches for all of them in one run.

Two counting conventions matter:

* the pipeline counts **non-induced** (subgraph) occurrences per motif;
* Arabesque-style motif counting reports **vertex-induced** embeddings.

:func:`count_motifs` returns both: induced counts are recovered from the
non-induced ones by inverting the spanning-subgraph overcounting relation
``noninduced(H) = Σ_G  #spanning-subgraphs-of-G-isomorphic-to-H · induced(G)``
(a triangular integer system over the motif set).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import PipelineError
from ..graph.graph import Graph
from ..graph.isomorphism import automorphism_count, count_subgraph_isomorphisms
from .pipeline import PipelineOptions, PipelineResult, run_pipeline
from .prototypes import Prototype, PrototypeSet, generate_prototypes
from .template import PatternTemplate, clique_template


def motif_template(size: int) -> PatternTemplate:
    """The unlabeled ``size``-clique — the maximal-edge motif."""
    return clique_template(size, labels=[0] * size, name=f"{size}-motif")


def motif_prototypes(size: int) -> PrototypeSet:
    """All connected ``size``-vertex motifs as a prototype set.

    3 vertices → 2 motifs (triangle, path); 4 vertices → 6 motifs, matching
    the counts quoted in §5.6.
    """
    template = motif_template(size)
    return generate_prototypes(template, template.max_meaningful_distance())


class MotifCounts:
    """Per-motif non-induced and induced counts for one graph."""

    def __init__(
        self,
        size: int,
        prototypes: List[Prototype],
        noninduced: Dict[int, int],
        induced: Dict[int, int],
        result: PipelineResult,
    ) -> None:
        self.size = size
        self.prototypes = prototypes
        #: prototype id → number of distinct non-induced occurrences
        self.noninduced = noninduced
        #: prototype id → number of vertex-induced embeddings
        self.induced = induced
        self.result = result

    def by_name(self, induced: bool = True) -> Dict[str, int]:
        counts = self.induced if induced else self.noninduced
        return {proto.name: counts[proto.id] for proto in self.prototypes}

    def total_induced(self) -> int:
        return sum(self.induced.values())

    def __repr__(self) -> str:
        return f"MotifCounts(size={self.size}, induced={self.by_name()})"


def count_motifs(
    graph: Graph,
    size: int,
    options: Optional[PipelineOptions] = None,
    use_extension: bool = True,
) -> MotifCounts:
    """Count all connected ``size``-vertex motifs of ``graph``.

    Runs the full approximate-matching pipeline on the unlabeled
    ``size``-clique template with maximal edit-distance and counting on.
    ``use_extension`` applies the match-extension counting optimization of
    §4 (disable it for the naive/ablation comparisons).
    """
    import dataclasses

    options = options or PipelineOptions()
    options = dataclasses.replace(
        options, count_matches=True, enumeration_optimization=use_extension
    )
    template = motif_template(size)
    result = run_pipeline(
        graph, template, template.max_meaningful_distance(), options
    )
    prototypes = result.prototype_set.all()
    noninduced: Dict[int, int] = {}
    for proto in prototypes:
        outcome = result.outcome_for(proto.id)
        if outcome.distinct_matches is None:
            raise PipelineError("motif counting requires count_matches")
        noninduced[proto.id] = outcome.distinct_matches
    induced = induced_from_noninduced(prototypes, noninduced)
    return MotifCounts(size, prototypes, noninduced, induced, result)


def induced_from_noninduced(
    prototypes: List[Prototype], noninduced: Dict[int, int]
) -> Dict[int, int]:
    """Invert the spanning-subgraph overcounting relation (exact integers).

    Processes motifs in descending edge count: the densest motif's induced
    count equals its non-induced count, and each sparser motif subtracts
    the contributions of all denser supergraph motifs.
    """
    ordered = sorted(prototypes, key=lambda p: -p.num_edges)
    spanning = {
        (inner.id, outer.id): spanning_subgraph_count(inner.graph, outer.graph)
        for inner in ordered
        for outer in ordered
        if inner.num_edges <= outer.num_edges
    }
    induced: Dict[int, int] = {}
    for inner in sorted(ordered, key=lambda p: -p.num_edges):
        value = noninduced[inner.id]
        for outer in ordered:
            if outer.id == inner.id or outer.num_edges <= inner.num_edges:
                continue
            coefficient = spanning.get((inner.id, outer.id), 0)
            if coefficient:
                value -= coefficient * induced[outer.id]
        if value < 0:
            raise PipelineError(
                "negative induced count — inconsistent non-induced inputs"
            )
        induced[inner.id] = value
    return induced


def spanning_subgraph_count(inner: Graph, outer: Graph) -> int:
    """Number of spanning subgraphs of ``outer`` isomorphic to ``inner``.

    Both graphs have the same vertex count, so every monomorphism is a
    vertex bijection; dividing by ``inner``'s automorphisms counts distinct
    edge subsets.
    """
    if inner.num_vertices != outer.num_vertices:
        return 0
    mappings = count_subgraph_isomorphisms(inner, outer)
    return mappings // automorphism_count(inner)
