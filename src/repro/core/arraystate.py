"""Array-backed CSR search state and vectorized kernel fixpoints.

The dict-of-sets :class:`~repro.core.state.SearchState` is the canonical
representation (NLCC token walks, enumeration and the result objects all
consume it), but the LCC/M* fixed points spend their time in per-vertex
Python loops.  This module mirrors the paper's actual system shape (§4:
a static CSR with bit vectors for deactivation) for exactly those hot
loops:

* :class:`GraphCsr` — an immutable CSR snapshot of a background
  :class:`~repro.graph.graph.Graph` (``indptr``/``indices`` with every
  undirected edge stored once per direction, a ``mirror`` permutation
  mapping each directed edge to its reverse, dense vertex-label codes,
  per-edge canonical label-pair codes and optional edge-label codes),
  memoized on the graph and invalidated by any mutation;
* :class:`ArraySearchState` — per-vertex ``role_mask`` (uint64, same bit
  layout as :class:`~repro.core.kernels.RoleKernel`), a ``vertex_active``
  byte array and a per-directed-edge ``edge_alive`` byte array, with
  vectorized ``initial`` seeding, ``active_counts``, deactivation,
  ``for_prototype_search`` label-pair filtering and ``union_with``;
* :func:`array_kernel_fixpoint` — the semi-naive arc-consistency loop of
  :func:`~repro.core.kernels.kernel_fixpoint` with the per-vertex inbox
  dicts replaced by boolean worklist arrays and the witness fold replaced
  by one ``np.bitwise_or.reduceat`` over CSR segments per round.

Exactness contract: every operation reproduces the dict semantics
*bit-for-bit*, including its quirks — the asymmetric initial edge
aliveness (edges from candidates toward non-candidate neighbors are alive
until pruned; the reverse direction never was), candidates holding empty
role sets (the pooled-level union creates them; they survive every round
untouched because only vertices with a non-empty mask are evaluated), and
the full-round edge-dedup rule that skips a pair from the larger-id side
only when the smaller endpoint is still a *candidate* (not merely mask
non-empty).  ``tests/core/test_arraystate.py`` pins all of this against
the dict path on randomized workloads.

Message accounting is batched: instead of one Visitor object per edge
delivery, each round folds a rank-by-rank ``np.bincount`` matrix and
per-rank visit counts through :meth:`Engine.record_batched_round`, giving
the same per-round message/visit totals as the delta dict path (the Safra
termination-detection traffic is approximated at the minimal two circuits
per round, so control-message counts — and therefore simulated makespans —
may differ slightly from the object path; fixed points never do).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..graph.graph import Graph
from .kernels import RoleKernel
from .state import SearchState, _label_pair

_U64 = np.uint64
_ZERO = np.uint64(0)

#: role masks are one machine word, as in the bit-vector tables of §4
MAX_ARRAY_ROLES = 64


# ----------------------------------------------------------------------
# CSR snapshot
# ----------------------------------------------------------------------
class GraphCsr:
    """Immutable CSR view of a background graph (memoized, see :func:`csr_of`).

    Directed storage: each undirected edge appears once per direction;
    edge ``e`` runs ``src[e] -> indices[e]`` (dense vertex indices), and
    ``mirror[e]`` is the position of the reverse edge.  All arrays are
    frozen — per-search mutable state lives in :class:`ArraySearchState`.
    """

    __slots__ = (
        "graph",
        "order",
        "index_of",
        "indptr",
        "indices",
        "src",
        "mirror",
        "degrees",
        "zero_degree",
        "label_codes",
        "label_ids",
        "num_labels",
        "vid_gt",
        "pair_code",
        "edge_label_codes",
        "edge_label_ids",
        "num_vertices",
        "num_directed_edges",
    )

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        n = graph.num_vertices
        m = 2 * graph.num_edges
        self.num_vertices = n
        self.num_directed_edges = m
        order = np.fromiter(graph.vertices(), dtype=np.int64, count=n)
        self.order = order
        index_of = {int(v): i for i, v in enumerate(order)}
        self.index_of = index_of

        indptr = np.zeros(n + 1, dtype=np.int64)
        indices = np.empty(m, dtype=np.int64)
        has_edge_labels = graph.has_edge_labels
        edge_label_ids: Dict[int, int] = {}
        ecodes = np.zeros(m, dtype=np.int64) if has_edge_labels else None
        edge_label = graph.edge_label
        pos = 0
        for i, v in enumerate(order.tolist()):
            for w in graph.neighbors(v):
                indices[pos] = index_of[w]
                if has_edge_labels:
                    lab = edge_label(v, w)
                    if lab is None:
                        code = 0
                    else:
                        code = edge_label_ids.get(lab)
                        if code is None:
                            # 0 is reserved for unlabeled edges
                            code = len(edge_label_ids) + 1
                            edge_label_ids[lab] = code
                    ecodes[pos] = code
                pos += 1
            indptr[i + 1] = pos
        self.indptr = indptr
        self.indices = indices
        self.degrees = np.diff(indptr)
        self.zero_degree = self.degrees == 0
        self.src = np.repeat(np.arange(n, dtype=np.int64), self.degrees)
        self.edge_label_codes = ecodes
        self.edge_label_ids = edge_label_ids

        # Reverse-edge permutation: sorting edges by (src, dst) and by
        # (dst, src) yields the same sequence of undirected pairs, so the
        # k-th entries of the two orders are each other's reverses.
        forward = np.lexsort((indices, self.src))
        backward = np.lexsort((self.src, indices))
        mirror = np.empty(m, dtype=np.int64)
        mirror[forward] = backward
        self.mirror = mirror

        label_ids: Dict[int, int] = {}
        raw_labels = [graph.label(v) for v in order.tolist()]
        for lab in raw_labels:
            if lab not in label_ids:
                label_ids[lab] = len(label_ids)
        self.label_ids = label_ids
        self.num_labels = max(len(label_ids), 1)
        self.label_codes = np.fromiter(
            (label_ids[lab] for lab in raw_labels), dtype=np.int64, count=n
        )

        dst_vid = order[indices]
        src_vid = order[self.src]
        self.vid_gt = dst_vid > src_vid
        lo = np.minimum(self.label_codes[self.src], self.label_codes[indices])
        hi = np.maximum(self.label_codes[self.src], self.label_codes[indices])
        self.pair_code = lo * np.int64(self.num_labels) + hi

        for name in (
            "order", "indptr", "indices", "src", "mirror", "degrees",
            "zero_degree", "label_codes", "vid_gt", "pair_code",
        ):
            getattr(self, name).flags.writeable = False
        if ecodes is not None:
            ecodes.flags.writeable = False

    def label_pair_code(self, label_a: int, label_b: int) -> Optional[int]:
        """Dense code of an unordered vertex-label pair, if both occur."""
        a = self.label_ids.get(label_a)
        b = self.label_ids.get(label_b)
        if a is None or b is None:
            return None
        lo, hi = (a, b) if a <= b else (b, a)
        return lo * self.num_labels + hi


def csr_of(graph: Graph) -> GraphCsr:
    """The graph's memoized CSR snapshot (rebuilt after any mutation)."""
    cache = graph._csr_cache
    if cache is None:
        cache = GraphCsr(graph)
        graph._csr_cache = cache
    return cache


def _role_bits(roles: Sequence[int]) -> Dict[int, int]:
    if len(roles) > MAX_ARRAY_ROLES:
        raise ValueError(
            f"{len(roles)} roles exceed the {MAX_ARRAY_ROLES}-bit mask width"
        )
    return {role: 1 << i for i, role in enumerate(roles)}


def _segment_or(contrib: np.ndarray, csr: GraphCsr) -> np.ndarray:
    """Per-vertex OR of a per-edge uint64 array over CSR row segments."""
    if contrib.shape[0] == 0:
        return np.zeros(csr.num_vertices, dtype=_U64)
    # The sentinel keeps reduceat in bounds for empty trailing rows; empty
    # segments yield a neighbor's garbage value, zeroed via zero_degree.
    padded = np.concatenate([contrib, np.zeros(1, dtype=_U64)])
    out = np.bitwise_or.reduceat(padded, csr.indptr[:-1])
    out[csr.zero_degree] = _ZERO
    return out


# ----------------------------------------------------------------------
# Array search state
# ----------------------------------------------------------------------
class ArraySearchState:
    """Bit-vector search state over a :class:`GraphCsr`.

    ``role_mask[i]`` packs the candidate roles of vertex ``order[i]`` in
    :class:`RoleKernel` bit order; ``vertex_active`` tracks candidacy
    separately because the dict state allows active vertices with *empty*
    role sets (the pooled-level union creates them); ``edge_alive[e]``
    tracks the directed edge ``src[e] -> indices[e]`` — aliveness is
    per-direction because the dict's initial state only activates the
    candidate-side direction of edges toward non-candidate neighbors.
    """

    __slots__ = (
        "graph", "csr", "roles", "role_bit",
        "role_mask", "vertex_active", "edge_alive",
    )

    def __init__(
        self,
        graph: Graph,
        csr: GraphCsr,
        roles: Sequence[int],
        role_mask: np.ndarray,
        vertex_active: np.ndarray,
        edge_alive: np.ndarray,
    ) -> None:
        self.graph = graph
        self.csr = csr
        self.roles = list(roles)
        self.role_bit = _role_bits(self.roles)
        self.role_mask = role_mask
        self.vertex_active = vertex_active
        self.edge_alive = edge_alive

    # ------------------------------------------------------------------
    @classmethod
    def initial(cls, graph: Graph, template) -> "ArraySearchState":
        """Vectorized label seeding, matching ``SearchState.initial``.

        Every vertex whose label a template role carries becomes a
        candidate for all roles of that label; each candidate's *full*
        adjacency row starts alive (including edges to non-candidates —
        their reverse directions start dead, as in the dict state).
        """
        csr = csr_of(graph)
        roles = sorted(template.vertices())
        role_bit = _role_bits(roles)
        by_label: Dict[int, int] = {}
        for role in roles:
            lab = template.label(role)
            by_label[lab] = by_label.get(lab, 0) | role_bit[role]
        mask_by_code = np.zeros(csr.num_labels, dtype=_U64)
        for lab, mask in by_label.items():
            code = csr.label_ids.get(lab)
            if code is not None:
                mask_by_code[code] = mask
        role_mask = mask_by_code[csr.label_codes]
        vertex_active = role_mask != _ZERO
        edge_alive = vertex_active[csr.src].copy()
        return cls(graph, csr, roles, role_mask, vertex_active, edge_alive)

    @classmethod
    def from_search_state(
        cls, state: SearchState, roles: Optional[Sequence[int]] = None
    ) -> "ArraySearchState":
        """Lossless import of a dict :class:`SearchState`.

        ``roles`` fixes the bit layout (pass ``kernel.roles`` so masks
        line up with the kernel tables); by default the roles present in
        the state are used.
        """
        csr = csr_of(state.graph)
        if roles is None:
            seen: Set[int] = set()
            for role_set in state.candidates.values():
                seen |= role_set
            roles = sorted(seen)
        role_bit = _role_bits(roles)
        n = csr.num_vertices
        role_mask = np.zeros(n, dtype=_U64)
        vertex_active = np.zeros(n, dtype=bool)
        index_of = csr.index_of
        for v, role_set in state.candidates.items():
            i = index_of[v]
            vertex_active[i] = True
            mask = 0
            for role in role_set:
                mask |= role_bit[role]
            role_mask[i] = mask
        edge_alive = np.zeros(csr.num_directed_edges, dtype=bool)
        indptr = csr.indptr
        indices = csr.indices
        for v, nbrs in state.active_edges.items():
            if not nbrs:
                continue
            i = index_of[v]
            s, e = int(indptr[i]), int(indptr[i + 1])
            if len(nbrs) == e - s:
                edge_alive[s:e] = True
            else:
                targets = np.fromiter(
                    (index_of[u] for u in nbrs), dtype=np.int64, count=len(nbrs)
                )
                edge_alive[s:e] = np.isin(indices[s:e], targets)
        return cls(state.graph, csr, roles, role_mask, vertex_active, edge_alive)

    # ------------------------------------------------------------------
    def _build_dicts(self) -> Tuple[Dict[int, Set[int]], Dict[int, Set[int]]]:
        csr = self.csr
        indptr = csr.indptr
        indices = csr.indices
        order_list = csr.order.tolist()
        mask_list = self.role_mask.tolist()
        alive = self.edge_alive
        roles = self.roles
        decode_cache: Dict[int, Tuple[int, ...]] = {}
        candidates: Dict[int, Set[int]] = {}
        active_edges: Dict[int, Set[int]] = {}
        for i in np.nonzero(self.vertex_active)[0].tolist():
            mask = mask_list[i]
            decoded = decode_cache.get(mask)
            if decoded is None:
                decoded = tuple(
                    roles[b] for b in range(mask.bit_length()) if (mask >> b) & 1
                )
                decode_cache[mask] = decoded
            candidates[order_list[i]] = set(decoded)
            s, e = int(indptr[i]), int(indptr[i + 1])
            row_alive = alive[s:e]
            if row_alive.all():
                nbrs = indices[s:e]
            else:
                nbrs = indices[s:e][row_alive]
            active_edges[order_list[i]] = {order_list[t] for t in nbrs.tolist()}
        return candidates, active_edges

    def to_search_state(self) -> SearchState:
        """Lossless export to a fresh dict :class:`SearchState`."""
        candidates, active_edges = self._build_dicts()
        return SearchState(self.graph, candidates, active_edges)

    def write_back(self, state: SearchState) -> None:
        """Overwrite ``state`` in place with this array state's content."""
        candidates, active_edges = self._build_dicts()
        state.candidates = candidates
        state.active_edges = active_edges

    def copy(self) -> "ArraySearchState":
        return ArraySearchState(
            self.graph, self.csr, self.roles,
            self.role_mask.copy(), self.vertex_active.copy(),
            self.edge_alive.copy(),
        )

    # ------------------------------------------------------------------
    @property
    def num_active_vertices(self) -> int:
        return int(np.count_nonzero(self.vertex_active))

    def is_active(self, vertex: int) -> bool:
        return bool(self.vertex_active[self.csr.index_of[vertex]])

    def active_counts(self) -> Tuple[int, int]:
        """``(num_active_vertices, num_active_edges)``, fully vectorized."""
        csr = self.csr
        active = self.vertex_active
        sel = (
            self.edge_alive
            & csr.vid_gt
            & active[csr.src]
            & active[csr.indices]
        )
        return int(np.count_nonzero(active)), int(np.count_nonzero(sel))

    def active_edge_list(self) -> List[Tuple[int, int]]:
        """Canonical ``(min, max)`` edges with both endpoints active."""
        csr = self.csr
        active = self.vertex_active
        sel = (
            self.edge_alive
            & csr.vid_gt
            & active[csr.src]
            & active[csr.indices]
        )
        idx = np.nonzero(sel)[0]
        us = csr.order[csr.src[idx]].tolist()
        vs = csr.order[csr.indices[idx]].tolist()
        return list(zip(us, vs))

    # ------------------------------------------------------------------
    def deactivate_vertex(self, vertex: int) -> None:
        """Deactivate ``vertex``; kills its alive edges in both directions."""
        csr = self.csr
        i = csr.index_of[vertex]
        self.vertex_active[i] = False
        self.role_mask[i] = _ZERO
        s, e = int(csr.indptr[i]), int(csr.indptr[i + 1])
        row_alive = s + np.nonzero(self.edge_alive[s:e])[0]
        self.edge_alive[csr.mirror[row_alive]] = False
        self.edge_alive[s:e] = False

    def deactivate_edge(self, u: int, v: int) -> None:
        csr = self.csr
        iu = csr.index_of.get(u)
        iv = csr.index_of.get(v)
        if iu is None or iv is None:
            return
        s, e = int(csr.indptr[iu]), int(csr.indptr[iu + 1])
        hits = np.nonzero(csr.indices[s:e] == iv)[0]
        if hits.shape[0]:
            pos = s + int(hits[0])
            self.edge_alive[pos] = False
            self.edge_alive[csr.mirror[pos]] = False

    def remove_role(self, vertex: int, role: int) -> None:
        """Drop one candidate role; deactivates the vertex when none left."""
        i = self.csr.index_of[vertex]
        if not self.vertex_active[i]:
            return
        bit = self.role_bit.get(role)
        if bit is not None:
            self.role_mask[i] = self.role_mask[i] & ~_U64(bit)
        if self.role_mask[i] == _ZERO:
            self.deactivate_vertex(vertex)

    # ------------------------------------------------------------------
    def for_prototype_search(
        self, prototype, readmit_label_pairs: Iterable[Tuple[int, int]] = ()
    ) -> "ArraySearchState":
        """Vectorized form of ``SearchState.for_prototype_search``.

        Roles reset by label over the active vertices; an edge survives
        where its endpoints' label pair is prototype-adjacent (tested via
        the precomputed ``pair_code`` array), and background edges whose
        pair is in ``readmit_label_pairs`` *and* prototype-adjacent are
        re-admitted between active vertices (the ``E(l(q_i), l(q_j))``
        term of Obs. 1).
        """
        csr = self.csr
        proto_graph = prototype.graph
        roles = sorted(proto_graph.vertices())
        role_bit = _role_bits(roles)
        by_label: Dict[int, int] = {}
        for role in roles:
            lab = proto_graph.label(role)
            by_label[lab] = by_label.get(lab, 0) | role_bit[role]
        mask_by_code = np.zeros(csr.num_labels, dtype=_U64)
        for lab, mask in by_label.items():
            code = csr.label_ids.get(lab)
            if code is not None:
                mask_by_code[code] = mask
        new_mask = np.where(
            self.vertex_active, mask_by_code[csr.label_codes], _ZERO
        )
        new_active = new_mask != _ZERO

        adjacent_codes = set()
        for u, v in proto_graph.edges():
            code = csr.label_pair_code(proto_graph.label(u), proto_graph.label(v))
            if code is not None:
                adjacent_codes.add(code)
        readmit_codes = set()
        for pair in readmit_label_pairs:
            code = csr.label_pair_code(*_label_pair(*pair))
            if code is not None and code in adjacent_codes:
                readmit_codes.add(code)

        endpoints_ok = new_active[csr.src] & new_active[csr.indices]
        sel = np.zeros(csr.num_directed_edges, dtype=bool)
        if adjacent_codes:
            pair_ok = np.isin(
                csr.pair_code, np.fromiter(adjacent_codes, dtype=np.int64)
            )
            sel = self.edge_alive & csr.vid_gt & endpoints_ok & pair_ok
            if readmit_codes:
                readmit_ok = np.isin(
                    csr.pair_code, np.fromiter(readmit_codes, dtype=np.int64)
                )
                sel |= csr.vid_gt & endpoints_ok & readmit_ok
        new_alive = np.zeros(csr.num_directed_edges, dtype=bool)
        idx = np.nonzero(sel)[0]
        new_alive[idx] = True
        new_alive[csr.mirror[idx]] = True
        return ArraySearchState(
            self.graph, csr, roles, new_mask, new_active, new_alive
        )

    def union_with(self, other: "ArraySearchState") -> None:
        """In-place union via ``np.bitwise_or`` (level accumulation)."""
        if other.csr is not self.csr:
            raise ValueError("union_with requires states over the same graph")
        if other.roles != self.roles:
            merged = sorted(set(self.roles) | set(other.roles))
            to_bit = _role_bits(merged)
            if merged != self.roles:
                self.role_mask = _translate_masks(
                    self.role_mask, self.roles, to_bit
                )
                self.roles = merged
                self.role_bit = to_bit
            other_mask = _translate_masks(other.role_mask, other.roles, to_bit)
        else:
            other_mask = other.role_mask
        self.role_mask = np.bitwise_or(self.role_mask, other_mask)
        self.vertex_active |= other.vertex_active
        self.edge_alive |= other.edge_alive

    def __repr__(self) -> str:
        vertices, edges = self.active_counts()
        return (
            f"ArraySearchState(active_vertices={vertices}, "
            f"active_edges={edges})"
        )


def _translate_masks(
    mask_arr: np.ndarray, from_roles: Sequence[int], to_bit: Dict[int, int]
) -> np.ndarray:
    """Re-encode a mask array from one role/bit layout into another."""
    out = np.zeros_like(mask_arr)
    for i, role in enumerate(from_roles):
        bit_from = _U64(1 << i)
        bit_to = _U64(to_bit[role])
        out |= np.where((mask_arr & bit_from) != _ZERO, bit_to, _ZERO)
    return out


# ----------------------------------------------------------------------
# Batched per-round accounting
# ----------------------------------------------------------------------
class _RoundAccounting:
    """Folds one vectorized round's traffic into the engine stats.

    Precomputes per-vertex rank ownership and the per-edge destination
    rank (delegate targets are handled on the sender's rank, as in
    ``Context.broadcast``); each round then costs two ``np.bincount``
    calls instead of one Visitor object per message.
    """

    __slots__ = ("engine", "num_ranks", "rank_of", "src_rank", "dst_rank")

    def __init__(self, engine, csr: GraphCsr) -> None:
        self.engine = engine
        pgraph = engine.pgraph
        assignment = pgraph.assignment
        self.num_ranks = pgraph.num_ranks
        self.rank_of = np.fromiter(
            (assignment[v] for v in csr.order.tolist()),
            dtype=np.int64,
            count=csr.num_vertices,
        )
        self.src_rank = self.rank_of[csr.src]
        dst_rank = self.rank_of[csr.indices]
        delegates = pgraph.delegates
        if delegates:
            is_delegate = np.fromiter(
                (v in delegates for v in csr.order.tolist()),
                dtype=bool,
                count=csr.num_vertices,
            )
            dst_rank = np.where(is_delegate[csr.indices], self.src_rank, dst_rank)
        self.dst_rank = dst_rank

    def record_round(
        self,
        seed_idx: np.ndarray,
        edge_idx: np.ndarray,
        round_started: Optional[float] = None,
    ) -> None:
        """Account one broadcast round: seeds visited, one message/edge.

        ``round_started`` (set only while tracing) stamps the per-round
        trace span recorded by :meth:`Engine.record_batched_round`.
        """
        ranks = self.num_ranks
        visits = np.bincount(self.rank_of[seed_idx], minlength=ranks)
        src_r = self.src_rank[edge_idx]
        dst_r = self.dst_rank[edge_idx]
        visits += np.bincount(dst_r, minlength=ranks)
        matrix = np.bincount(
            src_r * ranks + dst_r, minlength=ranks * ranks
        ).reshape(ranks, ranks)
        self.engine.record_batched_round(
            matrix.tolist(), visits.tolist(),
            round_started=round_started,
            worklist=int(seed_idx.shape[0]),
        )


# ----------------------------------------------------------------------
# Vectorized fixpoint
# ----------------------------------------------------------------------
def supports_array_fixpoint(kernel: RoleKernel) -> bool:
    """True if the kernel's role set fits the uint64 mask width."""
    return len(kernel.roles) <= MAX_ARRAY_ROLES


def array_kernel_fixpoint(
    astate: ArraySearchState,
    kernel: RoleKernel,
    engine,
    max_iterations: Optional[int] = None,
    delta: bool = True,
    mandatory_masks: Optional[Dict[int, int]] = None,
) -> int:
    """Vectorized :func:`~repro.core.kernels.kernel_fixpoint` over ``astate``.

    Same fixed point, same number of rounds and same per-round message
    and visit counts as the dict kernel path.  The persistent per-vertex
    inbox dicts of the delta mode are replaced by an invariant: after
    round 1, the inbox entry of ``v`` from ``u`` always equals ``u``'s
    current mask whenever the directed edge ``u -> v`` is alive (changed
    vertices re-broadcast; drops remove edges and entries together), so
    the witness fold can be recomputed live each round as one masked
    gather plus ``np.bitwise_or.reduceat`` over CSR rows.
    """
    csr = astate.csr
    if astate.roles != kernel.roles:
        raise ValueError("array state and kernel must share one role layout")
    n = csr.num_vertices
    indptr = csr.indptr
    indices = csr.indices
    src = csr.src
    mirror = csr.mirror
    mask = astate.role_mask
    active = astate.vertex_active
    alive = astate.edge_alive

    nbits = len(kernel.roles)
    bits = [(b, _U64(1 << b)) for b in range(nbits)]
    nm = np.fromiter(
        (kernel.neighbor_masks[1 << b] for b in range(nbits)),
        dtype=_U64, count=nbits,
    ) if nbits else np.zeros(0, dtype=_U64)
    mcs_mode = mandatory_masks is not None
    if mcs_mode:
        mand = np.fromiter(
            (mandatory_masks[1 << b] for b in range(nbits)),
            dtype=_U64, count=nbits,
        ) if nbits else np.zeros(0, dtype=_U64)
    edge_labeled = kernel.edge_labeled and not mcs_mode
    if edge_labeled:
        ecode = csr.edge_label_codes
        if ecode is None:
            ecode = np.zeros(csr.num_directed_edges, dtype=np.int64)
        any_nm = np.fromiter(
            (kernel.any_neighbor_masks[1 << b] for b in range(nbits)),
            dtype=_U64, count=nbits,
        )
        #: per-bit list of (edge-label code or None, required-mask scalar)
        labeled_req: List[List[Tuple[Optional[int], np.uint64]]] = []
        wanted_codes: Set[int] = set()
        for b in range(nbits):
            reqs = []
            for wanted, required in kernel.labeled_neighbor_masks[1 << b].items():
                code = csr.edge_label_ids.get(wanted)
                if code is not None:
                    wanted_codes.add(code)
                reqs.append((code, _U64(required)))
            labeled_req.append(reqs)
        #: per-bit acceptable-neighbor mask by graph edge-label code
        lab_nm = np.zeros((nbits, len(csr.edge_label_ids) + 1), dtype=_U64)
        for b in range(nbits):
            for wanted, required in kernel.labeled_neighbor_masks[1 << b].items():
                code = csr.edge_label_ids.get(wanted)
                if code is not None:
                    lab_nm[b, code] = _U64(required)

    accounting = _RoundAccounting(engine, csr)
    tracing = engine.tracer.enabled

    iterations = 0
    broadcasters: Optional[np.ndarray] = None  # None = full round
    pending = np.zeros(n, dtype=bool)
    received = np.zeros(n, dtype=bool)
    while max_iterations is None or iterations < max_iterations:
        iterations += 1
        round_started = time.perf_counter() if tracing else None

        # ------------------------------------------------- broadcast
        nonzero = mask != _ZERO
        if broadcasters is None:
            seeds = active
            sending = nonzero
        else:
            seeds = broadcasters
            sending = broadcasters
        sent = alive & sending[src]
        sent_idx = np.nonzero(sent)[0]
        # `active` mutates below; snapshot the seed set for the round's
        # accounting (folded in at the end of the iteration so the trace
        # span covers the whole round, not just the broadcast).
        seed_idx = np.nonzero(seeds)[0]
        received.fill(False)
        delivered = indices[sent_idx]
        received[delivered[active[delivered]]] = True

        # ------------------------------------------------- witness fold
        contrib = np.where(alive[mirror], mask[indices], _ZERO)
        witnessed = _segment_or(contrib, csr)
        if edge_labeled:
            witnessed_label = {
                code: _segment_or(
                    np.where(ecode == code, contrib, _ZERO), csr
                )
                for code in wanted_codes
            }

        # ---------------------------------------------- role refinement
        if broadcasters is None:
            evaluate = nonzero
        else:
            evaluate = (received | pending) & nonzero
        pending = np.zeros(n, dtype=bool)
        idx = np.nonzero(evaluate)[0]
        m_eval = mask[idx]
        w_eval = witnessed[idx]
        surviving = np.zeros(idx.shape[0], dtype=_U64)
        for b, bit in bits:
            has = (m_eval & bit) != _ZERO
            if not has.any():
                continue
            if mcs_mode:
                required = nm[b]
                if required == _ZERO:
                    ok = True  # isolated role: label match suffices
                else:
                    ok = ((mand[b] & ~w_eval) == _ZERO) & (
                        (required & w_eval) != _ZERO
                    )
            elif edge_labeled:
                ok = (any_nm[b] & ~w_eval) == _ZERO
                for code, required in labeled_req[b]:
                    if code is None:
                        # the wanted edge label never occurs in the graph
                        ok = ok & (required == _ZERO)
                    else:
                        wl = witnessed_label[code][idx]
                        ok = ok & ((wl & required) == required)
            else:
                required = nm[b]
                ok = (w_eval & required) == required
            surviving |= np.where(has & ok, bit, _ZERO)
        changed_eval = surviving != m_eval
        mask[idx] = surviving
        changed_vertices = np.zeros(n, dtype=bool)
        changed_vertices[idx[changed_eval]] = True
        elim_idx = idx[changed_eval & (surviving == _ZERO)]

        if elim_idx.shape[0]:
            active[elim_idx] = False
            elim_bool = np.zeros(n, dtype=bool)
            elim_bool[elim_idx] = True
            out_idx = np.nonzero(elim_bool[src] & alive)[0]
            # neighbors losing an inbox witness re-evaluate next round
            pending[indices[out_idx]] = True
            alive[mirror[out_idx]] = False
            alive[out_idx] = False

        # ---------------------------------------------- edge elimination
        changed = bool(changed_vertices.any())
        nonzero = mask != _ZERO
        if broadcasters is None:
            scope = nonzero
            cand = alive & scope[src]
            # pair handled from the smaller-id side when both are candidates
            cand &= csr.vid_gt | ~active[indices]
        else:
            scope = changed_vertices & nonzero
            cand = alive & scope[src]
        cand_idx = np.nonzero(cand)[0]
        if cand_idx.shape[0]:
            ms = mask[src[cand_idx]]
            md = mask[indices[cand_idx]]
            viable = np.zeros(cand_idx.shape[0], dtype=bool)
            if edge_labeled:
                codes = ecode[cand_idx]
            for b, bit in bits:
                has = (ms & bit) != _ZERO
                if not has.any():
                    continue
                if edge_labeled:
                    acceptable = any_nm[b] | lab_nm[b][codes]
                else:
                    acceptable = nm[b]
                viable |= has & ((acceptable & md) != _ZERO)
            drop_idx = cand_idx[~viable]
            if drop_idx.shape[0]:
                changed = True
                dst_t = indices[drop_idx]
                pending[dst_t[active[dst_t]]] = True
                rev = mirror[drop_idx]
                src_t = src[drop_idx]
                pending[src_t[alive[rev]]] = True
                alive[drop_idx] = False
                alive[rev] = False

        accounting.record_round(seed_idx, sent_idx, round_started)
        if not changed:
            break
        if delta:
            broadcasters = changed_vertices & nonzero
        else:
            broadcasters = None
    return iterations


def run_array_fixpoint(
    state: SearchState,
    kernel: RoleKernel,
    engine,
    max_iterations: Optional[int] = None,
    delta: bool = True,
    mandatory_masks: Optional[Dict[int, int]] = None,
) -> int:
    """Round-trip a dict state through the vectorized fixpoint.

    Imports ``state`` into an :class:`ArraySearchState` (kernel bit
    layout), runs :func:`array_kernel_fixpoint`, and writes the result
    back in place.  Returns the iteration count.
    """
    astate = ArraySearchState.from_search_state(state, roles=kernel.roles)
    iterations = array_kernel_fixpoint(
        astate, kernel, engine,
        max_iterations=max_iterations, delta=delta,
        mandatory_masks=mandatory_masks,
    )
    astate.write_back(state)
    return iterations


__all__ = [
    "ArraySearchState",
    "GraphCsr",
    "MAX_ARRAY_ROLES",
    "array_kernel_fixpoint",
    "csr_of",
    "run_array_fixpoint",
    "supports_array_fixpoint",
]
