"""Array-backed CSR search state and vectorized kernel fixpoints.

The dict-of-sets :class:`~repro.core.state.SearchState` is the canonical
representation (NLCC token walks, enumeration and the result objects all
consume it), but the LCC/M* fixed points spend their time in per-vertex
Python loops.  This module mirrors the paper's actual system shape (§4:
a static CSR with bit vectors for deactivation) for exactly those hot
loops:

* :class:`GraphCsr` — an immutable CSR snapshot of a background
  :class:`~repro.graph.graph.Graph` (``indptr``/``indices`` with every
  undirected edge stored once per direction, a ``mirror`` permutation
  mapping each directed edge to its reverse, dense vertex-label codes,
  per-edge canonical label-pair codes and optional edge-label codes),
  memoized on the graph and invalidated by any mutation;
* :class:`ArraySearchState` — per-vertex ``role_mask`` (uint64, same bit
  layout as :class:`~repro.core.kernels.RoleKernel`), a ``vertex_active``
  byte array and a per-directed-edge ``edge_alive`` byte array, with
  vectorized ``initial`` seeding, ``active_counts``, deactivation,
  ``for_prototype_search`` label-pair filtering and ``union_with``;
* :func:`array_kernel_fixpoint` — the semi-naive arc-consistency loop of
  :func:`~repro.core.kernels.kernel_fixpoint` with the per-vertex inbox
  dicts replaced by boolean worklist arrays and the witness fold replaced
  by one ``np.bitwise_or.reduceat`` over CSR segments per round.

Exactness contract: every operation reproduces the dict semantics
*bit-for-bit*, including its quirks — the asymmetric initial edge
aliveness (edges from candidates toward non-candidate neighbors are alive
until pruned; the reverse direction never was), candidates holding empty
role sets (the pooled-level union creates them; they survive every round
untouched because only vertices with a non-empty mask are evaluated), and
the full-round edge-dedup rule that skips a pair from the larger-id side
only when the smaller endpoint is still a *candidate* (not merely mask
non-empty).  ``tests/core/test_arraystate.py`` pins all of this against
the dict path on randomized workloads.

Message accounting is batched: instead of one Visitor object per edge
delivery, each round folds a rank-by-rank ``np.bincount`` matrix and
per-rank visit counts through :meth:`Engine.record_batched_round`, giving
the same per-round message/visit totals as the delta dict path (the Safra
termination-detection traffic is approximated at the minimal two circuits
per round, so control-message counts — and therefore simulated makespans —
may differ slightly from the object path; fixed points never do).
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..graph.graph import Graph
from .kernels import RoleKernel
from .state import SearchState, _label_pair

_U64 = np.uint64
_ZERO = np.uint64(0)
_WORD_FULL = (1 << 64) - 1

#: bits per role-mask word, as in the bit-vector tables of §4.  Templates
#: with at most this many roles keep the historical 1-D uint64 mask array;
#: wider templates switch to an ``(n, n_words)`` uint64 matrix with the
#: same :class:`RoleKernel` bit order spread across words (bit ``i`` lives
#: in word ``i // 64`` at position ``i % 64``).
MAX_ARRAY_ROLES = 64


def _num_words(num_roles: int) -> int:
    """Words of a role mask holding ``num_roles`` bits (at least one)."""
    return max(1, (num_roles + MAX_ARRAY_ROLES - 1) // MAX_ARRAY_ROLES)


def _mask_words(int_mask: int, n_words: int) -> np.ndarray:
    """Split an arbitrary-width Python-int mask into uint64 words."""
    return np.fromiter(
        ((int_mask >> (64 * w)) & _WORD_FULL for w in range(n_words)),
        dtype=_U64, count=n_words,
    )


def _mask_nonzero(mask: np.ndarray) -> np.ndarray:
    """Per-row non-empty test for 1-D (single-word) or 2-D mask arrays."""
    if mask.ndim == 1:
        return mask != _ZERO
    return (mask != _ZERO).any(axis=1)


def _zero_masks(n: int, n_words: int) -> np.ndarray:
    """A zeroed mask array in the layout ``n_words`` selects."""
    if n_words == 1:
        return np.zeros(n, dtype=_U64)
    return np.zeros((n, n_words), dtype=_U64)


def _widen_masks(mask_arr: np.ndarray, n_words: int) -> np.ndarray:
    """Re-layout a mask array to ``n_words`` words (same bit content)."""
    current = 1 if mask_arr.ndim == 1 else mask_arr.shape[1]
    if current == n_words:
        return mask_arr
    if current > n_words:
        raise ValueError("cannot narrow a role-mask array")
    out = _zero_masks(mask_arr.shape[0], n_words)
    if mask_arr.ndim == 1:
        out[:, 0] = mask_arr
    else:
        out[:, :current] = mask_arr
    return out


# ----------------------------------------------------------------------
# CSR snapshot
# ----------------------------------------------------------------------
class GraphCsr:
    """Immutable CSR view of a background graph (memoized, see :func:`csr_of`).

    Directed storage: each undirected edge appears once per direction;
    edge ``e`` runs ``src[e] -> indices[e]`` (dense vertex indices), and
    ``mirror[e]`` is the position of the reverse edge.  All arrays are
    frozen — per-search mutable state lives in :class:`ArraySearchState`.
    """

    __slots__ = (
        "graph",
        "order",
        "index_of",
        "indptr",
        "indices",
        "src",
        "mirror",
        "degrees",
        "zero_degree",
        "label_codes",
        "label_ids",
        "num_labels",
        "vid_gt",
        "pair_code",
        "edge_label_codes",
        "edge_label_ids",
        "num_vertices",
        "num_directed_edges",
        "parent",
        "parent_vertex_index",
        "parent_edge_index",
    )

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        n = graph.num_vertices
        m = 2 * graph.num_edges
        self.num_vertices = n
        self.num_directed_edges = m
        order = np.fromiter(graph.vertices(), dtype=np.int64, count=n)
        self.order = order
        index_of = {int(v): i for i, v in enumerate(order)}
        self.index_of = index_of

        indptr = np.zeros(n + 1, dtype=np.int64)
        indices = np.empty(m, dtype=np.int64)
        has_edge_labels = graph.has_edge_labels
        edge_label_ids: Dict[int, int] = {}
        ecodes = np.zeros(m, dtype=np.int64) if has_edge_labels else None
        edge_label = graph.edge_label
        pos = 0
        for i, v in enumerate(order.tolist()):
            for w in graph.neighbors(v):
                indices[pos] = index_of[w]
                if has_edge_labels:
                    lab = edge_label(v, w)
                    if lab is None:
                        code = 0
                    else:
                        code = edge_label_ids.get(lab)
                        if code is None:
                            # 0 is reserved for unlabeled edges
                            code = len(edge_label_ids) + 1
                            edge_label_ids[lab] = code
                    ecodes[pos] = code
                pos += 1
            indptr[i + 1] = pos
        self.indptr = indptr
        self.indices = indices
        self.degrees = np.diff(indptr)
        self.zero_degree = self.degrees == 0
        self.src = np.repeat(np.arange(n, dtype=np.int64), self.degrees)
        self.edge_label_codes = ecodes
        self.edge_label_ids = edge_label_ids

        # Reverse-edge permutation: sorting edges by (src, dst) and by
        # (dst, src) yields the same sequence of undirected pairs, so the
        # k-th entries of the two orders are each other's reverses.
        forward = np.lexsort((indices, self.src))
        backward = np.lexsort((self.src, indices))
        mirror = np.empty(m, dtype=np.int64)
        mirror[forward] = backward
        self.mirror = mirror

        label_ids: Dict[int, int] = {}
        raw_labels = [graph.label(v) for v in order.tolist()]
        for lab in raw_labels:
            if lab not in label_ids:
                label_ids[lab] = len(label_ids)
        self.label_ids = label_ids
        self.num_labels = max(len(label_ids), 1)
        self.label_codes = np.fromiter(
            (label_ids[lab] for lab in raw_labels), dtype=np.int64, count=n
        )

        dst_vid = order[indices]
        src_vid = order[self.src]
        self.vid_gt = dst_vid > src_vid
        lo = np.minimum(self.label_codes[self.src], self.label_codes[indices])
        hi = np.maximum(self.label_codes[self.src], self.label_codes[indices])
        self.pair_code = lo * np.int64(self.num_labels) + hi

        for name in (
            "order", "indptr", "indices", "src", "mirror", "degrees",
            "zero_degree", "label_codes", "vid_gt", "pair_code",
        ):
            getattr(self, name).flags.writeable = False
        if ecodes is not None:
            ecodes.flags.writeable = False

        self.parent = None
        self.parent_vertex_index = None
        self.parent_edge_index = None

    def induced_view(self, vertex_mask: np.ndarray) -> "GraphCsr":
        """Compact CSR over the vertices selected by ``vertex_mask``.

        The auxiliary-graph primitive of the batch executor: once a level
        union (or an M* scope) has pruned the background graph, the
        surviving adjacency is packed into a dense sub-CSR so every later
        search touches arrays sized to the pruned graph instead of ``G``.
        The view is *vertex-induced*: every background edge between two
        surviving vertices is kept (Obs. 1's readmission scans require
        the full induced adjacency, not just currently-alive edges).

        Original vertex ids are preserved in ``order`` — results read off
        a view need no remapping.  The old<->new maps live in
        ``parent_vertex_index`` (dense parent row indices of the kept
        vertices) and ``parent_edge_index`` (parent directed-edge
        positions of the kept edges); ``parent`` links back to the source
        CSR.  The backing :class:`~repro.graph.graph.Graph` is the
        id-preserving ``graph.subgraph`` and the view installs itself as
        that subgraph's memoized CSR.
        """
        keep = np.asarray(vertex_mask, dtype=bool)
        if keep.shape[0] != self.num_vertices:
            raise ValueError(
                f"vertex_mask has {keep.shape[0]} entries for a CSR of "
                f"{self.num_vertices} vertices"
            )
        kept = np.nonzero(keep)[0]
        n_new = int(kept.shape[0])
        ids = self.order[kept]
        edge_keep = keep[self.src] & keep[self.indices]
        eidx = np.nonzero(edge_keep)[0]
        m_new = int(eidx.shape[0])

        view = GraphCsr.__new__(GraphCsr)
        view.graph = self.graph.subgraph(ids.tolist())
        view.parent = self
        view.parent_vertex_index = kept
        view.parent_edge_index = eidx
        view.num_vertices = n_new
        view.num_directed_edges = m_new
        view.order = ids
        view.index_of = {int(v): i for i, v in enumerate(ids.tolist())}

        # eidx is ascending and the parent's src is non-decreasing, so the
        # remapped edges stay grouped (and row-ordered) by source row.
        new_of_old = np.full(self.num_vertices, -1, dtype=np.int64)
        new_of_old[kept] = np.arange(n_new, dtype=np.int64)
        view.src = new_of_old[self.src[eidx]]
        view.indices = new_of_old[self.indices[eidx]]
        degrees = np.bincount(view.src, minlength=n_new).astype(np.int64)
        indptr = np.zeros(n_new + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        view.indptr = indptr
        view.degrees = degrees
        view.zero_degree = degrees == 0

        # A surviving edge's reverse also survives (same endpoint pair),
        # so the parent mirror restricted to eidx permutes eidx itself.
        pos_of_old = np.full(self.num_directed_edges, -1, dtype=np.int64)
        pos_of_old[eidx] = np.arange(m_new, dtype=np.int64)
        view.mirror = pos_of_old[self.mirror[eidx]]

        view.label_codes = self.label_codes[kept]
        view.label_ids = self.label_ids
        view.num_labels = self.num_labels
        view.vid_gt = self.vid_gt[eidx]
        view.pair_code = self.pair_code[eidx]
        view.edge_label_ids = self.edge_label_ids
        if self.edge_label_codes is not None:
            view.edge_label_codes = self.edge_label_codes[eidx]
        else:
            view.edge_label_codes = None

        for name in (
            "order", "indptr", "indices", "src", "mirror", "degrees",
            "zero_degree", "label_codes", "vid_gt", "pair_code",
        ):
            getattr(view, name).flags.writeable = False
        if view.edge_label_codes is not None:
            view.edge_label_codes.flags.writeable = False

        view.graph._csr_cache = view
        return view

    def label_pair_code(self, label_a: int, label_b: int) -> Optional[int]:
        """Dense code of an unordered vertex-label pair, if both occur."""
        a = self.label_ids.get(label_a)
        b = self.label_ids.get(label_b)
        if a is None or b is None:
            return None
        lo, hi = (a, b) if a <= b else (b, a)
        return lo * self.num_labels + hi


def csr_of(graph: Graph) -> GraphCsr:
    """The graph's memoized CSR snapshot (rebuilt after any mutation)."""
    cache = graph._csr_cache
    if cache is None:
        cache = GraphCsr(graph)
        graph._csr_cache = cache
    return cache


def _role_bits(roles: Sequence[int]) -> Dict[int, int]:
    """Role → bit map in kernel order (Python ints, arbitrary width)."""
    return {role: 1 << i for i, role in enumerate(roles)}


def _label_mask_table(
    csr: GraphCsr,
    template,
    roles: Sequence[int],
    role_bit: Dict[int, int],
    n_words: Optional[int] = None,
) -> np.ndarray:
    """Per-label-code union of the role bits carrying that label.

    Indexing the table by ``csr.label_codes`` seeds every vertex with all
    roles of its label — the common core of ``initial``,
    ``for_prototype_search`` and the pooled scope-payload reconstruction.
    Single-word layouts get a ``(num_labels,)`` uint64 table; wider
    layouts a ``(num_labels, n_words)`` matrix.
    """
    if n_words is None:
        n_words = _num_words(len(roles))
    by_label: Dict[int, int] = {}
    for role in roles:
        lab = template.label(role)
        by_label[lab] = by_label.get(lab, 0) | role_bit[role]
    mask_by_code = _zero_masks(csr.num_labels, n_words)
    for lab, mask in by_label.items():
        code = csr.label_ids.get(lab)
        if code is not None:
            if n_words == 1:
                mask_by_code[code] = mask
            else:
                mask_by_code[code] = _mask_words(mask, n_words)
    return mask_by_code


def pack_bits(flags: np.ndarray) -> bytes:
    """Wire form of a boolean array: ``np.packbits`` bitmap bytes."""
    return np.packbits(flags).tobytes()


def unpack_bits(data: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits` (fresh, writable boolean array)."""
    raw = np.frombuffer(data, dtype=np.uint8)
    return np.unpackbits(raw, count=count).astype(bool)


def _segment_or(contrib: np.ndarray, csr: GraphCsr) -> np.ndarray:
    """Per-vertex OR of a per-edge uint64 array over CSR row segments.

    ``contrib`` may be 1-D (single-word masks) or 2-D ``(edges, n_words)``;
    the fold runs along axis 0 either way.
    """
    if contrib.shape[0] == 0:
        return np.zeros((csr.num_vertices,) + contrib.shape[1:], dtype=_U64)
    # The sentinel keeps reduceat in bounds for empty trailing rows; empty
    # segments yield a neighbor's garbage value, zeroed via zero_degree.
    padded = np.concatenate(
        [contrib, np.zeros((1,) + contrib.shape[1:], dtype=_U64)]
    )
    out = np.bitwise_or.reduceat(padded, csr.indptr[:-1], axis=0)
    out[csr.zero_degree] = _ZERO
    return out


# ----------------------------------------------------------------------
# Array search state
# ----------------------------------------------------------------------
class ArraySearchState:
    """Bit-vector search state over a :class:`GraphCsr`.

    ``role_mask[i]`` packs the candidate roles of vertex ``order[i]`` in
    :class:`RoleKernel` bit order — a 1-D uint64 array for templates of
    at most :data:`MAX_ARRAY_ROLES` roles (the fast single-word layout),
    an ``(n, n_words)`` uint64 matrix beyond that (bit ``i`` in word
    ``i // 64``); ``vertex_active`` tracks candidacy separately because
    the dict state allows active vertices with *empty* role sets (the
    pooled-level union creates them); ``edge_alive[e]`` tracks the
    directed edge ``src[e] -> indices[e]`` — aliveness is per-direction
    because the dict's initial state only activates the candidate-side
    direction of edges toward non-candidate neighbors.
    """

    __slots__ = (
        "graph", "csr", "roles", "role_bit",
        "role_mask", "vertex_active", "edge_alive",
    )

    def __init__(
        self,
        graph: Graph,
        csr: GraphCsr,
        roles: Sequence[int],
        role_mask: np.ndarray,
        vertex_active: np.ndarray,
        edge_alive: np.ndarray,
    ) -> None:
        self.graph = graph
        self.csr = csr
        self.roles = list(roles)
        self.role_bit = _role_bits(self.roles)
        self.role_mask = role_mask
        self.vertex_active = vertex_active
        self.edge_alive = edge_alive

    @property
    def n_words(self) -> int:
        """Words per role mask (1 = the historical single-word layout)."""
        return 1 if self.role_mask.ndim == 1 else int(self.role_mask.shape[1])

    # ------------------------------------------------------------------
    @classmethod
    def initial(
        cls, graph: Graph, template, min_words: int = 1
    ) -> "ArraySearchState":
        """Vectorized label seeding, matching ``SearchState.initial``.

        Every vertex whose label a template role carries becomes a
        candidate for all roles of that label; each candidate's *full*
        adjacency row starts alive (including edges to non-candidates —
        their reverse directions start dead, as in the dict state).
        ``min_words`` forces the multi-word layout even for <=64-role
        templates (the parity suite exercises the wide kernels this way).
        """
        csr = csr_of(graph)
        roles = sorted(template.vertices())
        role_bit = _role_bits(roles)
        n_words = max(_num_words(len(roles)), min_words)
        mask_by_code = _label_mask_table(
            csr, template, roles, role_bit, n_words=n_words
        )
        role_mask = mask_by_code[csr.label_codes]
        vertex_active = _mask_nonzero(role_mask)
        edge_alive = vertex_active[csr.src].copy()
        return cls(graph, csr, roles, role_mask, vertex_active, edge_alive)

    @classmethod
    def empty(cls, graph: Graph) -> "ArraySearchState":
        """An all-inactive state (the level-union accumulator seed)."""
        csr = csr_of(graph)
        return cls(
            graph, csr, [],
            np.zeros(csr.num_vertices, dtype=_U64),
            np.zeros(csr.num_vertices, dtype=bool),
            np.zeros(csr.num_directed_edges, dtype=bool),
        )

    @classmethod
    def from_search_state(
        cls,
        state: SearchState,
        roles: Optional[Sequence[int]] = None,
        min_words: int = 1,
    ) -> "ArraySearchState":
        """Lossless import of a dict :class:`SearchState`.

        ``roles`` fixes the bit layout (pass ``kernel.roles`` so masks
        line up with the kernel tables); by default the roles present in
        the state are used.  ``min_words`` forces the multi-word layout
        (parity testing of the wide kernels on narrow templates).
        """
        csr = csr_of(state.graph)
        if roles is None:
            seen: Set[int] = set()
            for role_set in state.candidates.values():
                seen |= role_set
            roles = sorted(seen)
        role_bit = _role_bits(roles)
        n = csr.num_vertices
        n_words = max(_num_words(len(roles)), min_words)
        role_mask = _zero_masks(n, n_words)
        vertex_active = np.zeros(n, dtype=bool)
        index_of = csr.index_of
        encode_cache: Dict[FrozenSet[int], np.ndarray] = {}
        for v, role_set in state.candidates.items():
            i = index_of[v]
            vertex_active[i] = True
            mask = 0
            for role in role_set:
                mask |= role_bit[role]
            if n_words == 1:
                role_mask[i] = mask
            else:
                key = frozenset(role_set)
                words = encode_cache.get(key)
                if words is None:
                    words = _mask_words(mask, n_words)
                    encode_cache[key] = words
                role_mask[i] = words
        edge_alive = np.zeros(csr.num_directed_edges, dtype=bool)
        indptr = csr.indptr
        indices = csr.indices
        for v, nbrs in state.active_edges.items():
            if not nbrs:
                continue
            i = index_of[v]
            s, e = int(indptr[i]), int(indptr[i + 1])
            if len(nbrs) == e - s:
                edge_alive[s:e] = True
            else:
                targets = np.fromiter(
                    (index_of[u] for u in nbrs), dtype=np.int64, count=len(nbrs)
                )
                edge_alive[s:e] = np.isin(indices[s:e], targets)
        return cls(state.graph, csr, roles, role_mask, vertex_active, edge_alive)

    @classmethod
    def from_scope_payload(
        cls,
        graph: Graph,
        csr: GraphCsr,
        prototype,
        vertex_bits: bytes,
        edge_bits: bytes,
    ) -> "ArraySearchState":
        """Rebuild a ``for_prototype_search`` scope from its wire bitmaps.

        Role masks are never shipped: ``for_prototype_search`` *resets*
        them by label (``where(active, table[label_codes], 0)``), so
        re-deriving the mask from the prototype's labels over the shipped
        ``vertex_active`` bitmap is bit-identical to the sender's array —
        two bitmaps replace the whole dict payload.
        """
        roles = sorted(prototype.graph.vertices())
        role_bit = _role_bits(roles)
        vertex_active = unpack_bits(vertex_bits, csr.num_vertices)
        edge_alive = unpack_bits(edge_bits, csr.num_directed_edges)
        mask_by_code = _label_mask_table(csr, prototype.graph, roles, role_bit)
        seeded = mask_by_code[csr.label_codes]
        keep = vertex_active if seeded.ndim == 1 else vertex_active[:, None]
        role_mask = np.where(keep, seeded, _ZERO)
        return cls(graph, csr, roles, role_mask, vertex_active, edge_alive)

    def scope_payload(self) -> Tuple[bytes, bytes]:
        """``(vertex bitmap, edge bitmap)`` wire form of a scope cut."""
        return pack_bits(self.vertex_active), pack_bits(self.edge_alive)

    def solution_payload(self) -> Tuple[bytes, bytes]:
        """Final-state bitmaps for the pooled level union.

        The edge bitmap holds the canonical solution edges (alive in the
        ``vid_gt`` direction with both endpoints active) expanded to both
        directions — exactly the symmetric edge set the dict pooled union
        rebuilds from a worker's sorted ``solution_edges`` list.
        """
        csr = self.csr
        active = self.vertex_active
        sel = (
            self.edge_alive
            & csr.vid_gt
            & active[csr.src]
            & active[csr.indices]
        )
        both = sel.copy()
        idx = np.nonzero(sel)[0]
        both[csr.mirror[idx]] = True
        return pack_bits(active), pack_bits(both)

    # ------------------------------------------------------------------
    def _build_dicts(self) -> Tuple[Dict[int, Set[int]], Dict[int, Set[int]]]:
        csr = self.csr
        indptr = csr.indptr
        indices = csr.indices
        order_list = csr.order.tolist()
        if self.role_mask.ndim == 1:
            mask_list = self.role_mask.tolist()
        else:
            # Explicit .tolist() crossing back into dict-land: combine the
            # words of each row into one arbitrary-width Python int.
            mask_list = [
                sum(word << (64 * w) for w, word in enumerate(row))
                for row in self.role_mask.tolist()
            ]
        alive = self.edge_alive
        roles = self.roles
        decode_cache: Dict[int, Tuple[int, ...]] = {}
        candidates: Dict[int, Set[int]] = {}
        active_edges: Dict[int, Set[int]] = {}
        for i in np.nonzero(self.vertex_active)[0].tolist():
            mask = mask_list[i]
            decoded = decode_cache.get(mask)
            if decoded is None:
                decoded = tuple(
                    roles[b] for b in range(mask.bit_length()) if (mask >> b) & 1
                )
                decode_cache[mask] = decoded
            candidates[order_list[i]] = set(decoded)
            s, e = int(indptr[i]), int(indptr[i + 1])
            row_alive = alive[s:e]
            if row_alive.all():
                nbrs = indices[s:e]
            else:
                nbrs = indices[s:e][row_alive]
            active_edges[order_list[i]] = {order_list[t] for t in nbrs.tolist()}
        return candidates, active_edges

    def to_search_state(self) -> SearchState:
        """Lossless export to a fresh dict :class:`SearchState`."""
        candidates, active_edges = self._build_dicts()
        return SearchState(self.graph, candidates, active_edges)

    def write_back(self, state: SearchState) -> None:
        """Overwrite ``state`` in place with this array state's content."""
        candidates, active_edges = self._build_dicts()
        state.candidates = candidates
        state.active_edges = active_edges

    def reimport(self, state: SearchState) -> None:
        """Overwrite this array state from ``state`` (same role layout).

        The persistent-search path calls this after an enumeration-based
        verification replaced the dict state's candidates/edges, so the
        array copy feeding the level union stays in sync.
        """
        fresh = ArraySearchState.from_search_state(
            state, roles=self.roles, min_words=self.n_words
        )
        self.role_mask = fresh.role_mask
        self.vertex_active = fresh.vertex_active
        self.edge_alive = fresh.edge_alive

    def copy(self) -> "ArraySearchState":
        return ArraySearchState(
            self.graph, self.csr, self.roles,
            self.role_mask.copy(), self.vertex_active.copy(),
            self.edge_alive.copy(),
        )

    def restrict_to_view(self, view: GraphCsr) -> "ArraySearchState":
        """Project this state onto an induced sub-view of its CSR.

        ``view`` must come from ``self.csr.induced_view(...)``; the
        returned state gathers role masks, activity and edge aliveness
        through the view's parent index maps, so it is bit-identical to
        this state restricted to the surviving vertices/edges — just over
        arrays sized to the pruned graph.
        """
        if view.parent is not self.csr:
            raise ValueError("view was not derived from this state's CSR")
        return ArraySearchState(
            view.graph, view, self.roles,
            self.role_mask[view.parent_vertex_index],
            self.vertex_active[view.parent_vertex_index],
            self.edge_alive[view.parent_edge_index],
        )

    # ------------------------------------------------------------------
    @property
    def num_active_vertices(self) -> int:
        return int(np.count_nonzero(self.vertex_active))

    def is_active(self, vertex: int) -> bool:
        return bool(self.vertex_active[self.csr.index_of[vertex]])

    def active_counts(self) -> Tuple[int, int]:
        """``(num_active_vertices, num_active_edges)``, fully vectorized."""
        csr = self.csr
        active = self.vertex_active
        sel = (
            self.edge_alive
            & csr.vid_gt
            & active[csr.src]
            & active[csr.indices]
        )
        return int(np.count_nonzero(active)), int(np.count_nonzero(sel))

    def active_edge_list(self) -> List[Tuple[int, int]]:
        """Canonical ``(min, max)`` edges with both endpoints active."""
        csr = self.csr
        active = self.vertex_active
        sel = (
            self.edge_alive
            & csr.vid_gt
            & active[csr.src]
            & active[csr.indices]
        )
        idx = np.nonzero(sel)[0]
        us = csr.order[csr.src[idx]].tolist()
        vs = csr.order[csr.indices[idx]].tolist()
        return list(zip(us, vs))

    # ------------------------------------------------------------------
    def deactivate_vertex(self, vertex: int) -> None:
        """Deactivate ``vertex``; kills its alive edges in both directions."""
        csr = self.csr
        i = csr.index_of[vertex]
        self.vertex_active[i] = False
        self.role_mask[i] = _ZERO
        s, e = int(csr.indptr[i]), int(csr.indptr[i + 1])
        row_alive = s + np.nonzero(self.edge_alive[s:e])[0]
        self.edge_alive[csr.mirror[row_alive]] = False
        self.edge_alive[s:e] = False

    def deactivate_indices(self, idx: np.ndarray) -> None:
        """Bulk :meth:`deactivate_vertex` over dense vertex indices."""
        csr = self.csr
        self.vertex_active[idx] = False
        self.role_mask[idx] = _ZERO
        dead = np.zeros(csr.num_vertices, dtype=bool)
        dead[idx] = True
        out = np.nonzero(dead[csr.src] & self.edge_alive)[0]
        self.edge_alive[csr.mirror[out]] = False
        self.edge_alive[out] = False

    def deactivate_edge(self, u: int, v: int) -> None:
        csr = self.csr
        iu = csr.index_of.get(u)
        iv = csr.index_of.get(v)
        if iu is None or iv is None:
            return
        s, e = int(csr.indptr[iu]), int(csr.indptr[iu + 1])
        hits = np.nonzero(csr.indices[s:e] == iv)[0]
        if hits.shape[0]:
            pos = s + int(hits[0])
            self.edge_alive[pos] = False
            self.edge_alive[csr.mirror[pos]] = False

    def remove_role(self, vertex: int, role: int) -> None:
        """Drop one candidate role; deactivates the vertex when none left."""
        i = self.csr.index_of[vertex]
        if not self.vertex_active[i]:
            return
        bit = self.role_bit.get(role)
        if self.role_mask.ndim == 1:
            if bit is not None:
                self.role_mask[i] = self.role_mask[i] & ~_U64(bit)
            if self.role_mask[i] == _ZERO:
                self.deactivate_vertex(vertex)
        else:
            if bit is not None:
                word, offset = divmod(bit.bit_length() - 1, 64)
                self.role_mask[i, word] = self.role_mask[i, word] & ~_U64(
                    1 << offset
                )
            if not self.role_mask[i].any():
                self.deactivate_vertex(vertex)

    # ------------------------------------------------------------------
    def for_prototype_search(
        self, prototype, readmit_label_pairs: Iterable[Tuple[int, int]] = ()
    ) -> "ArraySearchState":
        """Vectorized form of ``SearchState.for_prototype_search``.

        Roles reset by label over the active vertices; an edge survives
        where its endpoints' label pair is prototype-adjacent (tested via
        the precomputed ``pair_code`` array), and background edges whose
        pair is in ``readmit_label_pairs`` *and* prototype-adjacent are
        re-admitted between active vertices (the ``E(l(q_i), l(q_j))``
        term of Obs. 1).
        """
        csr = self.csr
        proto_graph = prototype.graph
        roles = sorted(proto_graph.vertices())
        role_bit = _role_bits(roles)
        mask_by_code = _label_mask_table(csr, proto_graph, roles, role_bit)
        seeded = mask_by_code[csr.label_codes]
        keep = (
            self.vertex_active if seeded.ndim == 1
            else self.vertex_active[:, None]
        )
        new_mask = np.where(keep, seeded, _ZERO)
        new_active = _mask_nonzero(new_mask)

        adjacent_codes = set()
        for u, v in proto_graph.edges():
            code = csr.label_pair_code(proto_graph.label(u), proto_graph.label(v))
            if code is not None:
                adjacent_codes.add(code)
        readmit_codes = set()
        for pair in readmit_label_pairs:
            code = csr.label_pair_code(*_label_pair(*pair))
            if code is not None and code in adjacent_codes:
                readmit_codes.add(code)

        endpoints_ok = new_active[csr.src] & new_active[csr.indices]
        sel = np.zeros(csr.num_directed_edges, dtype=bool)
        if adjacent_codes:
            pair_ok = np.isin(
                csr.pair_code, np.fromiter(adjacent_codes, dtype=np.int64)
            )
            sel = self.edge_alive & csr.vid_gt & endpoints_ok & pair_ok
            if readmit_codes:
                readmit_ok = np.isin(
                    csr.pair_code, np.fromiter(readmit_codes, dtype=np.int64)
                )
                sel |= csr.vid_gt & endpoints_ok & readmit_ok
        new_alive = np.zeros(csr.num_directed_edges, dtype=bool)
        idx = np.nonzero(sel)[0]
        new_alive[idx] = True
        new_alive[csr.mirror[idx]] = True
        return ArraySearchState(
            self.graph, csr, roles, new_mask, new_active, new_alive
        )

    def union_with(self, other: "ArraySearchState") -> None:
        """In-place union via ``np.bitwise_or`` (level accumulation)."""
        if other.csr is not self.csr:
            raise ValueError("union_with requires states over the same graph")
        if other.roles != self.roles:
            merged = sorted(set(self.roles) | set(other.roles))
            to_bit = _role_bits(merged)
            n_words = max(_num_words(len(merged)), self.n_words)
            if merged != self.roles or n_words != self.n_words:
                self.role_mask = _translate_masks(
                    self.role_mask, self.roles, to_bit, n_words
                )
                self.roles = merged
                self.role_bit = to_bit
            other_mask = _translate_masks(
                other.role_mask, other.roles, to_bit, n_words
            )
        else:
            other_mask = other.role_mask
            wider = max(self.n_words, other.n_words)
            self.role_mask = _widen_masks(self.role_mask, wider)
            other_mask = _widen_masks(other_mask, wider)
        self.role_mask = np.bitwise_or(self.role_mask, other_mask)
        self.vertex_active |= other.vertex_active
        self.edge_alive |= other.edge_alive

    def __repr__(self) -> str:
        vertices, edges = self.active_counts()
        return (
            f"ArraySearchState(active_vertices={vertices}, "
            f"active_edges={edges})"
        )


def _translate_masks(
    mask_arr: np.ndarray,
    from_roles: Sequence[int],
    to_bit: Dict[int, int],
    n_words: Optional[int] = None,
) -> np.ndarray:
    """Re-encode a mask array from one role/bit layout into another.

    Handles every layout transition (1-D <-> 2-D, growing word counts):
    each source bit is read from its word/offset and OR-ed into the
    target bit's word/offset.
    """
    if n_words is None:
        n_words = _num_words(len(to_bit))
    out = _zero_masks(mask_arr.shape[0], n_words)
    for i, role in enumerate(from_roles):
        word_from, off_from = divmod(i, 64)
        src_col = mask_arr if mask_arr.ndim == 1 else mask_arr[:, word_from]
        has = (src_col & _U64(1 << off_from)) != _ZERO
        bit_to = to_bit[role]
        word_to, off_to = divmod(bit_to.bit_length() - 1, 64)
        dst_bit = _U64(1 << off_to)
        if out.ndim == 1:
            out |= np.where(has, dst_bit, _ZERO)
        else:
            out[:, word_to] |= np.where(has, dst_bit, _ZERO)
    return out


# ----------------------------------------------------------------------
# Batched per-round accounting
# ----------------------------------------------------------------------
class _RoundAccounting:
    """Folds one vectorized round's traffic into the engine stats.

    Precomputes per-vertex rank ownership and the per-edge destination
    rank (delegate targets are handled on the sender's rank, as in
    ``Context.broadcast``); each round then costs two ``np.bincount``
    calls instead of one Visitor object per message.
    """

    __slots__ = (
        "engine", "num_ranks", "rank_of", "src_rank", "dst_rank",
        "_matrix", "_visits",
    )

    def __init__(self, engine, csr: GraphCsr) -> None:
        self._matrix = None
        self._visits = None
        self.engine = engine
        pgraph = engine.pgraph
        assignment = pgraph.assignment
        self.num_ranks = pgraph.num_ranks
        self.rank_of = np.fromiter(
            (assignment[v] for v in csr.order.tolist()),
            dtype=np.int64,
            count=csr.num_vertices,
        )
        self.src_rank = self.rank_of[csr.src]
        dst_rank = self.rank_of[csr.indices]
        delegates = pgraph.delegates
        if delegates:
            is_delegate = np.fromiter(
                (v in delegates for v in csr.order.tolist()),
                dtype=bool,
                count=csr.num_vertices,
            )
            dst_rank = np.where(is_delegate[csr.indices], self.src_rank, dst_rank)
        self.dst_rank = dst_rank

    def record_round(
        self,
        seed_idx: np.ndarray,
        edge_idx: np.ndarray,
        round_started: Optional[float] = None,
    ) -> None:
        """Account one broadcast round: seeds visited, one message/edge.

        ``round_started`` (set only while tracing) stamps the per-round
        trace span recorded by :meth:`Engine.record_batched_round`.
        """
        ranks = self.num_ranks
        visits = np.bincount(self.rank_of[seed_idx], minlength=ranks)
        src_r = self.src_rank[edge_idx]
        dst_r = self.dst_rank[edge_idx]
        visits += np.bincount(dst_r, minlength=ranks)
        matrix = np.bincount(
            src_r * ranks + dst_r, minlength=ranks * ranks
        ).reshape(ranks, ranks)
        self.engine.record_batched_round(
            matrix.tolist(), visits.tolist(),
            round_started=round_started,
            worklist=int(seed_idx.shape[0]),
        )

    # -------------------------------------------------- multi-hop batches
    def begin(self) -> None:
        """Start accumulating traffic across several hops of one traversal."""
        ranks = self.num_ranks
        self._matrix = np.zeros(ranks * ranks, dtype=np.int64)
        self._visits = np.zeros(ranks, dtype=np.int64)

    def add_seed_visits(self, seed_idx: np.ndarray) -> None:
        """Count one dequeued-visitor visit per seed vertex."""
        self._visits += np.bincount(
            self.rank_of[seed_idx], minlength=self.num_ranks
        )

    def add_edge_traffic(self, edge_idx: np.ndarray) -> None:
        """Count one message (and one receiver visit) per directed edge."""
        ranks = self.num_ranks
        src_r = self.src_rank[edge_idx]
        dst_r = self.dst_rank[edge_idx]
        self._matrix += np.bincount(
            src_r * ranks + dst_r, minlength=ranks * ranks
        )
        self._visits += np.bincount(dst_r, minlength=ranks)

    def flush(
        self,
        round_started: Optional[float] = None,
        worklist: Optional[int] = None,
    ) -> None:
        """Record the accumulated batch as one traversal's traffic.

        One flush = one quiescence/barrier interval, matching the dict
        NLCC's single :meth:`Engine.do_traversal` per constraint.
        """
        ranks = self.num_ranks
        self.engine.record_batched_round(
            self._matrix.reshape(ranks, ranks).tolist(),
            self._visits.tolist(),
            round_started=round_started,
            worklist=worklist,
        )
        self._matrix = None
        self._visits = None


# ----------------------------------------------------------------------
# Vectorized fixpoint
# ----------------------------------------------------------------------
def supports_array_fixpoint(kernel: RoleKernel) -> bool:
    """Always true: the array path is total over role counts.

    Historically false beyond 64 roles; the multi-word ``(n, n_words)``
    mask layout lifted that limit, so every kernel now runs vectorized.
    Kept for API compatibility with older dispatch sites.
    """
    return True


#: adaptive dense-round switch floor: below this many role-holding
#: vertices the sparse bookkeeping is too cheap to be worth replacing
#: (and unit-test-sized graphs stay on the classic semi-naive schedule)
ADAPTIVE_MIN_VERTICES = 1024

#: switch to a dense round when the worklist covers at least this
#: fraction of the surviving role-holding vertices
ADAPTIVE_DENSITY_THRESHOLD = 0.5


def array_kernel_fixpoint(
    astate: ArraySearchState,
    kernel: RoleKernel,
    engine,
    max_iterations: Optional[int] = None,
    delta: bool = True,
    mandatory_masks: Optional[Dict[int, int]] = None,
    warm_mask: Optional[np.ndarray] = None,
    adaptive: bool = False,
) -> int:
    """Vectorized :func:`~repro.core.kernels.kernel_fixpoint` over ``astate``.

    Same fixed point, same number of rounds and same per-round message
    and visit counts as the dict kernel path.  The persistent per-vertex
    inbox dicts of the delta mode are replaced by an invariant: after
    round 1, the inbox entry of ``v`` from ``u`` always equals ``u``'s
    current mask whenever the directed edge ``u -> v`` is alive (changed
    vertices re-broadcast; drops remove edges and entries together), so
    the witness fold can be recomputed live each round as one masked
    gather plus ``np.bitwise_or.reduceat`` over CSR rows.

    ``warm_mask`` (a boolean vertex array) enables warm-start accounting
    for the very first round: only the flagged vertices are charged as
    round-1 broadcasters.  This models seeding a child prototype's search
    from the parent scope's surviving worklist — a receiver can
    reconstruct an unchanged neighbor's initial mask (a pure function of
    its vertex label) from persisted parent-scope knowledge, so only
    scope-modified vertices need to re-send.  Evaluation is untouched
    (every nonzero vertex is still refined in round 1), so the fixed
    point *and* the iteration count are bit-identical to a cold start;
    only the round-1 message/visit charge shrinks.

    ``adaptive`` enables the metrics-driven dense/sparse round switch:
    when the semi-naive worklist of the *next* round — re-broadcasters
    plus the ``pending`` vertices forced to re-evaluate by witness loss
    (elimination cascades flow almost entirely through ``pending``) —
    would cover at least :data:`ADAPTIVE_DENSITY_THRESHOLD` of the
    surviving role-holding vertices (and the scope is at least
    :data:`ADAPTIVE_MIN_VERTICES` large), the round runs dense — evaluating every nonzero vertex, like
    ``delta=False`` — instead of building the received/pending worklist
    machinery for a worklist that is most of the graph anyway.  The
    fixed point is identical by construction (a dense round evaluates a
    superset of the sparse round's vertices against the same witness
    fold, exactly the long-standing ``delta=False`` semantics); only the
    per-round message/visit accounting differs.  The switch itself is
    driven by exact vertex counts, never wall clock, so it is fully
    deterministic for a given scope.
    """
    csr = astate.csr
    if astate.roles != kernel.roles:
        raise ValueError("array state and kernel must share one role layout")
    if astate.role_mask.ndim > 1:
        # Multi-word layout (>64 roles or a forced-width parity run): the
        # single-word body below is preserved verbatim as the fast path.
        return _array_kernel_fixpoint_wide(
            astate, kernel, engine,
            max_iterations=max_iterations, delta=delta,
            mandatory_masks=mandatory_masks, warm_mask=warm_mask,
            adaptive=adaptive,
        )
    n = csr.num_vertices
    indptr = csr.indptr
    indices = csr.indices
    src = csr.src
    mirror = csr.mirror
    mask = astate.role_mask
    active = astate.vertex_active
    alive = astate.edge_alive

    nbits = len(kernel.roles)
    bits = [(b, _U64(1 << b)) for b in range(nbits)]
    nm = np.fromiter(
        (kernel.neighbor_masks[1 << b] for b in range(nbits)),
        dtype=_U64, count=nbits,
    ) if nbits else np.zeros(0, dtype=_U64)
    mcs_mode = mandatory_masks is not None
    if mcs_mode:
        mand = np.fromiter(
            (mandatory_masks[1 << b] for b in range(nbits)),
            dtype=_U64, count=nbits,
        ) if nbits else np.zeros(0, dtype=_U64)
    edge_labeled = kernel.edge_labeled and not mcs_mode
    if edge_labeled:
        ecode = csr.edge_label_codes
        if ecode is None:
            ecode = np.zeros(csr.num_directed_edges, dtype=np.int64)
        any_nm = np.fromiter(
            (kernel.any_neighbor_masks[1 << b] for b in range(nbits)),
            dtype=_U64, count=nbits,
        )
        #: per-bit list of (edge-label code or None, required-mask scalar)
        labeled_req: List[List[Tuple[Optional[int], np.uint64]]] = []
        wanted_codes: Set[int] = set()
        for b in range(nbits):
            reqs = []
            for wanted, required in kernel.labeled_neighbor_masks[1 << b].items():
                code = csr.edge_label_ids.get(wanted)
                if code is not None:
                    wanted_codes.add(code)
                reqs.append((code, _U64(required)))
            labeled_req.append(reqs)
        #: per-bit acceptable-neighbor mask by graph edge-label code
        lab_nm = np.zeros((nbits, len(csr.edge_label_ids) + 1), dtype=_U64)
        for b in range(nbits):
            for wanted, required in kernel.labeled_neighbor_masks[1 << b].items():
                code = csr.edge_label_ids.get(wanted)
                if code is not None:
                    lab_nm[b, code] = _U64(required)

    accounting = _RoundAccounting(engine, csr)
    tracing = engine.tracer.enabled

    # Always-on metrics: handles resolved once, one cell-add each per
    # round (the <2% overhead budget of the registry's design contract).
    metrics = engine.metrics
    m_dense = metrics.counter("fixpoint.rounds_dense")
    m_sparse = metrics.counter("fixpoint.rounds_sparse")
    m_adaptive = metrics.counter("fixpoint.rounds_adaptive_dense")
    m_worklist = metrics.counter("fixpoint.worklist_vertices")
    m_evaluated = metrics.counter("fixpoint.active_vertices")
    h_worklist = metrics.histogram("fixpoint.worklist_size")

    iterations = 0
    broadcasters: Optional[np.ndarray] = None  # None = full round
    pending = np.zeros(n, dtype=bool)
    received = np.zeros(n, dtype=bool)
    while max_iterations is None or iterations < max_iterations:
        iterations += 1
        round_started = time.perf_counter() if tracing else None

        # ------------------------------------------------- broadcast
        nonzero = mask != _ZERO
        if broadcasters is None:
            seeds = active
            sending = nonzero
            if iterations == 1 and warm_mask is not None:
                # Warm start: only scope-modified vertices are charged for
                # the first broadcast (accounting only — the witness fold
                # below reads masks directly, never the sent set).
                seeds = active & warm_mask
                sending = nonzero & warm_mask
        else:
            seeds = broadcasters
            sending = broadcasters
        sent = alive & sending[src]
        sent_idx = np.nonzero(sent)[0]
        # `active` mutates below; snapshot the seed set for the round's
        # accounting (folded in at the end of the iteration so the trace
        # span covers the whole round, not just the broadcast).
        seed_idx = np.nonzero(seeds)[0]
        received.fill(False)
        delivered = indices[sent_idx]
        received[delivered[active[delivered]]] = True

        # ------------------------------------------------- witness fold
        contrib = np.where(alive[mirror], mask[indices], _ZERO)
        witnessed = _segment_or(contrib, csr)
        if edge_labeled:
            witnessed_label = {
                code: _segment_or(
                    np.where(ecode == code, contrib, _ZERO), csr
                )
                for code in wanted_codes
            }

        # ---------------------------------------------- role refinement
        if broadcasters is None:
            evaluate = nonzero
        else:
            evaluate = (received | pending) & nonzero
        pending = np.zeros(n, dtype=bool)
        idx = np.nonzero(evaluate)[0]
        m_eval = mask[idx]
        w_eval = witnessed[idx]
        surviving = np.zeros(idx.shape[0], dtype=_U64)
        for b, bit in bits:
            has = (m_eval & bit) != _ZERO
            if not has.any():
                continue
            if mcs_mode:
                required = nm[b]
                if required == _ZERO:
                    ok = True  # isolated role: label match suffices
                else:
                    ok = ((mand[b] & ~w_eval) == _ZERO) & (
                        (required & w_eval) != _ZERO
                    )
            elif edge_labeled:
                ok = (any_nm[b] & ~w_eval) == _ZERO
                for code, required in labeled_req[b]:
                    if code is None:
                        # the wanted edge label never occurs in the graph
                        ok = ok & (required == _ZERO)
                    else:
                        wl = witnessed_label[code][idx]
                        ok = ok & ((wl & required) == required)
            else:
                required = nm[b]
                ok = (w_eval & required) == required
            surviving |= np.where(has & ok, bit, _ZERO)
        changed_eval = surviving != m_eval
        mask[idx] = surviving
        changed_vertices = np.zeros(n, dtype=bool)
        changed_vertices[idx[changed_eval]] = True
        elim_idx = idx[changed_eval & (surviving == _ZERO)]

        if elim_idx.shape[0]:
            active[elim_idx] = False
            elim_bool = np.zeros(n, dtype=bool)
            elim_bool[elim_idx] = True
            out_idx = np.nonzero(elim_bool[src] & alive)[0]
            # neighbors losing an inbox witness re-evaluate next round
            pending[indices[out_idx]] = True
            alive[mirror[out_idx]] = False
            alive[out_idx] = False

        # ---------------------------------------------- edge elimination
        changed = bool(changed_vertices.any())
        nonzero = mask != _ZERO
        if broadcasters is None:
            scope = nonzero
            cand = alive & scope[src]
            # pair handled from the smaller-id side when both are candidates
            cand &= csr.vid_gt | ~active[indices]
        else:
            scope = changed_vertices & nonzero
            cand = alive & scope[src]
        cand_idx = np.nonzero(cand)[0]
        if cand_idx.shape[0]:
            ms = mask[src[cand_idx]]
            md = mask[indices[cand_idx]]
            viable = np.zeros(cand_idx.shape[0], dtype=bool)
            if edge_labeled:
                codes = ecode[cand_idx]
            for b, bit in bits:
                has = (ms & bit) != _ZERO
                if not has.any():
                    continue
                if edge_labeled:
                    acceptable = any_nm[b] | lab_nm[b][codes]
                else:
                    acceptable = nm[b]
                viable |= has & ((acceptable & md) != _ZERO)
            drop_idx = cand_idx[~viable]
            if drop_idx.shape[0]:
                changed = True
                dst_t = indices[drop_idx]
                pending[dst_t[active[dst_t]]] = True
                rev = mirror[drop_idx]
                src_t = src[drop_idx]
                pending[src_t[alive[rev]]] = True
                alive[drop_idx] = False
                alive[rev] = False

        accounting.record_round(seed_idx, sent_idx, round_started)
        if broadcasters is None:
            m_dense.inc()
        else:
            m_sparse.inc()
        m_worklist.inc(seed_idx.shape[0])
        m_evaluated.inc(idx.shape[0])
        h_worklist.observe(seed_idx.shape[0])
        if not changed:
            break
        if delta:
            broadcasters = changed_vertices & nonzero
            if adaptive:
                scope_count = int(np.count_nonzero(nonzero))
                if scope_count >= ADAPTIVE_MIN_VERTICES:
                    # The round's true worklist: re-broadcasters plus the
                    # witness-loss re-evaluations queued in `pending`
                    # (elimination cascades have *empty* broadcaster sets
                    # — all their work arrives via `pending`).
                    worklist_count = int(
                        np.count_nonzero(broadcasters | (pending & nonzero))
                    )
                    if worklist_count >= ADAPTIVE_DENSITY_THRESHOLD * scope_count:
                        # The worklist is most of the scope: run the next
                        # round dense (delta=False semantics, a superset
                        # of the sparse evaluation — same fixed point).
                        broadcasters = None
                        m_adaptive.inc()
        else:
            broadcasters = None
    return iterations


def _array_kernel_fixpoint_wide(
    astate: ArraySearchState,
    kernel: RoleKernel,
    engine,
    max_iterations: Optional[int] = None,
    delta: bool = True,
    mandatory_masks: Optional[Dict[int, int]] = None,
    warm_mask: Optional[np.ndarray] = None,
    adaptive: bool = False,
) -> int:
    """Multi-word body of :func:`array_kernel_fixpoint`.

    Identical round structure, accounting and adaptive switch; the only
    differences are the ``(n, n_words)`` mask layout (role ``b`` lives in
    word ``b // 64``), per-word bit tables, and the subset/intersection
    checks folding across words with ``.all(axis=1)`` / ``.any(axis=1)``.
    """
    csr = astate.csr
    n = csr.num_vertices
    indptr = csr.indptr
    indices = csr.indices
    src = csr.src
    mirror = csr.mirror
    mask = astate.role_mask
    active = astate.vertex_active
    alive = astate.edge_alive
    n_words = astate.n_words

    nbits = len(kernel.roles)
    #: per-role (bit index, word, in-word bit value) addressing
    bit_addr = [
        (b, b // 64, _U64(1 << (b % 64))) for b in range(nbits)
    ]
    nm = (
        np.stack([
            _mask_words(kernel.neighbor_masks[1 << b], n_words)
            for b in range(nbits)
        ])
        if nbits else np.zeros((0, n_words), dtype=_U64)
    )
    mcs_mode = mandatory_masks is not None
    if mcs_mode:
        mand = (
            np.stack([
                _mask_words(mandatory_masks[1 << b], n_words)
                for b in range(nbits)
            ])
            if nbits else np.zeros((0, n_words), dtype=_U64)
        )
    edge_labeled = kernel.edge_labeled and not mcs_mode
    if edge_labeled:
        ecode = csr.edge_label_codes
        if ecode is None:
            ecode = np.zeros(csr.num_directed_edges, dtype=np.int64)
        any_nm = np.stack([
            _mask_words(kernel.any_neighbor_masks[1 << b], n_words)
            for b in range(nbits)
        ])
        #: per-bit list of (edge-label code or None, required word vector)
        labeled_req: List[List[Tuple[Optional[int], np.ndarray]]] = []
        wanted_codes: Set[int] = set()
        for b in range(nbits):
            reqs = []
            for wanted, required in kernel.labeled_neighbor_masks[1 << b].items():
                code = csr.edge_label_ids.get(wanted)
                if code is not None:
                    wanted_codes.add(code)
                reqs.append((code, _mask_words(required, n_words)))
            labeled_req.append(reqs)
        #: per-bit acceptable-neighbor words by graph edge-label code
        lab_nm = np.zeros(
            (nbits, len(csr.edge_label_ids) + 1, n_words), dtype=_U64
        )
        for b in range(nbits):
            for wanted, required in kernel.labeled_neighbor_masks[1 << b].items():
                code = csr.edge_label_ids.get(wanted)
                if code is not None:
                    lab_nm[b, code] = _mask_words(required, n_words)

    accounting = _RoundAccounting(engine, csr)
    tracing = engine.tracer.enabled

    metrics = engine.metrics
    m_dense = metrics.counter("fixpoint.rounds_dense")
    m_sparse = metrics.counter("fixpoint.rounds_sparse")
    m_adaptive = metrics.counter("fixpoint.rounds_adaptive_dense")
    m_worklist = metrics.counter("fixpoint.worklist_vertices")
    m_evaluated = metrics.counter("fixpoint.active_vertices")
    h_worklist = metrics.histogram("fixpoint.worklist_size")

    iterations = 0
    broadcasters: Optional[np.ndarray] = None  # None = full round
    pending = np.zeros(n, dtype=bool)
    received = np.zeros(n, dtype=bool)
    while max_iterations is None or iterations < max_iterations:
        iterations += 1
        round_started = time.perf_counter() if tracing else None

        # ------------------------------------------------- broadcast
        nonzero = (mask != _ZERO).any(axis=1)
        if broadcasters is None:
            seeds = active
            sending = nonzero
            if iterations == 1 and warm_mask is not None:
                seeds = active & warm_mask
                sending = nonzero & warm_mask
        else:
            seeds = broadcasters
            sending = broadcasters
        sent = alive & sending[src]
        sent_idx = np.nonzero(sent)[0]
        seed_idx = np.nonzero(seeds)[0]
        received.fill(False)
        delivered = indices[sent_idx]
        received[delivered[active[delivered]]] = True

        # ------------------------------------------------- witness fold
        contrib = np.where(alive[mirror][:, None], mask[indices], _ZERO)
        witnessed = _segment_or(contrib, csr)
        if edge_labeled:
            witnessed_label = {
                code: _segment_or(
                    np.where((ecode == code)[:, None], contrib, _ZERO), csr
                )
                for code in wanted_codes
            }

        # ---------------------------------------------- role refinement
        if broadcasters is None:
            evaluate = nonzero
        else:
            evaluate = (received | pending) & nonzero
        pending = np.zeros(n, dtype=bool)
        idx = np.nonzero(evaluate)[0]
        m_eval = mask[idx]
        w_eval = witnessed[idx]
        surviving = np.zeros((idx.shape[0], n_words), dtype=_U64)
        for b, word, bitval in bit_addr:
            has = (m_eval[:, word] & bitval) != _ZERO
            if not has.any():
                continue
            if mcs_mode:
                required = nm[b]
                if not required.any():
                    ok = True  # isolated role: label match suffices
                else:
                    ok = ((mand[b] & ~w_eval) == _ZERO).all(axis=1) & (
                        (required & w_eval) != _ZERO
                    ).any(axis=1)
            elif edge_labeled:
                ok = ((any_nm[b] & ~w_eval) == _ZERO).all(axis=1)
                for code, required in labeled_req[b]:
                    if code is None:
                        # the wanted edge label never occurs in the graph
                        if required.any():
                            ok = np.zeros(idx.shape[0], dtype=bool)
                    else:
                        wl = witnessed_label[code][idx]
                        ok = ok & ((wl & required) == required).all(axis=1)
            else:
                required = nm[b]
                ok = ((w_eval & required) == required).all(axis=1)
            surviving[:, word] |= np.where(has & ok, bitval, _ZERO)
        changed_eval = (surviving != m_eval).any(axis=1)
        mask[idx] = surviving
        changed_vertices = np.zeros(n, dtype=bool)
        changed_vertices[idx[changed_eval]] = True
        surv_zero = ~(surviving != _ZERO).any(axis=1)
        elim_idx = idx[changed_eval & surv_zero]

        if elim_idx.shape[0]:
            active[elim_idx] = False
            elim_bool = np.zeros(n, dtype=bool)
            elim_bool[elim_idx] = True
            out_idx = np.nonzero(elim_bool[src] & alive)[0]
            # neighbors losing an inbox witness re-evaluate next round
            pending[indices[out_idx]] = True
            alive[mirror[out_idx]] = False
            alive[out_idx] = False

        # ---------------------------------------------- edge elimination
        changed = bool(changed_vertices.any())
        nonzero = (mask != _ZERO).any(axis=1)
        if broadcasters is None:
            scope = nonzero
            cand = alive & scope[src]
            # pair handled from the smaller-id side when both are candidates
            cand &= csr.vid_gt | ~active[indices]
        else:
            scope = changed_vertices & nonzero
            cand = alive & scope[src]
        cand_idx = np.nonzero(cand)[0]
        if cand_idx.shape[0]:
            ms = mask[src[cand_idx]]
            md = mask[indices[cand_idx]]
            viable = np.zeros(cand_idx.shape[0], dtype=bool)
            if edge_labeled:
                codes = ecode[cand_idx]
            for b, word, bitval in bit_addr:
                has = (ms[:, word] & bitval) != _ZERO
                if not has.any():
                    continue
                if edge_labeled:
                    acceptable = any_nm[b] | lab_nm[b][codes]
                else:
                    acceptable = nm[b]
                viable |= has & ((acceptable & md) != _ZERO).any(axis=1)
            drop_idx = cand_idx[~viable]
            if drop_idx.shape[0]:
                changed = True
                dst_t = indices[drop_idx]
                pending[dst_t[active[dst_t]]] = True
                rev = mirror[drop_idx]
                src_t = src[drop_idx]
                pending[src_t[alive[rev]]] = True
                alive[drop_idx] = False
                alive[rev] = False

        accounting.record_round(seed_idx, sent_idx, round_started)
        if broadcasters is None:
            m_dense.inc()
        else:
            m_sparse.inc()
        m_worklist.inc(seed_idx.shape[0])
        m_evaluated.inc(idx.shape[0])
        h_worklist.observe(seed_idx.shape[0])
        if not changed:
            break
        if delta:
            broadcasters = changed_vertices & nonzero
            if adaptive:
                scope_count = int(np.count_nonzero(nonzero))
                if scope_count >= ADAPTIVE_MIN_VERTICES:
                    worklist_count = int(
                        np.count_nonzero(broadcasters | (pending & nonzero))
                    )
                    if worklist_count >= ADAPTIVE_DENSITY_THRESHOLD * scope_count:
                        broadcasters = None
                        m_adaptive.inc()
        else:
            broadcasters = None
    return iterations


class ArrayWalkOutcome:
    """Raw product of one :func:`array_token_walk` (dense vertex indices).

    ``satisfied_idx`` holds initiators whose token completed (recycled
    initiators are *not* included — callers union them); ``full_paths``
    (full-walk constraints only) is one row of dense indices per completed
    token, each an exact match mapping.
    """

    __slots__ = (
        "checked_idx",
        "recycled_idx",
        "satisfied_idx",
        "tokens_launched",
        "completions",
        "dedup_merged",
        "full_paths",
    )

    def __init__(self) -> None:
        self.checked_idx = np.zeros(0, dtype=np.int64)
        self.recycled_idx = np.zeros(0, dtype=np.int64)
        self.satisfied_idx = np.zeros(0, dtype=np.int64)
        self.tokens_launched = 0
        self.completions = 0
        self.dedup_merged = 0
        self.full_paths: Optional[np.ndarray] = None


def array_token_walk(
    astate: ArraySearchState,
    schedule,
    kernel: RoleKernel,
    engine,
    recycled_mask: Optional[np.ndarray] = None,
    dedup: bool = True,
    collect_paths: bool = False,
) -> ArrayWalkOutcome:
    """Run one NLCC constraint's token walk as a batched frontier (Alg. 5).

    A token generation is a struct-of-arrays frontier: ``paths`` holds one
    row per live token (columns = walk positions visited so far, as dense
    CSR indices) with an integer ``weight`` per row; each hop expands every
    row over its frontier vertex's alive out-edges via one ``np.repeat`` /
    cumulative-offset gather, then filters by the per-hop role bit, the
    required edge-label code and the walk's same/diff identity obligations
    (``schedule`` — see :class:`~repro.core.kernels.WalkSchedule`).

    Per-(vertex, hop, initiator) dedup: after each hop, the *free* path
    columns (never again read for equality, symmetric in all future
    ``diff`` checks) are sorted in place per row; rows that then agree on
    every column describe interchangeable token families and are merged by
    summing weights (one ``np.lexsort`` + boundary ``np.add.reduceat``).
    Completion counts stay exact because a completing row contributes its
    weight, and the satisfied initiator (column 0) is pinned.  Hub-vertex
    token storms — many tokens differing only in the order they visited
    interchangeable intermediate vertices — collapse into single weighted
    rows instead of exploding combinatorially.  Full-walk constraints
    skip dedup (``collect_paths``): every completed path is itself the
    match evidence.

    Message accounting mirrors the dict walk's single traversal: one
    message per alive out-edge of every frontier row (receiver-side drops,
    as ``ctx.broadcast`` charges), one visit per seeded candidate and per
    delivered message, flushed as *one* batched round (one barrier, two
    Safra circuits) at the end.  Dedup legitimately reduces message counts
    versus the dict walk — fewer live tokens broadcast — so simulated
    makespans may differ; results never do.
    """
    csr = astate.csr
    walk = schedule.walk
    walk_len = schedule.length
    indptr = csr.indptr
    indices = csr.indices
    role_mask = astate.role_mask
    wide = role_mask.ndim > 1
    alive = astate.edge_alive
    role_bit = kernel.role_bit
    # Per-hop (word, in-word bit) addressing; single-word layouts always
    # address word 0 and read the 1-D mask array directly.
    hop_words: List[int] = []
    hop_bits: List[np.uint64] = []
    for hop in range(walk_len):
        bit = role_bit[walk[hop]]
        word, offset = divmod(bit.bit_length() - 1, 64)
        hop_words.append(word)
        hop_bits.append(_U64(1 << offset))

    hop_codes: Optional[List[Optional[int]]] = None
    ecodes = None
    if schedule.hop_edge_labels is not None:
        hop_codes = [
            None if wanted is None else csr.edge_label_ids.get(wanted, -1)
            for wanted in schedule.hop_edge_labels
        ]
        ecodes = csr.edge_label_codes
        if ecodes is None:
            ecodes = np.zeros(csr.num_directed_edges, dtype=np.int64)

    out = ArrayWalkOutcome()
    tracing = engine.tracer.enabled
    round_started = time.perf_counter() if tracing else None
    accounting = _RoundAccounting(engine, csr)
    accounting.begin()
    # The dict walk seeds one visitor per candidate (source or not); each
    # dequeued seed is one visit.
    accounting.add_seed_visits(np.nonzero(astate.vertex_active)[0])

    mask_col0 = role_mask[:, hop_words[0]] if wide else role_mask
    holders = np.nonzero((mask_col0 & hop_bits[0]) != _ZERO)[0]
    out.checked_idx = holders
    if recycled_mask is not None and holders.shape[0]:
        rec = recycled_mask[holders]
        out.recycled_idx = holders[rec]
        start = holders[~rec]
    else:
        start = holders
    out.tokens_launched = int(start.shape[0])

    paths = start[:, None].astype(np.int64, copy=True)
    weights = np.ones(paths.shape[0], dtype=np.int64)
    satisfied_parts: List[np.ndarray] = []
    full_rows: List[np.ndarray] = []

    for hop in range(1, walk_len):
        if paths.shape[0] == 0:
            break
        cur = paths[:, -1]
        counts = csr.degrees[cur]
        total = int(counts.sum())
        if total == 0:
            paths = paths[:0]
            break
        row_id = np.repeat(np.arange(paths.shape[0], dtype=np.int64), counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        edge = indptr[cur][row_id] + offsets
        sent = alive[edge]
        edge = edge[sent]
        row_id = row_id[sent]
        accounting.add_edge_traffic(edge)

        dst = indices[edge]
        dst_col = role_mask[dst, hop_words[hop]] if wide else role_mask[dst]
        ok = (dst_col & hop_bits[hop]) != _ZERO
        if hop_codes is not None and hop_codes[hop] is not None:
            ok &= ecodes[edge] == hop_codes[hop]
        for position in schedule.same_positions[hop]:
            ok &= paths[row_id, position] == dst
        for position in schedule.diff_positions[hop]:
            ok &= paths[row_id, position] != dst
        row_id = row_id[ok]
        dst = dst[ok]
        if row_id.shape[0] == 0:
            paths = paths[:0]
            break
        new_paths = np.concatenate(
            [paths[row_id], dst[:, None]], axis=1
        )
        new_weights = weights[row_id]

        if hop == walk_len - 1:
            # Closed walk: the same-position check above forced a return
            # to column 0, the initiator.
            out.completions += int(new_weights.sum())
            satisfied_parts.append(new_paths[:, 0])
            if collect_paths:
                full_rows.append(new_paths)
            paths = paths[:0]
            break

        if dedup:
            free = schedule.free[hop]
            if len(free) >= 2:
                free_cols = new_paths[:, free]
                free_cols.sort(axis=1)
                new_paths[:, free] = free_cols
            if new_paths.shape[0] > 1:
                order = np.lexsort(new_paths.T)
                sorted_paths = new_paths[order]
                boundary = np.empty(sorted_paths.shape[0], dtype=bool)
                boundary[0] = True
                np.any(
                    sorted_paths[1:] != sorted_paths[:-1],
                    axis=1, out=boundary[1:],
                )
                starts = np.nonzero(boundary)[0]
                merged = starts.shape[0]
                if merged < sorted_paths.shape[0]:
                    out.dedup_merged += sorted_paths.shape[0] - merged
                    new_weights = np.add.reduceat(
                        new_weights[order], starts
                    )
                    new_paths = sorted_paths[starts]
        paths = new_paths
        weights = new_weights

    accounting.flush(
        round_started=round_started, worklist=out.tokens_launched
    )
    if satisfied_parts:
        out.satisfied_idx = np.unique(np.concatenate(satisfied_parts))
    if collect_paths:
        out.full_paths = (
            np.concatenate(full_rows, axis=0)
            if full_rows
            else np.zeros((0, walk_len), dtype=np.int64)
        )
    return out


def run_array_fixpoint(
    state: SearchState,
    kernel: RoleKernel,
    engine,
    max_iterations: Optional[int] = None,
    delta: bool = True,
    mandatory_masks: Optional[Dict[int, int]] = None,
) -> int:
    """Round-trip a dict state through the vectorized fixpoint.

    Imports ``state`` into an :class:`ArraySearchState` (kernel bit
    layout), runs :func:`array_kernel_fixpoint`, and writes the result
    back in place.  Returns the iteration count.
    """
    astate = ArraySearchState.from_search_state(state, roles=kernel.roles)
    iterations = array_kernel_fixpoint(
        astate, kernel, engine,
        max_iterations=max_iterations, delta=delta,
        mandatory_masks=mandatory_masks,
    )
    astate.write_back(state)
    return iterations


__all__ = [
    "ArraySearchState",
    "ArrayWalkOutcome",
    "GraphCsr",
    "MAX_ARRAY_ROLES",
    "array_kernel_fixpoint",
    "array_token_walk",
    "csr_of",
    "pack_bits",
    "run_array_fixpoint",
    "supports_array_fixpoint",
    "unpack_bits",
]
