"""Per-vertex search state (Alg. 3 of the paper).

For every active vertex the paper maintains: the set of template vertices
it may match (``ω``), the active-edge map (``ε``), the satisfied non-local
constraints (``κ``) and the prototype match vector (``ρ``).  Here that
state lives in a :class:`SearchState` (one per search scope — the max
candidate set, a level union, or a single prototype search), plus a global
:class:`NlccCache` for ``κ`` (shared across prototypes, the work-recycling
enabler) and the match vectors collected by the pipeline result.

The background graph itself is never mutated: deactivation just removes
entries from the state, which is how the real system uses bit vectors over
a static CSR.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

from ..graph.graph import Edge, Graph, canonical_edge


class SearchState:
    """Active vertices, their candidate roles, and active edges.

    ``candidates[v]`` is the set of template vertices (``W0`` ids) vertex
    ``v`` may still match (``ω(v)``); a vertex with no entry is eliminated.
    ``active_edges[v]`` is the set of neighbors reachable over still-active
    edges (``ε(v)``); kept symmetric.
    """

    __slots__ = ("graph", "candidates", "active_edges")

    def __init__(
        self,
        graph: Graph,
        candidates: Dict[int, Set[int]],
        active_edges: Dict[int, Set[int]],
    ) -> None:
        self.graph = graph
        self.candidates = candidates
        self.active_edges = active_edges

    # ------------------------------------------------------------------
    @classmethod
    def initial(cls, graph: Graph, template) -> "SearchState":
        """Full state: every vertex with a template label is a candidate.

        ``template`` is any object exposing ``vertices()``/``label()`` —
        a :class:`~repro.core.template.PatternTemplate` or a prototype.

        Active-edge maps start as the *full* adjacency of each candidate,
        including edges to non-candidate neighbors: until the first LCC
        round eliminates them, visitors travel (and are paid for) over
        those edges, exactly as in Alg. 4 where ``ε(v)`` is initialized to
        the raw adjacency list.  Eliminating these edges once, during max
        candidate set generation, is the traffic optimization §3.1 calls
        out — and what the naïve baseline re-pays for every prototype.
        """
        by_label: Dict[int, Set[int]] = {}
        for w in template.vertices():
            by_label.setdefault(template.label(w), set()).add(w)
        candidates = {}
        for v in graph.vertices():
            roles = by_label.get(graph.label(v))
            if roles:
                candidates[v] = set(roles)
        active_edges = {v: set(graph.neighbors(v)) for v in candidates}
        return cls(graph, candidates, active_edges)

    def copy(self) -> "SearchState":
        return SearchState(
            self.graph,
            {v: set(roles) for v, roles in self.candidates.items()},
            {v: set(nbrs) for v, nbrs in self.active_edges.items()},
        )

    # ------------------------------------------------------------------
    def is_active(self, vertex: int) -> bool:
        return vertex in self.candidates

    def active_vertices(self) -> Iterator[int]:
        return iter(self.candidates)

    @property
    def num_active_vertices(self) -> int:
        return len(self.candidates)

    @property
    def num_active_edges(self) -> int:
        """Edges whose *both* endpoints are still active candidates.

        O(E) per call — callers needing both sizes (or reusing the edge
        count) should call :meth:`active_counts` once instead.
        """
        return self.active_counts()[1]

    def active_counts(self) -> Tuple[int, int]:
        """``(num_active_vertices, num_active_edges)`` in one O(E) pass."""
        candidates = self.candidates
        edges = 0
        for v, nbrs in self.active_edges.items():
            for u in nbrs:
                if u > v and u in candidates:
                    edges += 1
        return len(candidates), edges

    def roles(self, vertex: int) -> Set[int]:
        return self.candidates.get(vertex, set())

    def active_neighbors(self, vertex: int) -> Set[int]:
        return self.active_edges.get(vertex, set())

    def edge_is_active(self, u: int, v: int) -> bool:
        return v in self.active_edges.get(u, ())

    def active_edge_list(self) -> List[Edge]:
        return [
            (u, v)
            for u, nbrs in self.active_edges.items()
            for v in nbrs
            if u < v and v in self.candidates
        ]

    # ------------------------------------------------------------------
    def deactivate_vertex(self, vertex: int) -> None:
        """Remove ``vertex`` and its incident active edges."""
        self.candidates.pop(vertex, None)
        for nbr in self.active_edges.pop(vertex, set()):
            other = self.active_edges.get(nbr)
            if other is not None:
                other.discard(vertex)

    def deactivate_edge(self, u: int, v: int) -> None:
        self.active_edges.get(u, set()).discard(v)
        self.active_edges.get(v, set()).discard(u)

    def remove_role(self, vertex: int, role: int) -> None:
        """Drop one candidate role; deactivates the vertex when none left."""
        roles = self.candidates.get(vertex)
        if roles is None:
            return
        roles.discard(role)
        if not roles:
            self.deactivate_vertex(vertex)

    # ------------------------------------------------------------------
    def to_graph(self) -> Graph:
        """Materialize the active subgraph (labels from the background).

        Vertex *and* edge labels carry over, so edge-labeled prototypes
        can be enumerated against the pruned view directly.
        """
        pruned = Graph()
        edge_label = (
            self.graph.edge_label if self.graph.has_edge_labels else None
        )
        for v in self.candidates:
            pruned.add_vertex(v, self.graph.label(v))
        for u, nbrs in self.active_edges.items():
            for v in nbrs:
                if u < v and v in self.candidates and u in self.candidates:
                    pruned.add_edge(
                        u, v,
                        None if edge_label is None else edge_label(u, v),
                    )
        return pruned

    def for_prototype_search(
        self, prototype, readmit_label_pairs: Iterable[Tuple[int, int]] = ()
    ) -> "SearchState":
        """The starting state for searching one prototype within this scope.

        Implements the containment rule (Obs. 1) faithfully:

        * *vertices*: the active vertices carry over, but candidate roles
          are reset by label — role identity is not transferable across
          isomorphism-deduped prototypes, only vertex participation is;
        * *edges*: active edges survive where their endpoint labels are
          adjacent in the prototype, and *background* edges between active
          vertices are re-admitted for each label pair in
          ``readmit_label_pairs`` — the ``E(l(q_i), l(q_j))`` term of
          Obs. 1 covering the one edge the prototype has beyond the
          children whose solution subgraphs this state unions.
        """
        proto_graph = prototype.graph
        roles_by_label: Dict[int, Set[int]] = {}
        for w in proto_graph.vertices():
            roles_by_label.setdefault(proto_graph.label(w), set()).add(w)
        adjacent_pairs = {
            _label_pair(proto_graph.label(u), proto_graph.label(v))
            for u, v in proto_graph.edges()
        }
        readmit = {_label_pair(*pair) for pair in readmit_label_pairs}

        candidates: Dict[int, Set[int]] = {}
        for v in self.candidates:
            roles = roles_by_label.get(self.graph.label(v))
            if roles:
                candidates[v] = set(roles)
        active_edges: Dict[int, Set[int]] = {v: set() for v in candidates}
        for v in candidates:
            label_v = self.graph.label(v)
            for u in self.active_edges.get(v, ()):
                if u <= v or u not in candidates:
                    continue
                if _label_pair(label_v, self.graph.label(u)) in adjacent_pairs:
                    active_edges[v].add(u)
                    active_edges[u].add(v)
            if readmit:
                for u in self.graph.neighbors(v):
                    if u <= v or u not in candidates:
                        continue
                    pair = _label_pair(label_v, self.graph.label(u))
                    if pair in readmit and pair in adjacent_pairs:
                        active_edges[v].add(u)
                        active_edges[u].add(v)
        return SearchState(self.graph, candidates, active_edges)

    def union_with(self, other: "SearchState") -> None:
        """In-place union (Alg. 1 line #12: accumulate level subgraphs)."""
        for v, roles in other.candidates.items():
            if v in self.candidates:
                self.candidates[v] |= roles
            else:
                self.candidates[v] = set(roles)
                self.active_edges.setdefault(v, set())
        for v, nbrs in other.active_edges.items():
            self.active_edges.setdefault(v, set()).update(nbrs)

    @classmethod
    def empty(cls, graph: Graph) -> "SearchState":
        return cls(graph, {}, {})

    def __repr__(self) -> str:
        return (
            f"SearchState(active_vertices={self.num_active_vertices}, "
            f"active_edges={self.num_active_edges})"
        )


def _label_pair(label_a: int, label_b: int) -> Tuple[int, int]:
    """Canonical unordered label pair."""
    return (label_a, label_b) if label_a <= label_b else (label_b, label_a)


class NlccCache:
    """Work-recycling cache of satisfied non-local constraints (``κ``).

    Maps a constraint identity key to the set of vertices known to have
    satisfied it as token initiators in an earlier (larger-graph) search.
    Skipping a re-check can only *retain* a vertex longer, never eliminate
    one, so recall is unaffected; precision is restored by each prototype's
    final exact verification.
    """

    def __init__(self) -> None:
        self._satisfied: Dict[Hashable, Set[int]] = {}
        self.hits = 0
        self.misses = 0
        #: memoized dense boolean views per key (see :meth:`satisfied_mask`),
        #: dropped whenever the key's entry set grows
        self._mask_cache: Dict[Hashable, Tuple[int, object]] = {}

    def is_satisfied(self, key: Hashable, vertex: int) -> bool:
        hit = vertex in self._satisfied.get(key, ())
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return hit

    def record_bulk(self, hits: int, misses: int) -> None:
        """Fold a vectorized lookup's counts into the hit/miss counters.

        The array token walk tests a whole initiator frontier against the
        cache in one gather; this keeps its counter totals identical to
        the dict path's one :meth:`is_satisfied` call per checked vertex.
        """
        self.hits += hits
        self.misses += misses

    def satisfied_mask(self, key: Hashable, csr) -> "object":
        """Dense boolean array over ``csr``'s vertex order for one key.

        ``mask[i]`` is True iff ``csr.order[i]`` is cached as satisfied.
        Memoized per key against the CSR identity; invalidated by
        :meth:`mark_satisfied`.  Does **not** touch the hit/miss counters
        (callers account via :meth:`record_bulk`).
        """
        import numpy as np

        cached = self._mask_cache.get(key)
        if cached is not None and cached[0] is csr:
            return cached[1]
        mask = np.zeros(csr.num_vertices, dtype=bool)
        index_of = csr.index_of
        for vertex in self._satisfied.get(key, ()):
            i = index_of.get(vertex)
            if i is not None:
                mask[i] = True
        mask.flags.writeable = False
        self._mask_cache[key] = (csr, mask)
        return mask

    def mark_satisfied(self, key: Hashable, vertices: Iterable[int]) -> None:
        self._satisfied.setdefault(key, set()).update(vertices)
        self._mask_cache.pop(key, None)

    def known_constraints(self) -> Set[Hashable]:
        return set(self._satisfied)

    def size(self) -> Tuple[int, int]:
        """(number of constraints, total cached vertex entries)."""
        return len(self._satisfied), sum(len(s) for s in self._satisfied.values())


__all__ = ["NlccCache", "SearchState", "canonical_edge"]
