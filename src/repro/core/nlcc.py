"""Non-local constraint checking — NLCC (Alg. 5).

Token-passing verification of one closed walk constraint:

* every active vertex holding the constraint's source role initiates a
  token (unless the work-recycling cache already knows it satisfies this
  constraint — Obs. 2);
* a token carries the ordered list of graph vertices that forwarded it; a
  receiving vertex validates the hop (role membership + identity checks
  against the template walk) and either drops the token or broadcasts it
  onward over its active edges;
* a token whose hop count reaches the walk length has returned to its
  initiator (closed walks force this through the identity checks); the
  initiator is marked satisfied;
* afterwards, every checked vertex that was not marked loses the source
  role — and possibly gets eliminated.

For *full-walk* constraints (the aggregate TDS check covering every
template edge), each completed token is an exact match by construction; the
verified (vertex, role) pairs and traversed edges are recorded so the state
can be reduced to exactly the solution subgraph, and the number of
completed tokens equals the number of match mappings (used for counting).

Two executions of the same walk are available:

* the dict token walk below — one Python tuple per token, driven through
  the engine's visitor callbacks;
* the batched array frontier (:func:`~repro.core.arraystate.array_token_walk`)
  — whole token generations as struct-of-arrays advanced one hop per
  round over the CSR, with per-(vertex, hop, initiator) dedup.  Selected
  via ``array_nlcc=True`` (per-constraint round trip through the array
  state) or by passing a live ``astate`` (the level-persistent mode, no
  conversions).  Results are identical; only message counts may shrink
  under dedup.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..graph.graph import canonical_edge
from ..runtime.engine import Engine
from ..runtime.visitor import Visitor
from .constraints import FULL_WALK_KIND, NonLocalConstraint
from .kernels import RoleKernel, candidate_masks, compile_walk_schedule
from .state import NlccCache, SearchState


class NlccResult:
    """Outcome of checking one non-local constraint."""

    __slots__ = (
        "constraint",
        "checked",
        "satisfied",
        "recycled",
        "eliminated_roles",
        "completions",
        "confirmed_roles",
        "confirmed_edges",
        "_completed_mappings",
        "completed_walk",
        "completed_paths",
        "dedup_merged",
    )

    def __init__(self, constraint: NonLocalConstraint) -> None:
        self.constraint = constraint
        self.checked: Set[int] = set()
        self.satisfied: Set[int] = set()
        self.recycled: Set[int] = set()
        self.eliminated_roles = 0
        #: number of tokens that completed the walk (for full walks this is
        #: exactly the number of match mappings rooted anywhere)
        self.completions = 0
        self.confirmed_roles: Dict[int, Set[int]] = {}
        self.confirmed_edges: Set[Tuple[int, int]] = set()
        #: backing list for :attr:`completed_mappings`; the dict walk
        #: appends eagerly, the array walk leaves it None and keeps the
        #: dense evidence in ``completed_walk``/``completed_paths``
        self._completed_mappings: Optional[list] = []
        #: walk role sequence of the dense match evidence (array walk)
        self.completed_walk: Optional[Tuple[int, ...]] = None
        #: completions-by-walk-length matrix of graph vertex ids, one row
        #: per completed full-walk token (array walk)
        self.completed_paths = None
        #: token rows collapsed by the array frontier's canonical fold
        #: (always 0 on the dict path, which never dedups)
        self.dedup_merged = 0

    @property
    def completed_mappings(self) -> list:
        """For full walks: one role -> graph-vertex mapping per completed
        token (each completion IS an exact match).

        The array walk stores its completions as a dense path matrix;
        per-match dicts are materialized from it only on first access,
        so pipelines that merely count matches never build them.
        """
        if self._completed_mappings is None:
            from .enumeration import matches_from_paths

            self._completed_mappings = matches_from_paths(
                self.completed_walk, self.completed_paths.tolist()
            )
        return self._completed_mappings

    @property
    def changed(self) -> bool:
        return self.eliminated_roles > 0

    @property
    def tokens_launched(self) -> int:
        """Initiators that actually launched a token (checked − recycled)."""
        return len(self.checked) - len(self.recycled)

    def __repr__(self) -> str:
        return (
            f"NlccResult({self.constraint.kind}, checked={len(self.checked)}, "
            f"satisfied={len(self.satisfied)}, eliminated={self.eliminated_roles})"
        )


def non_local_constraint_checking(
    state: SearchState,
    constraint: NonLocalConstraint,
    engine: Engine,
    cache: Optional[NlccCache] = None,
    recycle: bool = True,
    kernel: Optional[RoleKernel] = None,
    astate=None,
    array_nlcc: bool = False,
) -> NlccResult:
    """Verify ``constraint`` over ``state`` in place; returns the outcome.

    Full-walk constraints additionally *reduce* the state to exactly the
    confirmed vertices/roles/edges (they subsume all weaker checks).
    Recycling never applies to full walks: their completions double as the
    exact match evidence and must be recomputed per prototype.

    With a compiled ``kernel`` (see :mod:`~repro.core.kernels`), the
    per-hop role membership test becomes a single bitmask check against a
    role-mask snapshot taken before the traversal (the state is only
    mutated afterwards, so the snapshot stays valid throughout).

    ``array_nlcc=True`` (requires a kernel within the mask width) runs the
    batched array frontier instead, round-tripping ``state`` through an
    :class:`~repro.core.arraystate.ArraySearchState` per constraint.
    Passing a live ``astate`` skips the round trip entirely: the array
    state is treated as authoritative, mutated in place, and ``state`` is
    left untouched (the caller owns the final ``write_back``).
    """
    if kernel is not None and (astate is not None or array_nlcc):
        return _check_array(
            state, constraint, engine, cache, recycle, kernel, astate
        )
    return _check_dict(state, constraint, engine, cache, recycle, kernel)


# ----------------------------------------------------------------------
# Dict token walk
# ----------------------------------------------------------------------
def _check_dict(
    state: SearchState,
    constraint: NonLocalConstraint,
    engine: Engine,
    cache: Optional[NlccCache],
    recycle: bool,
    kernel: Optional[RoleKernel],
) -> NlccResult:
    walk = constraint.walk
    walk_len = len(walk)
    source_role = constraint.source
    is_full_walk = constraint.kind == FULL_WALK_KIND
    use_cache = recycle and cache is not None and not is_full_walk
    result = NlccResult(constraint)
    candidates = state.candidates
    active_edges = state.active_edges
    schedule = compile_walk_schedule(constraint)
    same_positions = schedule.same_positions
    diff_positions = schedule.diff_positions
    # Per-hop required edge labels (None = any); populated only for
    # edge-labeled prototypes so the plain hot path stays unchanged.
    hop_edge_labels = schedule.hop_edge_labels
    if hop_edge_labels is not None:
        graph_edge_label = state.graph.edge_label

    # Bitmask fast path: snapshot role masks once; the per-hop role test
    # is then one AND against the walk position's precompiled bit.
    vmasks = None
    if kernel is not None:
        vmasks = candidate_masks(state, kernel)
        role_bit = kernel.role_bit
        source_bit = role_bit[source_role]
        hop_bits = [role_bit[walk[hop]] for hop in range(walk_len)]

    if kernel is None:
        def visit(ctx, visitor: Visitor) -> None:
            if visitor.payload is None:
                _initiate(ctx, visitor.target)
            else:
                _advance(ctx, visitor.target, visitor.payload)
    else:
        def visit(ctx, visitor: Visitor) -> None:
            if visitor.payload is None:
                _initiate_kernel(ctx, visitor.target)
            else:
                _advance_kernel(ctx, visitor.target, visitor.payload)

    def _initiate(ctx, vertex: int) -> None:
        roles = candidates.get(vertex)
        if not roles or source_role not in roles:
            return
        result.checked.add(vertex)
        if use_cache and cache.is_satisfied(constraint.key, vertex):
            result.satisfied.add(vertex)
            result.recycled.add(vertex)
            return
        ctx.broadcast(vertex, active_edges.get(vertex, ()), (vertex,))

    def _advance(ctx, vertex: int, token: Tuple[int, ...]) -> None:
        hop = len(token)  # position of `vertex` in the walk
        roles = candidates.get(vertex)
        if not roles or walk[hop] not in roles:
            return  # drop token
        if hop_edge_labels is not None:
            wanted = hop_edge_labels[hop]
            if wanted is not None and graph_edge_label(token[-1], vertex) != wanted:
                return
        for position in same_positions[hop]:
            if token[position] != vertex:
                return
        for position in diff_positions[hop]:
            if token[position] == vertex:
                return
        extended = token + (vertex,)
        if hop == walk_len - 1:
            # Closed walk: the identity check above already forced
            # vertex == token[0], the initiator.
            result.completions += 1
            result.satisfied.add(extended[0])
            if is_full_walk:
                _record_match(extended)
            return
        ctx.broadcast(vertex, active_edges.get(vertex, ()), extended)

    def _initiate_kernel(ctx, vertex: int) -> None:
        if not vmasks.get(vertex, 0) & source_bit:
            return
        result.checked.add(vertex)
        if use_cache and cache.is_satisfied(constraint.key, vertex):
            result.satisfied.add(vertex)
            result.recycled.add(vertex)
            return
        ctx.broadcast(vertex, active_edges.get(vertex, ()), (vertex,))

    def _advance_kernel(ctx, vertex: int, token: Tuple[int, ...]) -> None:
        hop = len(token)  # position of `vertex` in the walk
        if not vmasks.get(vertex, 0) & hop_bits[hop]:
            return  # drop token
        if hop_edge_labels is not None:
            wanted = hop_edge_labels[hop]
            if wanted is not None and graph_edge_label(token[-1], vertex) != wanted:
                return
        for position in same_positions[hop]:
            if token[position] != vertex:
                return
        for position in diff_positions[hop]:
            if token[position] == vertex:
                return
        extended = token + (vertex,)
        if hop == walk_len - 1:
            result.completions += 1
            result.satisfied.add(extended[0])
            if is_full_walk:
                _record_match(extended)
            return
        ctx.broadcast(vertex, active_edges.get(vertex, ()), extended)

    def _record_match(token: Tuple[int, ...]) -> None:
        mapping = {}
        for position, vertex in enumerate(token):
            result.confirmed_roles.setdefault(vertex, set()).add(walk[position])
            mapping[walk[position]] = vertex
        for position in range(len(token) - 1):
            result.confirmed_edges.add(
                canonical_edge(token[position], token[position + 1])
            )
        result.completed_mappings.append(mapping)

    tracer = engine.tracer
    stats = engine.stats
    if tracer.enabled:
        before_messages = stats.total_messages
        before_remote = stats.total_remote_messages
    with stats.phase("nlcc"), tracer.span(
        "nlcc",
        kind=constraint.kind,
        source=source_role,
        walk_length=walk_len,
    ) as span:
        seeds = (Visitor(v) for v in list(state.candidates))
        engine.do_traversal(seeds, visit)

        # Post-processing pushes no messages but belongs to the constraint's
        # attribution window, so it stays inside the span and stats phase.
        if is_full_walk:
            _reduce_to_confirmed(state, result)
        else:
            for vertex in result.checked - result.satisfied:
                state.remove_role(vertex, source_role)
                result.eliminated_roles += 1
            if cache is not None:
                cache.mark_satisfied(
                    constraint.key, result.satisfied - result.recycled
                )
    if use_cache:
        metrics = engine.metrics
        metrics.counter("cache.nlcc.hits").inc(len(result.recycled))
        metrics.counter("cache.nlcc.misses").inc(
            len(result.checked) - len(result.recycled)
        )
    if tracer.enabled:
        span.add(
            checked=len(result.checked),
            satisfied=len(result.satisfied),
            cache_hits=len(result.recycled),
            tokens_launched=result.tokens_launched,
            completions=result.completions,
            eliminated_roles=result.eliminated_roles,
            messages=stats.total_messages - before_messages,
            remote_messages=stats.total_remote_messages - before_remote,
        )
    return result


def _reduce_to_confirmed(state: SearchState, result: NlccResult) -> None:
    """Replace the state with exactly the match-confirmed subgraph."""
    before = state.num_active_vertices
    for vertex in list(state.candidates):
        confirmed = result.confirmed_roles.get(vertex)
        if not confirmed:
            state.deactivate_vertex(vertex)
        else:
            state.candidates[vertex] = set(confirmed)
    for vertex in list(state.candidates):
        for nbr in list(state.active_edges.get(vertex, ())):
            if nbr < vertex:
                continue
            if canonical_edge(vertex, nbr) not in result.confirmed_edges:
                state.deactivate_edge(vertex, nbr)
    result.eliminated_roles += before - state.num_active_vertices


# ----------------------------------------------------------------------
# Array token frontier
# ----------------------------------------------------------------------
def _check_array(
    state: SearchState,
    constraint: NonLocalConstraint,
    engine: Engine,
    cache: Optional[NlccCache],
    recycle: bool,
    kernel: RoleKernel,
    astate,
) -> NlccResult:
    """Run the constraint on the batched array frontier.

    With ``astate=None`` the dict ``state`` is imported, checked, and
    written back (the per-constraint round-trip mode); otherwise
    ``astate`` is mutated in place and ``state`` is left stale for the
    caller's final ``write_back`` (the level-persistent mode).
    """
    import numpy as np

    from .arraystate import ArraySearchState, array_token_walk

    sync_dict = astate is None
    if sync_dict:
        astate = ArraySearchState.from_search_state(state, roles=kernel.roles)
    is_full_walk = constraint.kind == FULL_WALK_KIND
    use_cache = recycle and cache is not None and not is_full_walk
    schedule = compile_walk_schedule(constraint)
    result = NlccResult(constraint)
    csr = astate.csr
    order = csr.order

    tracer = engine.tracer
    stats = engine.stats
    if tracer.enabled:
        before_messages = stats.total_messages
        before_remote = stats.total_remote_messages
    with stats.phase("nlcc"), tracer.span(
        "nlcc",
        kind=constraint.kind,
        source=constraint.source,
        walk_length=schedule.length,
    ) as span:
        recycled_mask = None
        if use_cache:
            recycled_mask = cache.satisfied_mask(constraint.key, csr)
        walk_out = array_token_walk(
            astate, schedule, kernel, engine,
            recycled_mask=recycled_mask,
            dedup=not is_full_walk,
            collect_paths=is_full_walk,
        )
        if use_cache:
            hits = int(walk_out.recycled_idx.shape[0])
            cache.record_bulk(
                hits=hits,
                misses=int(walk_out.checked_idx.shape[0]) - hits,
            )
        result.checked = set(order[walk_out.checked_idx].tolist())
        result.recycled = set(order[walk_out.recycled_idx].tolist())
        result.satisfied = (
            set(order[walk_out.satisfied_idx].tolist()) | result.recycled
        )
        result.completions = walk_out.completions
        result.dedup_merged = walk_out.dedup_merged

        if is_full_walk:
            _reduce_to_confirmed_array(
                astate, schedule, kernel, walk_out, result
            )
        else:
            satisfied = np.zeros(csr.num_vertices, dtype=bool)
            satisfied[walk_out.satisfied_idx] = True
            satisfied[walk_out.recycled_idx] = True
            elim_idx = walk_out.checked_idx[
                ~satisfied[walk_out.checked_idx]
            ]
            if elim_idx.shape[0]:
                src_bit = kernel.role_bit[constraint.source]
                if astate.role_mask.ndim == 1:
                    bit = np.uint64(src_bit)
                    astate.role_mask[elim_idx] &= ~bit
                    dead = elim_idx[
                        astate.role_mask[elim_idx] == np.uint64(0)
                    ]
                else:
                    word, offset = divmod(src_bit.bit_length() - 1, 64)
                    astate.role_mask[elim_idx, word] &= ~np.uint64(
                        1 << offset
                    )
                    dead = elim_idx[
                        ~(
                            astate.role_mask[elim_idx] != np.uint64(0)
                        ).any(axis=1)
                    ]
                if dead.shape[0]:
                    astate.deactivate_indices(dead)
                result.eliminated_roles = int(elim_idx.shape[0])
            if cache is not None:
                cache.mark_satisfied(
                    constraint.key, result.satisfied - result.recycled
                )
    if use_cache:
        metrics = engine.metrics
        metrics.counter("cache.nlcc.hits").inc(len(result.recycled))
        metrics.counter("cache.nlcc.misses").inc(
            len(result.checked) - len(result.recycled)
        )
    if tracer.enabled:
        span.add(
            checked=len(result.checked),
            satisfied=len(result.satisfied),
            cache_hits=len(result.recycled),
            tokens_launched=result.tokens_launched,
            completions=result.completions,
            eliminated_roles=result.eliminated_roles,
            dedup_merged=result.dedup_merged,
            messages=stats.total_messages - before_messages,
            remote_messages=stats.total_remote_messages - before_remote,
        )
    if sync_dict:
        astate.write_back(state)
    return result


def _reduce_to_confirmed_array(
    astate, schedule, kernel: RoleKernel, walk_out, result: NlccResult
) -> None:
    """Array form of :func:`_reduce_to_confirmed` (full-walk reduction)."""
    import numpy as np

    csr = astate.csr
    n = csr.num_vertices
    order = csr.order
    walk = schedule.walk
    walk_len = schedule.length
    paths = walk_out.full_paths
    before = astate.num_active_vertices

    n_words = astate.n_words
    wide = n_words > 1
    if wide:
        confirmed_mask = np.zeros((n, n_words), dtype=np.uint64)
        for position in range(walk_len):
            word, offset = divmod(
                kernel.role_bit[walk[position]].bit_length() - 1, 64
            )
            np.bitwise_or.at(
                confirmed_mask[:, word],
                paths[:, position],
                np.uint64(1 << offset),
            )
    else:
        confirmed_mask = np.zeros(n, dtype=np.uint64)
        for position in range(walk_len):
            np.bitwise_or.at(
                confirmed_mask,
                paths[:, position],
                np.uint64(kernel.role_bit[walk[position]]),
            )

    # Match evidence, identical to the dict walk's _record_match output.
    # Per-match dicts are NOT built here: the dense vid matrix is the
    # stored form, materialized lazily by NlccResult.completed_mappings
    # (enumeration.matches_from_paths) only if a consumer asks.
    if paths.shape[0]:
        vid_rows = order[paths]
        result.completed_walk = tuple(walk)
        result.completed_paths = vid_rows
        result._completed_mappings = None
        head = paths[:, :-1].ravel()
        tail = paths[:, 1:].ravel()
        head_vid = order[head]
        tail_vid = order[tail]
        lo = np.minimum(head_vid, tail_vid)
        hi = np.maximum(head_vid, tail_vid)
        pairs = np.unique(np.stack([lo, hi], axis=1), axis=0)
        result.confirmed_edges = {
            (int(u), int(v)) for u, v in pairs.tolist()
        }
        confirmed_codes = np.unique(
            np.concatenate([head * n + tail, tail * n + head])
        )
    else:
        confirmed_codes = np.zeros(0, dtype=np.int64)
    roles_of = kernel.roles_of
    if wide:
        nz = np.nonzero(
            (confirmed_mask != np.uint64(0)).any(axis=1)
        )[0]
        for i, row in zip(nz.tolist(), confirmed_mask[nz].tolist()):
            combined = sum(
                word << (64 * w) for w, word in enumerate(row)
            )
            result.confirmed_roles[int(order[i])] = roles_of(combined)
    else:
        for i in np.nonzero(confirmed_mask != np.uint64(0))[0].tolist():
            result.confirmed_roles[int(order[i])] = roles_of(
                int(confirmed_mask[i])
            )

    # Reduction, mirroring the dict loop exactly: unconfirmed candidates
    # deactivate (killing their edges both ways); survivors' roles are
    # replaced by their confirmed set; an unconfirmed alive edge dies only
    # when examined from its smaller-id endpoint's side with that endpoint
    # still a candidate — the same asymmetric-aliveness quirk the dict
    # state preserves.
    if wide:
        confirmed_any = (confirmed_mask != np.uint64(0)).any(axis=1)
    else:
        confirmed_any = confirmed_mask != np.uint64(0)
    drop_idx = np.nonzero(astate.vertex_active & ~confirmed_any)[0]
    if drop_idx.shape[0]:
        astate.deactivate_indices(drop_idx)
    keep = astate.vertex_active[:, None] if wide else astate.vertex_active
    astate.role_mask = np.where(keep, confirmed_mask, np.uint64(0))
    alive = astate.edge_alive
    examined = alive & csr.vid_gt & astate.vertex_active[csr.src]
    edge_codes = csr.src * np.int64(n) + csr.indices
    kill_idx = np.nonzero(
        examined & ~np.isin(edge_codes, confirmed_codes)
    )[0]
    if kill_idx.shape[0]:
        alive[kill_idx] = False
        alive[csr.mirror[kill_idx]] = False
    result.eliminated_roles += before - astate.num_active_vertices
