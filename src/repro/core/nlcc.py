"""Non-local constraint checking — NLCC (Alg. 5).

Token-passing verification of one closed walk constraint:

* every active vertex holding the constraint's source role initiates a
  token (unless the work-recycling cache already knows it satisfies this
  constraint — Obs. 2);
* a token carries the ordered list of graph vertices that forwarded it; a
  receiving vertex validates the hop (role membership + identity checks
  against the template walk) and either drops the token or broadcasts it
  onward over its active edges;
* a token whose hop count reaches the walk length has returned to its
  initiator (closed walks force this through the identity checks); the
  initiator is marked satisfied;
* afterwards, every checked vertex that was not marked loses the source
  role — and possibly gets eliminated.

For *full-walk* constraints (the aggregate TDS check covering every
template edge), each completed token is an exact match by construction; the
verified (vertex, role) pairs and traversed edges are recorded so the state
can be reduced to exactly the solution subgraph, and the number of
completed tokens equals the number of match mappings (used for counting).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..graph.graph import canonical_edge
from ..runtime.engine import Engine
from ..runtime.visitor import Visitor
from .constraints import FULL_WALK_KIND, NonLocalConstraint
from .kernels import RoleKernel, candidate_masks
from .state import NlccCache, SearchState


class NlccResult:
    """Outcome of checking one non-local constraint."""

    __slots__ = (
        "constraint",
        "checked",
        "satisfied",
        "recycled",
        "eliminated_roles",
        "completions",
        "confirmed_roles",
        "confirmed_edges",
        "completed_mappings",
    )

    def __init__(self, constraint: NonLocalConstraint) -> None:
        self.constraint = constraint
        self.checked: Set[int] = set()
        self.satisfied: Set[int] = set()
        self.recycled: Set[int] = set()
        self.eliminated_roles = 0
        #: number of tokens that completed the walk (for full walks this is
        #: exactly the number of match mappings rooted anywhere)
        self.completions = 0
        self.confirmed_roles: Dict[int, Set[int]] = {}
        self.confirmed_edges: Set[Tuple[int, int]] = set()
        #: for full walks: one template-vertex -> graph-vertex mapping per
        #: completed token (each completion IS an exact match)
        self.completed_mappings: list = []

    @property
    def changed(self) -> bool:
        return self.eliminated_roles > 0

    def __repr__(self) -> str:
        return (
            f"NlccResult({self.constraint.kind}, checked={len(self.checked)}, "
            f"satisfied={len(self.satisfied)}, eliminated={self.eliminated_roles})"
        )


def non_local_constraint_checking(
    state: SearchState,
    constraint: NonLocalConstraint,
    engine: Engine,
    cache: Optional[NlccCache] = None,
    recycle: bool = True,
    kernel: Optional[RoleKernel] = None,
) -> NlccResult:
    """Verify ``constraint`` over ``state`` in place; returns the outcome.

    Full-walk constraints additionally *reduce* the state to exactly the
    confirmed vertices/roles/edges (they subsume all weaker checks).
    Recycling never applies to full walks: their completions double as the
    exact match evidence and must be recomputed per prototype.

    With a compiled ``kernel`` (see :mod:`~repro.core.kernels`), the
    per-hop role membership test becomes a single bitmask check against a
    role-mask snapshot taken before the traversal (the state is only
    mutated afterwards, so the snapshot stays valid throughout).
    """
    walk = constraint.walk
    walk_len = len(walk)
    source_role = constraint.source
    is_full_walk = constraint.kind == FULL_WALK_KIND
    use_cache = recycle and cache is not None and not is_full_walk
    result = NlccResult(constraint)
    candidates = state.candidates
    active_edges = state.active_edges
    proto_graph = getattr(constraint, "proto_graph", None)
    # Per-hop required edge labels (None = any); populated only for
    # edge-labeled prototypes so the plain hot path stays unchanged.
    hop_edge_labels = None
    if proto_graph is not None and proto_graph.has_edge_labels:
        hop_edge_labels = [None] + [
            proto_graph.edge_label(walk[h - 1], walk[h])
            for h in range(1, walk_len)
        ]
        graph_edge_label = state.graph.edge_label
    # Per-hop identity obligations, precomputed from the walk: positions a
    # new vertex must equal (same template vertex) or differ from.
    same_positions = []
    diff_positions = []
    for hop in range(walk_len):
        same = [p for p in range(hop) if walk[p] == walk[hop]]
        diff = [p for p in range(hop) if walk[p] != walk[hop]]
        same_positions.append(same)
        diff_positions.append(diff)

    # Bitmask fast path: snapshot role masks once; the per-hop role test
    # is then one AND against the walk position's precompiled bit.
    vmasks = None
    if kernel is not None:
        vmasks = candidate_masks(state, kernel)
        role_bit = kernel.role_bit
        source_bit = role_bit[source_role]
        hop_bits = [role_bit[walk[hop]] for hop in range(walk_len)]

    if kernel is None:
        def visit(ctx, visitor: Visitor) -> None:
            if visitor.payload is None:
                _initiate(ctx, visitor.target)
            else:
                _advance(ctx, visitor.target, visitor.payload)
    else:
        def visit(ctx, visitor: Visitor) -> None:
            if visitor.payload is None:
                _initiate_kernel(ctx, visitor.target)
            else:
                _advance_kernel(ctx, visitor.target, visitor.payload)

    def _initiate(ctx, vertex: int) -> None:
        roles = candidates.get(vertex)
        if not roles or source_role not in roles:
            return
        result.checked.add(vertex)
        if use_cache and cache.is_satisfied(constraint.key, vertex):
            result.satisfied.add(vertex)
            result.recycled.add(vertex)
            return
        ctx.broadcast(vertex, active_edges.get(vertex, ()), (vertex,))

    def _advance(ctx, vertex: int, token: Tuple[int, ...]) -> None:
        hop = len(token)  # position of `vertex` in the walk
        roles = candidates.get(vertex)
        if not roles or walk[hop] not in roles:
            return  # drop token
        if hop_edge_labels is not None:
            wanted = hop_edge_labels[hop]
            if wanted is not None and graph_edge_label(token[-1], vertex) != wanted:
                return
        for position in same_positions[hop]:
            if token[position] != vertex:
                return
        for position in diff_positions[hop]:
            if token[position] == vertex:
                return
        extended = token + (vertex,)
        if hop == walk_len - 1:
            # Closed walk: the identity check above already forced
            # vertex == token[0], the initiator.
            result.completions += 1
            result.satisfied.add(extended[0])
            if is_full_walk:
                _record_match(extended)
            return
        ctx.broadcast(vertex, active_edges.get(vertex, ()), extended)

    def _initiate_kernel(ctx, vertex: int) -> None:
        if not vmasks.get(vertex, 0) & source_bit:
            return
        result.checked.add(vertex)
        if use_cache and cache.is_satisfied(constraint.key, vertex):
            result.satisfied.add(vertex)
            result.recycled.add(vertex)
            return
        ctx.broadcast(vertex, active_edges.get(vertex, ()), (vertex,))

    def _advance_kernel(ctx, vertex: int, token: Tuple[int, ...]) -> None:
        hop = len(token)  # position of `vertex` in the walk
        if not vmasks.get(vertex, 0) & hop_bits[hop]:
            return  # drop token
        if hop_edge_labels is not None:
            wanted = hop_edge_labels[hop]
            if wanted is not None and graph_edge_label(token[-1], vertex) != wanted:
                return
        for position in same_positions[hop]:
            if token[position] != vertex:
                return
        for position in diff_positions[hop]:
            if token[position] == vertex:
                return
        extended = token + (vertex,)
        if hop == walk_len - 1:
            result.completions += 1
            result.satisfied.add(extended[0])
            if is_full_walk:
                _record_match(extended)
            return
        ctx.broadcast(vertex, active_edges.get(vertex, ()), extended)

    def _record_match(token: Tuple[int, ...]) -> None:
        mapping = {}
        for position, vertex in enumerate(token):
            result.confirmed_roles.setdefault(vertex, set()).add(walk[position])
            mapping[walk[position]] = vertex
        for position in range(len(token) - 1):
            result.confirmed_edges.add(
                canonical_edge(token[position], token[position + 1])
            )
        result.completed_mappings.append(mapping)

    tracer = engine.tracer
    stats = engine.stats
    if tracer.enabled:
        before_messages = stats.total_messages
        before_remote = stats.total_remote_messages
    with stats.phase("nlcc"), tracer.span(
        "nlcc",
        kind=constraint.kind,
        source=source_role,
        walk_length=walk_len,
    ) as span:
        seeds = (Visitor(v) for v in list(state.candidates))
        engine.do_traversal(seeds, visit)

        # Post-processing pushes no messages but belongs to the constraint's
        # attribution window, so it stays inside the span and stats phase.
        if is_full_walk:
            _reduce_to_confirmed(state, result)
        else:
            for vertex in result.checked - result.satisfied:
                state.remove_role(vertex, source_role)
                result.eliminated_roles += 1
            if cache is not None:
                cache.mark_satisfied(
                    constraint.key, result.satisfied - result.recycled
                )
    if tracer.enabled:
        span.add(
            checked=len(result.checked),
            satisfied=len(result.satisfied),
            cache_hits=len(result.recycled),
            tokens_launched=len(result.checked) - len(result.recycled),
            completions=result.completions,
            eliminated_roles=result.eliminated_roles,
            messages=stats.total_messages - before_messages,
            remote_messages=stats.total_remote_messages - before_remote,
        )
    return result


def _reduce_to_confirmed(state: SearchState, result: NlccResult) -> None:
    """Replace the state with exactly the match-confirmed subgraph."""
    before = state.num_active_vertices
    for vertex in list(state.candidates):
        confirmed = result.confirmed_roles.get(vertex)
        if not confirmed:
            state.deactivate_vertex(vertex)
        else:
            state.candidates[vertex] = set(confirmed)
    for vertex in list(state.candidates):
        for nbr in list(state.active_edges.get(vertex, ())):
            if nbr < vertex:
                continue
            if canonical_edge(vertex, nbr) not in result.confirmed_edges:
                state.deactivate_edge(vertex, nbr)
    result.eliminated_roles += before - state.num_active_vertices
