"""Result objects produced by searches and the full pipeline."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set

from ..graph.graph import Edge, Graph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .prototypes import Prototype, PrototypeSet


class PrototypeSearchOutcome:
    """Everything recorded while searching one prototype."""

    def __init__(self, prototype: "Prototype") -> None:
        self.prototype = prototype
        self.proto_id: int = prototype.id
        self.name: str = prototype.name
        self.distance: int = prototype.distance
        #: vertices/edges of the exact solution subgraph
        self.solution_vertices: Set[int] = set()
        self.solution_edges: Set[Edge] = set()
        #: number of match mappings, if counted (None otherwise)
        self.match_mappings: Optional[int] = None
        #: number of distinct matching subgraphs, if counted
        self.distinct_matches: Optional[int] = None
        #: enumerated match mappings, if collected
        self.matches: Optional[List[Dict[int, int]]] = None
        #: dense array match table (ArrayMatchSet) when the array
        #: enumerator produced the matches; lets the enumeration
        #: optimization chain stay in array form across levels.  Never
        #: serialized.
        self.match_set = None
        self.lcc_iterations = 0
        #: active (vertices, edges) right after the initial LCC fixpoint —
        #: attributes how much pruning LCC did before the NLCC walks ran
        self.post_lcc_vertices = 0
        self.post_lcc_edges = 0
        self.nlcc_constraints_checked = 0
        self.nlcc_roles_eliminated = 0
        self.nlcc_recycled = 0
        #: token-walk work counters, recorded whether or not a tracer is
        #: attached: initiators that actually launched a token, walk
        #: completions, and frontier rows collapsed by the array dedup fold
        self.nlcc_tokens_launched = 0
        self.nlcc_completions = 0
        self.nlcc_dedup_merged = 0
        self.exact = True
        #: simulated parallel seconds for this prototype's search
        self.simulated_seconds = 0.0
        self.wall_seconds = 0.0
        self.messages = 0
        self.remote_messages = 0

    @property
    def has_matches(self) -> bool:
        return bool(self.solution_vertices)

    def __repr__(self) -> str:
        return (
            f"PrototypeSearchOutcome({self.name}, vertices="
            f"{len(self.solution_vertices)}, mappings={self.match_mappings})"
        )


class LevelReport:
    """Per-edit-distance-level breakdown (the stacks of Figs. 6 and 8)."""

    def __init__(self, distance: int) -> None:
        self.distance = distance
        self.outcomes: List[PrototypeSearchOutcome] = []
        #: union-of-solution-subgraph sizes after this level (|V*_k| row)
        self.union_vertices = 0
        self.union_edges = 0
        #: summed post-LCC active counts over this level's prototype
        #: searches (attribution of LCC vs NLCC pruning work)
        self.post_lcc_vertices = 0
        self.post_lcc_edges = 0
        #: simulated seconds spent searching this level (after scheduling)
        self.search_seconds = 0.0
        #: simulated seconds of infrastructure management for this level
        self.infrastructure_seconds = 0.0
        self.wall_seconds = 0.0

    @property
    def num_prototypes(self) -> int:
        return len(self.outcomes)

    def labels_generated(self) -> int:
        """Total (vertex, prototype) labels produced at this level."""
        return sum(len(o.solution_vertices) for o in self.outcomes)

    def __repr__(self) -> str:
        return (
            f"LevelReport(k={self.distance}, prototypes={self.num_prototypes}, "
            f"union_vertices={self.union_vertices})"
        )


class PipelineResult:
    """Full output of an approximate-matching run.

    The primary product is the per-vertex *approximate match vector*
    (Def. 3): for each vertex, the set of prototype ids it participates in.
    """

    def __init__(
        self, template_name: str, k: int, prototype_set: "PrototypeSet"
    ) -> None:
        self.template_name = template_name
        self.k = k
        self.prototype_set = prototype_set
        #: vertex → frozenset of prototype ids (only matching vertices appear)
        self.match_vectors: Dict[int, Set[int]] = {}
        self.levels: List[LevelReport] = []
        self.candidate_set_vertices = 0
        self.candidate_set_edges = 0
        self.candidate_set_seconds = 0.0
        self.total_simulated_seconds = 0.0
        self.total_wall_seconds = 0.0
        self.total_infrastructure_seconds = 0.0
        #: aggregated message accounting across all engines of the run
        self.message_summary: Dict[str, object] = {}
        #: NLCC work-recycling cache counters (empty when recycling is off):
        #: hits/misses plus the cache's constraint and vertex-entry sizes
        self.nlcc_cache_stats: Dict[str, int] = {}
        #: why the run fell back to the dict level sweep (None = array path)
        self.array_fallback_reason: Optional[str] = None
        #: auxiliary pruned-view accounting (options.aux_views):
        #: views materialized, prototype searches that started on a view,
        #: and each view's (vertices, edges) size
        self.aux_views_built = 0
        self.aux_view_reuse = 0
        self.aux_view_sizes: List[tuple] = []
        #: the run's :class:`~repro.runtime.metrics.MetricsRegistry`
        #: (worker registries already merged in); None until the pipeline
        #: epilogue attaches it
        self.metrics: Optional[object] = None

    # ------------------------------------------------------------------
    def outcomes(self) -> List[PrototypeSearchOutcome]:
        return [o for level in self.levels for o in level.outcomes]

    def outcome_for(self, proto_id: int) -> PrototypeSearchOutcome:
        for outcome in self.outcomes():
            if outcome.proto_id == proto_id:
                return outcome
        raise KeyError(f"no outcome for prototype id {proto_id}")

    def match_vector(self, vertex: int) -> FrozenSet[int]:
        """The vertex's approximate match vector (empty if non-matching)."""
        return frozenset(self.match_vectors.get(vertex, ()))

    def vertices_matching(self, proto_id: int) -> Set[int]:
        return set(self.outcome_for(proto_id).solution_vertices)

    def matched_vertices(self) -> Set[int]:
        """Union of all matches over all prototypes."""
        return set(self.match_vectors)

    def union_subgraph(self, graph: Graph) -> Graph:
        """The union of all solution subgraphs, materialized."""
        edges: Set[Edge] = set()
        for outcome in self.outcomes():
            edges |= outcome.solution_edges
        sub = Graph()
        for vertex in self.match_vectors:
            sub.add_vertex(vertex, graph.label(vertex))
        for u, v in edges:
            sub.add_edge(u, v)
        return sub

    def total_labels_generated(self) -> int:
        """Total vertex/prototype labels (the bulk-labeling output size)."""
        return sum(len(vector) for vector in self.match_vectors.values())

    def total_match_mappings(self) -> Optional[int]:
        counts = [o.match_mappings for o in self.outcomes()]
        if any(c is None for c in counts):
            return None
        return sum(c for c in counts if c is not None)

    def total_distinct_matches(self) -> Optional[int]:
        counts = [o.distinct_matches for o in self.outcomes()]
        if any(c is None for c in counts):
            return None
        return sum(c for c in counts if c is not None)

    def level_for(self, distance: int) -> LevelReport:
        for level in self.levels:
            if level.distance == distance:
                return level
        raise KeyError(f"no level at distance {distance}")

    def nlcc_totals(self) -> Dict[str, int]:
        """Aggregated NLCC token-walk counters over every prototype search.

        Computed straight from the outcomes, so they are populated even
        when tracing is disabled (the tracer only adds per-span copies).
        """
        outcomes = self.outcomes()
        return {
            "constraints_checked": sum(
                o.nlcc_constraints_checked for o in outcomes
            ),
            "roles_eliminated": sum(o.nlcc_roles_eliminated for o in outcomes),
            "recycled": sum(o.nlcc_recycled for o in outcomes),
            "tokens_launched": sum(o.nlcc_tokens_launched for o in outcomes),
            "completions": sum(o.nlcc_completions for o in outcomes),
            "dedup_merged": sum(o.nlcc_dedup_merged for o in outcomes),
        }

    def stats_document(self) -> Dict[str, object]:
        """Machine-readable run summary (the CLI's ``--json`` output).

        Everything is plain JSON-serializable data: totals, candidate-set
        sizes, per-level breakdowns, NLCC cache counters and the aggregated
        message summary.  Match vectors are summarized (counts), not
        dumped — use the dedicated output writers for full vectors.
        """
        return {
            "template": self.template_name,
            "k": self.k,
            "prototypes": len(self.prototype_set),
            "matched_vertices": len(self.match_vectors),
            "total_labels": self.total_labels_generated(),
            "match_mappings": self.total_match_mappings(),
            "distinct_matches": self.total_distinct_matches(),
            "candidate_set": {
                "vertices": self.candidate_set_vertices,
                "edges": self.candidate_set_edges,
                "seconds": self.candidate_set_seconds,
            },
            "levels": [
                {
                    "distance": level.distance,
                    "prototypes": level.num_prototypes,
                    "union_vertices": level.union_vertices,
                    "union_edges": level.union_edges,
                    "post_lcc_vertices": level.post_lcc_vertices,
                    "post_lcc_edges": level.post_lcc_edges,
                    "nlcc_tokens_launched": sum(
                        o.nlcc_tokens_launched for o in level.outcomes
                    ),
                    "nlcc_completions": sum(
                        o.nlcc_completions for o in level.outcomes
                    ),
                    "nlcc_dedup_merged": sum(
                        o.nlcc_dedup_merged for o in level.outcomes
                    ),
                    "search_seconds": level.search_seconds,
                    "infrastructure_seconds": level.infrastructure_seconds,
                    "wall_seconds": level.wall_seconds,
                }
                for level in self.levels
            ],
            "nlcc": self.nlcc_totals(),
            "nlcc_cache": dict(self.nlcc_cache_stats),
            "array_fallback_reason": self.array_fallback_reason,
            "aux_views": {
                "built": self.aux_views_built,
                "reuse": self.aux_view_reuse,
                "sizes": [list(size) for size in self.aux_view_sizes],
            },
            "messages": dict(self.message_summary),
            "metrics": (
                self.metrics.snapshot() if self.metrics is not None else {}
            ),
            "totals": {
                "simulated_seconds": self.total_simulated_seconds,
                "infrastructure_seconds": self.total_infrastructure_seconds,
                "wall_seconds": self.total_wall_seconds,
            },
        }

    def __repr__(self) -> str:
        return (
            f"PipelineResult({self.template_name!r}, k={self.k}, "
            f"matched_vertices={len(self.match_vectors)}, "
            f"simulated_seconds={self.total_simulated_seconds:.3f})"
        )
