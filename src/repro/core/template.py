"""Search templates (``H0``) with mandatory and optional edges.

A :class:`PatternTemplate` wraps a small connected labeled graph and
remembers which edges are *mandatory* — the paper lets users mark edges
that every prototype must keep (§1, "may indicate mandatory relationships"),
so only the *optional* edges are subject to edit-distance removal.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import TemplateError
from ..graph.algorithms import is_connected
from ..graph.graph import Edge, Graph, canonical_edge


class PatternTemplate:
    """A connected, vertex-labeled search template.

    Parameters
    ----------
    graph:
        The template graph ``H0(W0, F0)``; must be connected and non-empty.
    mandatory_edges:
        Edges every prototype must retain (default: none — all optional).
    name:
        Display name used by benchmarks and reports (e.g. ``"WDC-1"``).
    """

    def __init__(
        self,
        graph: Graph,
        mandatory_edges: Iterable[Edge] = (),
        name: str = "template",
    ) -> None:
        if graph.num_vertices == 0:
            raise TemplateError("template must be non-empty")
        if not is_connected(graph):
            raise TemplateError("template must be connected")
        self.graph = graph.copy()
        self.name = name
        self.mandatory_edges: FrozenSet[Edge] = frozenset(
            canonical_edge(u, v) for u, v in mandatory_edges
        )
        for u, v in self.mandatory_edges:
            if not graph.has_edge(u, v):
                raise TemplateError(f"mandatory edge ({u}, {v}) not in template")

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Sequence[Edge],
        labels: Dict[int, int],
        mandatory_edges: Iterable[Edge] = (),
        name: str = "template",
        edge_labels: Optional[Dict[Edge, int]] = None,
    ) -> "PatternTemplate":
        """Build a template from an edge list and label maps.

        ``edge_labels`` maps canonical edges to required edge labels; a
        template edge without an entry matches background edges of any
        (or no) edge label.
        """
        graph = Graph()
        edge_labels = edge_labels or {}
        for vertex, label in labels.items():
            graph.add_vertex(vertex, label)
        for u, v in edges:
            if u not in graph or v not in graph:
                raise TemplateError(f"edge ({u}, {v}) references unlabeled vertex")
            graph.add_edge(u, v, edge_labels.get(canonical_edge(u, v)))
        return cls(graph, mandatory_edges=mandatory_edges, name=name)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def vertices(self) -> List[int]:
        return list(self.graph.vertices())

    def edges(self) -> List[Edge]:
        return sorted(self.graph.edges())

    def optional_edges(self) -> List[Edge]:
        """Edges eligible for edit-distance removal."""
        return [e for e in self.edges() if e not in self.mandatory_edges]

    def label(self, vertex: int) -> int:
        return self.graph.label(vertex)

    def label_set(self) -> Set[int]:
        return self.graph.label_set()

    def has_duplicate_labels(self) -> bool:
        """True if two template vertices share a label (needs PC checks)."""
        counts = self.graph.label_counts()
        return any(count > 1 for count in counts.values())

    def max_meaningful_distance(self) -> int:
        """Largest edit-distance before every prototype disconnects.

        Removing more than ``|F0| - (|W0| - 1)`` edges cannot leave a
        connected spanning subgraph, so this bounds prototype generation.
        """
        return max(0, self.num_edges - (self.num_vertices - 1))

    def __repr__(self) -> str:
        return (
            f"PatternTemplate({self.name!r}, n={self.num_vertices}, "
            f"m={self.num_edges}, mandatory={len(self.mandatory_edges)})"
        )


def clique_template(
    size: int, labels: Optional[Sequence[int]] = None, name: str = "clique"
) -> PatternTemplate:
    """A ``size``-clique template (WDC-4 in the paper is a 6-Clique).

    Labels default to ``0..size-1`` (all distinct, like the Fig. 5 WDC-4
    pattern whose prototype counts the paper reports: 1,941 within k=4).
    """
    if size < 2:
        raise TemplateError("clique size must be at least 2")
    if labels is None:
        labels = list(range(size))
    if len(labels) != size:
        raise TemplateError("need exactly one label per clique vertex")
    graph = Graph()
    for vertex in range(size):
        graph.add_vertex(vertex, int(labels[vertex]))
    for u in range(size):
        for v in range(u + 1, size):
            graph.add_edge(u, v)
    return PatternTemplate(graph, name=name)


def path_template(
    labels: Sequence[int], name: str = "path"
) -> PatternTemplate:
    """A simple path template labeled ``labels[0] - labels[1] - ...``."""
    if len(labels) < 2:
        raise TemplateError("path needs at least two vertices")
    graph = Graph()
    for vertex, label in enumerate(labels):
        graph.add_vertex(vertex, int(label))
    for vertex in range(len(labels) - 1):
        graph.add_edge(vertex, vertex + 1)
    return PatternTemplate(graph, name=name)


def cycle_template(labels: Sequence[int], name: str = "cycle") -> PatternTemplate:
    """A simple cycle template over ``labels``."""
    if len(labels) < 3:
        raise TemplateError("cycle needs at least three vertices")
    graph = Graph()
    for vertex, label in enumerate(labels):
        graph.add_vertex(vertex, int(label))
    for vertex in range(len(labels)):
        graph.add_edge(vertex, (vertex + 1) % len(labels))
    return PatternTemplate(graph, name=name)
