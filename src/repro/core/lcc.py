"""Local constraint checking — LCC (Alg. 4).

Iterative pruning: each round, every active vertex broadcasts its candidate
roles to its active neighbors (one visitor per active edge direction); after
quiescence each vertex keeps a role only if *every* template-neighbor of
that role is witnessed by some active neighbor, and edges survive only if
their endpoints hold template-adjacent roles.  Rounds repeat until nothing
changes — the fixed point is classic arc consistency over the prototype's
adjacency structure.

For tree prototypes with all-distinct labels this fixed point is provably
the exact solution subgraph; in general it is a superset that the non-local
checks (:mod:`~repro.core.nlcc`) reduce further.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, Optional, Set

from ..graph.graph import Graph
from ..runtime.engine import Engine
from ..runtime.visitor import Visitor
from .arraystate import (
    array_kernel_fixpoint,
    run_array_fixpoint,
)
from .kernels import RoleKernel, compile_role_kernel, kernel_fixpoint
from .state import SearchState


def local_constraint_checking(
    state: SearchState,
    proto_graph: Graph,
    engine: Engine,
    max_iterations: Optional[int] = None,
    role_kernel: bool = True,
    delta: bool = True,
    kernel: Optional[RoleKernel] = None,
    array_state: bool = False,
    astate=None,
    warm_mask=None,
    adaptive: bool = False,
) -> int:
    """Prune ``state`` to the LCC fixed point for ``proto_graph``.

    Returns the number of iterations executed.  ``max_iterations`` bounds
    the loop (useful for ablation experiments); ``None`` runs to fixpoint.

    ``role_kernel`` selects the bitmask hot path (:mod:`~repro.core.kernels`),
    compiling ``proto_graph`` unless a prepared ``kernel`` is supplied;
    ``delta`` additionally enables the semi-naive worklist mode, and
    ``array_state`` the vectorized CSR fixpoint
    (:mod:`~repro.core.arraystate` — multi-word role masks cover any
    template width).  All variants reach the same fixed point in the same
    number of rounds.

    Passing a live ``astate`` (level-persistent array mode) runs the
    vectorized fixpoint directly on it — no dict round trip; ``state`` is
    left untouched for the caller's final ``write_back``.  ``warm_mask``
    restricts the first round's broadcast accounting to the vertices whose
    state actually differs from the parent scope it was derived from (the
    warm-seeded worklist) — the fixed point and round count are unchanged.

    ``adaptive`` (live-``astate`` path only) enables the metrics-driven
    dense/sparse round switch in
    :func:`~repro.core.arraystate.array_kernel_fixpoint`; the fixed point
    is unchanged by construction.

    When the engine carries an enabled tracer, the whole fixpoint runs
    inside an ``lcc`` span counting iterations, pruned vertices/edges and
    message traffic (each round contributes its own child span).
    """
    if kernel is None and role_kernel:
        kernel = compile_role_kernel(proto_graph)
    tracer = engine.tracer
    stats = engine.stats
    counter = astate if astate is not None else state
    if tracer.enabled:
        before_vertices, before_edges = counter.active_counts()
        before_messages = stats.total_messages
        before_remote = stats.total_remote_messages
    with stats.phase("lcc"), tracer.span("lcc") as span:
        if astate is not None:
            iterations = array_kernel_fixpoint(
                astate, kernel, engine,
                max_iterations=max_iterations, delta=delta,
                warm_mask=warm_mask, adaptive=adaptive,
            )
        else:
            iterations = _run_fixpoint(
                state, proto_graph, engine, max_iterations, kernel, delta,
                array_state,
            )
    if tracer.enabled:
        after_vertices, after_edges = counter.active_counts()
        span.add(
            iterations=iterations,
            vertices_pruned=before_vertices - after_vertices,
            edges_pruned=before_edges - after_edges,
            messages=stats.total_messages - before_messages,
            remote_messages=stats.total_remote_messages - before_remote,
        )
    return iterations


def _run_fixpoint(
    state: SearchState,
    proto_graph: Graph,
    engine: Engine,
    max_iterations: Optional[int],
    kernel: Optional[RoleKernel],
    delta: bool,
    array_state: bool,
) -> int:
    """Dispatch to the array / kernel / set-based fixpoint variant."""
    if kernel is not None:
        if array_state:
            return run_array_fixpoint(
                state, kernel, engine,
                max_iterations=max_iterations, delta=delta,
            )
        return kernel_fixpoint(
            state, kernel, engine,
            max_iterations=max_iterations, delta=delta,
        )
    iterations = 0
    while max_iterations is None or iterations < max_iterations:
        iterations += 1
        received = _exchange_candidacies(state, engine)
        if not _apply_round(state, proto_graph, received):
            break
    return iterations


def _exchange_candidacies(
    state: SearchState, engine: Engine
) -> Dict[int, Dict[int, AbstractSet[int]]]:
    """One traversal: every active vertex sends its roles to its neighbors.

    Returns ``received[v][u] = roles u claimed``, the per-vertex inbox.
    The live role set is shared as the payload (no per-round ``frozenset``
    copies): the inbox is fully consumed by the synchronous apply step
    before any candidate set is rebound, so the alias is never observed
    after a mutation.
    """
    received: Dict[int, Dict[int, AbstractSet[int]]] = {}

    def visit(ctx, visitor: Visitor) -> None:
        if visitor.payload is None:
            vertex = visitor.target
            roles = state.candidates.get(vertex)
            if not roles:
                return
            payload = (vertex, roles)
            ctx.broadcast(vertex, state.active_edges.get(vertex, ()), payload)
        else:
            sender, roles = visitor.payload
            received.setdefault(visitor.target, {})[sender] = roles

    seeds = (Visitor(v) for v in list(state.candidates))
    engine.do_traversal(seeds, visit)
    return received


def _apply_round(
    state: SearchState,
    proto_graph: Graph,
    received: Dict[int, Dict[int, AbstractSet[int]]],
) -> bool:
    """Synchronous role/edge refinement; returns True if anything changed."""
    changed = False
    edge_labeled = proto_graph.has_edge_labels
    new_candidates: Dict[int, Set[int]] = {}
    for vertex, roles in state.candidates.items():
        inbox = received.get(vertex, {})
        surviving = {
            role
            for role in roles
            if _role_supported(
                vertex, role, proto_graph, state, inbox, edge_labeled
            )
        }
        if surviving != roles:
            changed = True
        if surviving:
            new_candidates[vertex] = surviving

    for vertex in list(state.candidates):
        if vertex not in new_candidates:
            state.deactivate_vertex(vertex)
        else:
            state.candidates[vertex] = new_candidates[vertex]

    # Edge elimination: both endpoints must hold template-adjacent roles.
    for vertex in list(state.candidates):
        roles_v = state.candidates[vertex]
        for nbr in list(state.active_edges.get(vertex, ())):
            if nbr < vertex and nbr in state.candidates:
                continue  # the pair is handled from nbr's side
            roles_u = state.candidates.get(nbr)
            if not roles_u or not _has_adjacent_pair(
                proto_graph, roles_v, roles_u,
                state.graph.edge_label(vertex, nbr) if edge_labeled else None,
                edge_labeled,
            ):
                state.deactivate_edge(vertex, nbr)
                changed = True
    return changed


def _role_supported(
    vertex: int,
    role: int,
    proto_graph: Graph,
    state: SearchState,
    inbox: Dict[int, AbstractSet[int]],
    edge_labeled: bool = False,
) -> bool:
    """Every template-neighbor of ``role`` needs an active witness neighbor.

    With an edge-labeled prototype the witness edge must also carry a
    compatible edge label (template edge label ``None`` matches anything).
    """
    active = state.active_edges.get(vertex, ())
    graph = state.graph
    for required in proto_graph.neighbors(role):
        wanted = (
            proto_graph.edge_label(role, required) if edge_labeled else None
        )
        satisfied = False
        for nbr in active:
            if required not in inbox.get(nbr, ()):
                continue
            if wanted is not None and graph.edge_label(vertex, nbr) != wanted:
                continue
            satisfied = True
            break
        if not satisfied:
            return False
    return True


def _has_adjacent_pair(
    proto_graph: Graph,
    roles_a: Set[int],
    roles_b: Set[int],
    graph_edge_label: "int | None" = None,
    edge_labeled: bool = False,
) -> bool:
    for a in roles_a:
        common = proto_graph.neighbors(a) & roles_b
        if not common:
            continue
        if not edge_labeled:
            return True
        for b in common:
            wanted = proto_graph.edge_label(a, b)
            if wanted is None or wanted == graph_edge_label:
                return True
    return False
