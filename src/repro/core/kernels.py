"""Bitmask role kernels — the allocation-light constraint-checking hot path.

Prototype role ids are tiny (a template has a handful of vertices), so a
vertex's candidate-role set ``ω(v)`` fits in the bits of one Python int.
:class:`RoleKernel` compiles a prototype (or template) graph once per
search into flat bit tables:

* ``neighbor_masks[bit]`` — the template-neighbor roles of the role owning
  ``bit``, as a bitmask;
* ``label_role_masks[label]`` — the roles carrying a vertex label;
* for edge-labeled prototypes, ``any_neighbor_masks`` / ``labeled_neighbor_masks``
  split the neighbor mask by required edge label (``None`` = matches any).

With these tables, the two LCC predicates collapse to integer operations:

* *role support* (every template-neighbor of a role witnessed by an active
  neighbor) becomes ``neighbor_masks[bit] & ~witnessed == 0`` where
  ``witnessed`` is the OR of the masks the vertex received — one pass over
  the inbox instead of a per-(role, template-neighbor, neighbor) scan;
* *edge viability* (endpoints hold template-adjacent roles) becomes
  ``neighbor_masks[bit] & other_mask`` over the set bits of one endpoint.

:func:`kernel_fixpoint` runs the arc-consistency fixed point over this
representation for both LCC (Alg. 4) and max-candidate-set generation
(§3.1 — pass ``mandatory_masks``), with an optional *semi-naive* (delta)
mode: after the first full round, only vertices whose role mask changed
re-broadcast, and only vertices whose inbox or active-edge set changed are
re-evaluated.  Because role masks and edge sets only ever shrink, the
per-round states are identical to the synchronous all-vertex rounds of the
baseline (an unchanged inbox re-derives the unchanged answer), so the delta
mode reaches the same fixed point in the same number of rounds while
cutting visitor and message counts — which the simulated cost model turns
into a shorter makespan.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from ..graph.graph import Graph
from ..runtime.metrics import MetricsRegistry
from ..runtime.visitor import Visitor
from .state import SearchState


class RoleKernel:
    """Compiled bitmask tables for one prototype/template graph.

    Compile once per search (`O(roles + template edges)`); the tables are
    read-only afterwards and shared by every LCC round and NLCC traversal
    of that search.
    """

    __slots__ = (
        "graph",
        "roles",
        "role_bit",
        "bit_role",
        "full_mask",
        "neighbor_masks",
        "label_role_masks",
        "edge_labeled",
        "any_neighbor_masks",
        "labeled_neighbor_masks",
    )

    def __init__(self, proto_graph: Graph) -> None:
        self.graph = proto_graph
        self.roles = sorted(proto_graph.vertices())
        #: role id -> its bit (1 << index)
        self.role_bit: Dict[int, int] = {
            role: 1 << index for index, role in enumerate(self.roles)
        }
        #: bit -> role id (inverse of ``role_bit``)
        self.bit_role: Dict[int, int] = {
            bit: role for role, bit in self.role_bit.items()
        }
        self.full_mask = (1 << len(self.roles)) - 1
        role_bit = self.role_bit
        #: bit -> bitmask of the role's template neighbors
        self.neighbor_masks: Dict[int, int] = {}
        for role in self.roles:
            mask = 0
            for other in proto_graph.neighbors(role):
                mask |= role_bit[other]
            self.neighbor_masks[role_bit[role]] = mask
        #: vertex label -> bitmask of roles carrying it
        self.label_role_masks: Dict[int, int] = {}
        for role in self.roles:
            label = proto_graph.label(role)
            self.label_role_masks[label] = (
                self.label_role_masks.get(label, 0) | role_bit[role]
            )
        self.edge_labeled = proto_graph.has_edge_labels
        #: bit -> neighbors reachable over label-free template edges
        self.any_neighbor_masks: Optional[Dict[int, int]] = None
        #: bit -> {required edge label -> neighbor mask}
        self.labeled_neighbor_masks: Optional[Dict[int, Dict[int, int]]] = None
        if self.edge_labeled:
            self.any_neighbor_masks = {}
            self.labeled_neighbor_masks = {}
            for role in self.roles:
                bit = role_bit[role]
                any_mask = 0
                by_label: Dict[int, int] = {}
                for other in proto_graph.neighbors(role):
                    wanted = proto_graph.edge_label(role, other)
                    if wanted is None:
                        any_mask |= role_bit[other]
                    else:
                        by_label[wanted] = by_label.get(wanted, 0) | role_bit[other]
                self.any_neighbor_masks[bit] = any_mask
                self.labeled_neighbor_masks[bit] = by_label

    # ------------------------------------------------------------------
    def mask_of(self, roles: Iterable[int]) -> int:
        """Pack a role set into its bitmask."""
        role_bit = self.role_bit
        mask = 0
        for role in roles:
            mask |= role_bit[role]
        return mask

    def roles_of(self, mask: int) -> Set[int]:
        """Unpack a bitmask into the role set it encodes."""
        bit_role = self.bit_role
        roles = set()
        while mask != 0:
            bit = mask & -mask
            roles.add(bit_role[bit])
            mask ^= bit
        return roles

    def mandatory_masks(self, mandatory_edges: Iterable[Tuple[int, int]]) -> Dict[int, int]:
        """bit -> bitmask of neighbors joined by mandatory edges (for M*)."""
        role_bit = self.role_bit
        masks = {bit: 0 for bit in self.bit_role}
        for u, v in mandatory_edges:
            masks[role_bit[u]] |= role_bit[v]
            masks[role_bit[v]] |= role_bit[u]
        return masks


def compile_role_kernel(proto_graph: Graph) -> RoleKernel:
    """Compile the bitmask tables for ``proto_graph``."""
    return RoleKernel(proto_graph)


def structural_fingerprint(graph: Graph) -> Tuple:
    """Hashable identity of a labeled graph (vertices, labels, edges).

    Two graphs with equal fingerprints are *identical* (same vertex ids,
    labels, edges and edge labels), not merely isomorphic — strong enough
    to share compiled read-only tables between them.
    """
    return (
        tuple(sorted((v, graph.label(v)) for v in graph.vertices())),
        tuple(sorted(graph.edges())),
        tuple(sorted(graph._edge_labels.items())) if graph.has_edge_labels
        else (),
    )


#: process-wide compiled-kernel table, keyed by structural fingerprint
_KERNEL_CACHE: Dict[Tuple, RoleKernel] = {}

#: cumulative cache traffic (registry counters per lint rule R8),
#: surfaced by the batch executor's counters and the per-run metrics
_KERNEL_CACHE_METRICS = MetricsRegistry()
_M_KERNEL_HITS = _KERNEL_CACHE_METRICS.counter("cache.kernel.hits")
_M_KERNEL_MISSES = _KERNEL_CACHE_METRICS.counter("cache.kernel.misses")


def cached_role_kernel(proto_graph: Graph) -> RoleKernel:
    """Class-keyed :func:`compile_role_kernel` memoization.

    Prototype graphs recur heavily across a batch (label-isomorphic
    templates share prototype structures, and every level of a pipeline
    recompiles per prototype).  The compiled tables are read-only, so one
    :class:`RoleKernel` can serve every structurally-identical graph; the
    cache key is the exact structural fingerprint — *not* a canonical
    form — so role ids in the tables always match the caller's graph.
    """
    key = structural_fingerprint(proto_graph)
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        _M_KERNEL_MISSES.inc()
        kernel = RoleKernel(proto_graph)
        _KERNEL_CACHE[key] = kernel
    else:
        _M_KERNEL_HITS.inc()
    return kernel


def kernel_cache_stats() -> Dict[str, int]:
    """Snapshot of the process-wide kernel-cache hit/miss counters."""
    return {
        "hits": int(_M_KERNEL_HITS.value),
        "misses": int(_M_KERNEL_MISSES.value),
    }


def clear_kernel_cache() -> None:
    """Drop compiled kernels and reset the counters (test hook)."""
    global _KERNEL_CACHE_METRICS, _M_KERNEL_HITS, _M_KERNEL_MISSES
    _KERNEL_CACHE.clear()
    _KERNEL_CACHE_METRICS = MetricsRegistry()
    _M_KERNEL_HITS = _KERNEL_CACHE_METRICS.counter("cache.kernel.hits")
    _M_KERNEL_MISSES = _KERNEL_CACHE_METRICS.counter("cache.kernel.misses")


class WalkSchedule:
    """Per-hop obligations of one non-local constraint's closed walk.

    Precomputed once per constraint and shared by the dict token walk and
    the array frontier (:func:`~repro.core.arraystate.array_token_walk`):

    * ``same_positions[h]`` / ``diff_positions[h]`` — the earlier walk
      positions a hop-``h`` vertex must equal / differ from (they fully
      partition ``range(h)``);
    * ``pinned[h]`` / ``free[h]`` — a partition of the path columns
      ``0..h`` held after hop ``h``: a column is *pinned* while some
      future hop still runs a ``same`` check against it (plus column 0,
      the initiator, and column ``h``, the frontier vertex); every other
      interior column is *free* — it is never read for equality again and
      appears symmetrically in every future ``diff`` check, so free
      column values can be reordered (sorted) without changing any future
      token behavior.  Freedom is monotone: once free, always free.
    * ``hop_edge_labels`` — per-hop required edge labels (``None`` = any),
      populated only for edge-labeled prototypes.
    """

    __slots__ = (
        "walk",
        "length",
        "same_positions",
        "diff_positions",
        "pinned",
        "free",
        "hop_edge_labels",
    )

    def __init__(self, constraint) -> None:
        walk = constraint.walk
        walk_len = len(walk)
        self.walk = walk
        self.length = walk_len
        self.same_positions = []
        self.diff_positions = []
        for hop in range(walk_len):
            self.same_positions.append(
                [p for p in range(hop) if walk[p] == walk[hop]]
            )
            self.diff_positions.append(
                [p for p in range(hop) if walk[p] != walk[hop]]
            )
        self.pinned = []
        self.free = []
        for hop in range(walk_len):
            pinned = {0, hop}
            for later in range(hop + 1, walk_len):
                pinned.update(
                    p for p in self.same_positions[later] if p <= hop
                )
            self.pinned.append(sorted(pinned))
            self.free.append(
                [p for p in range(1, hop) if p not in pinned]
            )
        self.hop_edge_labels = None
        proto_graph = getattr(constraint, "proto_graph", None)
        if proto_graph is not None and proto_graph.has_edge_labels:
            self.hop_edge_labels = [None] + [
                proto_graph.edge_label(walk[h - 1], walk[h])
                for h in range(1, walk_len)
            ]


def compile_walk_schedule(constraint) -> WalkSchedule:
    """Compile the per-hop identity/edge-label schedule of ``constraint``."""
    return WalkSchedule(constraint)


def candidate_masks(state: SearchState, kernel: RoleKernel) -> Dict[int, int]:
    """Snapshot ``state.candidates`` as per-vertex role bitmasks."""
    mask_of = kernel.mask_of
    return {v: mask_of(roles) for v, roles in state.candidates.items()}


def kernel_fixpoint(
    state: SearchState,
    kernel: RoleKernel,
    engine,
    max_iterations: Optional[int] = None,
    delta: bool = True,
    mandatory_masks: Optional[Dict[int, int]] = None,
) -> int:
    """Run the bitmask arc-consistency fixed point over ``state`` in place.

    ``mandatory_masks`` selects the rule applied per role bit:

    * ``None`` — LCC (Alg. 4): a role survives iff *every* template
      neighbor is witnessed by an active neighbor;
    * a dict — max-candidate-set generation (§3.1): a role survives iff
      all *mandatory* neighbors and at least one template neighbor are
      witnessed (roles without template edges always survive).

    ``delta=True`` enables the semi-naive worklist mode; ``delta=False``
    mirrors the baseline's all-active re-broadcast exactly (including its
    message counts).  Returns the number of rounds executed, matching the
    baseline's count (the final no-change round is paid in both).
    """
    candidates = state.candidates
    active_edges = state.active_edges
    edge_label = state.graph.edge_label

    masks = candidate_masks(state, kernel)
    original = dict(masks)
    #: persistent per-vertex inbox: v -> {active neighbor u -> u's mask}
    inbox: Dict[int, Dict[int, int]] = {v: {} for v in masks}

    neighbor_masks = kernel.neighbor_masks
    mcs_mode = mandatory_masks is not None
    edge_labeled = kernel.edge_labeled and not mcs_mode
    any_neighbor_masks = kernel.any_neighbor_masks
    labeled_neighbor_masks = kernel.labeled_neighbor_masks

    #: vertices whose inbox gained an entry this traversal (re-evaluate)
    received: Set[int] = set()

    def visit(ctx, visitor: Visitor) -> None:
        payload = visitor.payload
        if payload is None:
            vertex = visitor.target
            mask = masks.get(vertex)
            if not mask:
                return
            ctx.broadcast(vertex, active_edges.get(vertex, ()), (vertex, mask))
        else:
            target = visitor.target
            box = inbox.get(target)
            if box is not None:
                box[payload[0]] = payload[1]
                received.add(target)

    def drop_vertex(vertex: int, pending: Set[int]) -> None:
        """Deactivate ``vertex``; neighbors losing a witness re-evaluate."""
        masks.pop(vertex, None)
        inbox.pop(vertex, None)
        candidates.pop(vertex, None)
        for nbr in active_edges.pop(vertex, ()):
            box = inbox.get(nbr)
            if box is not None and vertex in box:
                del box[vertex]
                pending.add(nbr)
            other = active_edges.get(nbr)
            if other is not None:
                other.discard(vertex)

    def drop_edge(u: int, v: int, pending: Set[int]) -> None:
        active_edges.get(u, set()).discard(v)
        active_edges.get(v, set()).discard(u)
        box = inbox.get(u)
        if box is not None and v in box:
            del box[v]
            pending.add(u)
        box = inbox.get(v)
        if box is not None and u in box:
            del box[u]
            pending.add(v)

    iterations = 0
    broadcasters: Optional[Set[int]] = None  # None = all active vertices
    pending: Set[int] = set()  # inbox shrank since last evaluation
    while max_iterations is None or iterations < max_iterations:
        iterations += 1
        received.clear()
        if broadcasters is None:
            seeds = (Visitor(v) for v in list(candidates))
        else:
            seeds = (Visitor(v) for v in broadcasters)
        engine.do_traversal(seeds, visit)

        if broadcasters is None:
            # Full rounds (round 1, and every non-delta round) evaluate
            # every vertex: isolated candidates receive nothing but must
            # still fail their support checks.
            evaluate = list(masks)
        else:
            evaluate = list(received | pending)
        pending = set()

        # ---------------------------------------------- role refinement
        changed_vertices: Set[int] = set()
        eliminated = []
        for vertex in evaluate:
            mask = masks.get(vertex)
            if not mask:
                continue
            box = inbox.get(vertex)
            witnessed = 0
            if box:
                for received_mask in box.values():
                    witnessed |= received_mask
            if edge_labeled:
                witnessed_by_label: Dict[Optional[int], int] = {}
                if box:
                    for nbr, received_mask in box.items():
                        lab = edge_label(vertex, nbr)
                        witnessed_by_label[lab] = (
                            witnessed_by_label.get(lab, 0) | received_mask
                        )
            surviving = 0
            remaining = mask
            while remaining:
                bit = remaining & -remaining
                remaining ^= bit
                if mcs_mode:
                    required = neighbor_masks[bit]
                    if not required or (
                        not mandatory_masks[bit] & ~witnessed
                        and required & witnessed
                    ):
                        surviving |= bit
                elif edge_labeled:
                    if any_neighbor_masks[bit] & ~witnessed:
                        continue
                    for wanted, required in labeled_neighbor_masks[bit].items():
                        if required & ~witnessed_by_label.get(wanted, 0):
                            break
                    else:
                        surviving |= bit
                else:
                    if not neighbor_masks[bit] & ~witnessed:
                        surviving |= bit
            if surviving != mask:
                changed_vertices.add(vertex)
                if surviving:
                    masks[vertex] = surviving
                else:
                    eliminated.append(vertex)
        for vertex in eliminated:
            drop_vertex(vertex, pending)

        # ---------------------------------------------- edge elimination
        changed = bool(changed_vertices)
        if broadcasters is None:
            edge_scope = list(masks)
            check_all_pairs = True
        else:
            edge_scope = [v for v in changed_vertices if v in masks]
            check_all_pairs = False
        for vertex in edge_scope:
            mask_v = masks.get(vertex)
            if not mask_v:
                continue
            for nbr in list(active_edges.get(vertex, ())):
                if check_all_pairs and nbr < vertex and nbr in masks:
                    continue  # the pair is handled from nbr's side
                mask_u = masks.get(nbr)
                if mask_u and _adjacent_pair(
                    kernel, mask_v, mask_u,
                    edge_label(vertex, nbr) if edge_labeled else None,
                    edge_labeled,
                ):
                    continue
                drop_edge(vertex, nbr, pending)
                changed = True

        if not changed:
            break
        if delta:
            broadcasters = {v for v in changed_vertices if v in masks}
        else:
            broadcasters = None

    # Write the surviving role masks back into the canonical set form.
    roles_of = kernel.roles_of
    for vertex, mask in masks.items():
        if mask != original[vertex]:
            candidates[vertex] = roles_of(mask)
    return iterations


def _adjacent_pair(
    kernel: RoleKernel,
    mask_a: int,
    mask_b: int,
    graph_edge_label: Optional[int],
    edge_labeled: bool,
) -> bool:
    """Bitmask form of ``lcc._has_adjacent_pair``."""
    if not edge_labeled:
        neighbor_masks = kernel.neighbor_masks
        remaining = mask_a
        while remaining:
            bit = remaining & -remaining
            remaining ^= bit
            if neighbor_masks[bit] & mask_b:
                return True
        return False
    any_neighbor_masks = kernel.any_neighbor_masks
    labeled_neighbor_masks = kernel.labeled_neighbor_masks
    remaining = mask_a
    while remaining:
        bit = remaining & -remaining
        remaining ^= bit
        acceptable = any_neighbor_masks[bit]
        by_label = labeled_neighbor_masks[bit]
        if by_label and graph_edge_label is not None:
            acceptable |= by_label.get(graph_edge_label, 0)
        if acceptable & mask_b:
            return True
    return False


__all__ = [
    "RoleKernel",
    "WalkSchedule",
    "candidate_masks",
    "compile_role_kernel",
    "compile_walk_schedule",
    "kernel_fixpoint",
]
