"""Template-library batch executor — shared work across a template set.

Multi-template workloads (motif censuses, wildcard sweeps, query logs)
traditionally loop ``run_pipeline`` once per template, recomputing role
kernels, prototype sets and the ``M*`` background traversal from scratch
every iteration even when templates are label-isomorphic.  This module
compiles the whole library once and shares everything shareable:

* **Classes** — queries are canonicalized into label-isomorphism classes
  (mandatory-aware, like prototype dedup).  Each class compiles one
  shared :class:`~repro.core.kernels.RoleKernel` and one prototype set
  via the class-keyed caches, and runs one background ``M*`` traversal
  through a shared :class:`~repro.core.candidate_set.CandidateSetMemo`.
* **Families** — exact (``k = 0``) classes on the same vertex count are
  absorbed into the densest class's prototype tree: a ``P4`` query *is*
  the 4-clique's distance-2 prototype, so one 4-clique pipeline at
  ``k_eff`` answers six motif queries in a single bottom-up sweep,
  with the containment rule shrinking every sparser search.
* **Auxiliary views** — per-class pipelines re-materialize GraphMini
  style pruned CSRs (:meth:`GraphCsr.induced_view`) so sibling
  prototype searches start from the pruned view instead of ``G``; the
  :class:`~repro.runtime.parallel.TemplateBatchScheduler` additionally
  packs a class's memoized ``M*`` scope into a view before the pipeline
  even starts, and pooled runs ship views through the existing
  shared-memory machinery zero-copy.

Per-query answers are read back off prototype outcomes (match counts are
isomorphism-invariant; absorbed queries map onto the root's prototypes
via explicit label-preserving isomorphisms).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import PrototypeError, TemplateError
from ..graph.graph import Graph, canonical_edge
from ..graph.isomorphism import find_subgraph_isomorphisms
from ..runtime.parallel import BatchJob, TemplateBatchScheduler
from .candidate_set import CandidateSetMemo
from .kernels import cached_role_kernel, kernel_cache_stats
from .ordering import estimate_prototype_cost
from .prototypes import (
    Prototype,
    PrototypeSet,
    _mandatory_aware_key,
    cached_prototypes,
    prototype_cache_stats,
)
from .results import PipelineResult, PrototypeSearchOutcome
from .template import PatternTemplate


class BatchQuery:
    """One library entry: a template searched at edit-distance ``k``."""

    __slots__ = ("template", "k", "name")

    def __init__(
        self, template: PatternTemplate, k: int, name: Optional[str] = None
    ) -> None:
        if k < 0:
            raise TemplateError("edit-distance k must be non-negative")
        self.template = template
        self.k = min(k, template.max_meaningful_distance())
        self.name = name if name is not None else template.name


class TemplateClass:
    """A label-isomorphism class: queries answered by one representative.

    ``isos[i]`` maps ``queries[i].template`` vertices onto the
    representative's vertices (mandatory edges onto mandatory edges), so
    every member's answer is the representative's answer up to renaming.
    """

    __slots__ = (
        "name", "key", "k", "representative", "queries", "isos",
        "prototypes", "kernel", "family",
    )

    def __init__(
        self, name: str, key: Tuple, k: int, representative: PatternTemplate
    ) -> None:
        self.name = name
        self.key = key
        self.k = k
        self.representative = representative
        self.queries: List[BatchQuery] = []
        self.isos: List[Dict[int, int]] = []
        self.prototypes: Optional[PrototypeSet] = None
        self.kernel = None
        #: set when a family absorbed this class (k = 0 classes only)
        self.family: Optional["TemplateFamily"] = None

    @property
    def num_queries(self) -> int:
        return len(self.queries)


class TemplateFamily:
    """``k = 0`` classes absorbed into one denser root class's pipeline.

    The root runs once at ``k_eff`` (the deepest absorbed prototype's
    distance); each member reads its answer off the root prototype its
    representative is isomorphic to, via ``iso`` (member representative →
    root prototype graph).
    """

    __slots__ = ("root", "k_eff", "members")

    def __init__(self, root: TemplateClass) -> None:
        self.root = root
        self.k_eff = 0
        #: member class → (root prototype, iso rep-graph → proto-graph)
        self.members: Dict[str, Tuple[TemplateClass, Prototype, Dict[int, int]]] = {}

    @property
    def num_members(self) -> int:
        return len(self.members)


def _matching_isomorphism(
    first: Graph,
    second: Graph,
    mandatory_first: Iterable[Tuple[int, int]],
    mandatory_second: Iterable[Tuple[int, int]],
) -> Dict[int, int]:
    """A label-preserving iso ``first → second`` respecting mandatory edges.

    ``find_subgraph_isomorphisms`` between equal-order, equal-size graphs
    enumerates exactly the label-preserving isomorphisms; equality of the
    mandatory-aware canonical keys guarantees at least one of them maps
    mandatory edges onto mandatory edges.
    """
    mandatory_first = sorted(mandatory_first)
    mandatory_second = frozenset(
        canonical_edge(u, v) for u, v in mandatory_second
    )
    for mapping in find_subgraph_isomorphisms(first, second):
        if all(
            canonical_edge(mapping[u], mapping[v]) in mandatory_second
            for u, v in mandatory_first
        ):
            return mapping
    raise PrototypeError(
        "no mandatory-respecting isomorphism between key-equal graphs"
    )


class TemplateLibrary:
    """Compiled form of a query batch: classes, families and shared tables.

    Compilation is graph-independent — one library can be executed
    against any number of background graphs via :func:`run_batch`.
    """

    def __init__(
        self,
        queries: Sequence[BatchQuery],
        max_prototypes: Optional[int] = None,
        absorb_families: bool = True,
    ) -> None:
        if not queries:
            raise TemplateError("a template library needs at least one query")
        names = [q.name for q in queries]
        if len(set(names)) != len(names):
            raise TemplateError("batch query names must be unique")
        self.queries = list(queries)
        self.max_prototypes = max_prototypes
        self.classes: List[TemplateClass] = []
        self.families: List[TemplateFamily] = []
        self._group()
        if absorb_families:
            self._absorb()
        self._compile()

    # ------------------------------------------------------------------
    def _group(self) -> None:
        """Partition queries into (structure, k) label-isomorphism classes."""
        by_key: Dict[Tuple, TemplateClass] = {}
        for query in self.queries:
            template = query.template
            key = (_mandatory_aware_key(template.graph, template), query.k)
            cls = by_key.get(key)
            if cls is None:
                cls = TemplateClass(
                    f"class{len(self.classes)}:{template.name}",
                    key, query.k, template,
                )
                by_key[key] = cls
                self.classes.append(cls)
                iso = {v: v for v in template.vertices()}
            else:
                iso = _matching_isomorphism(
                    template.graph,
                    cls.representative.graph,
                    template.mandatory_edges,
                    cls.representative.mandatory_edges,
                )
            cls.queries.append(query)
            cls.isos.append(iso)

    def _absorb(self) -> None:
        """Fold exact classes into the densest structurally-covering root.

        Greedy: the densest remaining ``k = 0`` class becomes a root; its
        full prototype tree is indexed by the mandatory-aware key, and
        every remaining exact class whose representative appears in the
        tree is absorbed at that prototype's distance.
        """
        remaining = [c for c in self.classes if c.k == 0]
        remaining.sort(
            key=lambda c: (
                -c.representative.num_edges,
                -c.representative.num_vertices,
                c.name,
            )
        )
        while remaining:
            root = remaining.pop(0)
            others = [
                c for c in remaining
                if c.representative.num_vertices == root.representative.num_vertices
            ]
            if not others:
                continue
            rep = root.representative
            try:
                tree = cached_prototypes(
                    rep, rep.max_meaningful_distance(), self.max_prototypes
                )
            except PrototypeError:
                continue  # tree too large to share; root stays standalone
            index = {
                _mandatory_aware_key(proto.graph, rep): proto for proto in tree
            }
            family = TemplateFamily(root)
            for other in others:
                proto = index.get(other.key[0])
                if proto is None:
                    continue
                try:
                    iso = _matching_isomorphism(
                        other.representative.graph,
                        proto.graph,
                        other.representative.mandatory_edges,
                        rep.mandatory_edges,
                    )
                except PrototypeError:
                    continue  # cross-template key collision without an iso
                family.members[other.name] = (other, proto, iso)
                family.k_eff = max(family.k_eff, proto.distance)
                other.family = family
                remaining.remove(other)
            if family.members:
                # The root itself reads off the (unique) distance-0 proto.
                root_proto = tree.at(0)[0]
                family.members[root.name] = (
                    root, root_proto, {v: v for v in rep.vertices()}
                )
                root.family = family
                self.families.append(family)

    def _compile(self) -> None:
        """Attach shared kernels and (k-clamped) prototype sets per run."""
        for cls in self.classes:
            if cls.family is not None and cls.family.root is not cls:
                continue  # absorbed: the family root's tables serve it
            k_run = cls.family.k_eff if cls.family is not None else cls.k
            cls.prototypes = cached_prototypes(
                cls.representative, k_run, self.max_prototypes
            )
            cls.kernel = cached_role_kernel(cls.representative.graph)

    # ------------------------------------------------------------------
    def root_classes(self) -> List[TemplateClass]:
        """Classes that run their own pipeline (standalone or family root)."""
        return [
            cls for cls in self.classes
            if cls.family is None or cls.family.root is cls
        ]

    def jobs(self, graph: Graph) -> List[BatchJob]:
        """Scheduler jobs for ``graph`` (costs need its label counts)."""
        label_frequencies = graph.label_counts()
        jobs = []
        for cls in self.root_classes():
            k_run = cls.family.k_eff if cls.family is not None else cls.k
            cost = sum(
                estimate_prototype_cost(proto, label_frequencies)
                for proto in cls.prototypes
            )
            jobs.append(
                BatchJob(cls.name, cls.representative, k_run, cls.prototypes, cost)
            )
        return jobs

    def __len__(self) -> int:
        return len(self.queries)

    def __repr__(self) -> str:
        return (
            f"TemplateLibrary(queries={len(self.queries)}, "
            f"classes={len(self.classes)}, families={len(self.families)})"
        )


class BatchItemResult:
    """One query's answer, read off its class (or family root) pipeline."""

    __slots__ = (
        "query", "class_name", "absorbed", "result", "outcome", "iso",
        "matched_vertices", "match_mappings", "distinct_matches",
    )

    def __init__(
        self,
        query: BatchQuery,
        class_name: str,
        absorbed: bool,
        result: PipelineResult,
        outcome: Optional[PrototypeSearchOutcome],
        iso: Dict[int, int],
    ) -> None:
        self.query = query
        self.class_name = class_name
        #: True when the answer came from a family root's prototype tree
        self.absorbed = absorbed
        self.result = result
        self.outcome = outcome
        #: query-template vertices → the graph the counts were read from
        #: (class representative, or the root prototype when absorbed)
        self.iso = iso
        if outcome is not None:
            self.matched_vertices: Set[int] = set(outcome.solution_vertices)
            self.match_mappings = outcome.match_mappings
            self.distinct_matches = outcome.distinct_matches
        else:
            self.matched_vertices = result.matched_vertices()
            self.match_mappings = result.total_match_mappings()
            self.distinct_matches = result.total_distinct_matches()

    def __repr__(self) -> str:
        return (
            f"BatchItemResult({self.query.name!r}, "
            f"vertices={len(self.matched_vertices)}, "
            f"mappings={self.match_mappings})"
        )


class BatchResult:
    """Everything :func:`run_batch` produced, with shared-work counters."""

    def __init__(
        self,
        library: TemplateLibrary,
        items: Dict[str, BatchItemResult],
        class_results: Dict[str, PipelineResult],
        scheduler: TemplateBatchScheduler,
        memo: CandidateSetMemo,
        cache_deltas: Dict[str, Dict[str, int]],
        wall_seconds: float,
        metrics=None,
    ) -> None:
        self.library = library
        self.items = items
        self.class_results = class_results
        self.scheduler = scheduler
        self.memo = memo
        self.cache_deltas = cache_deltas
        self.wall_seconds = wall_seconds
        #: the registry the batch ran against (None for hand-built results)
        self.metrics = metrics

    def __getitem__(self, name: str) -> BatchItemResult:
        return self.items[name]

    def __iter__(self):
        return iter(self.items.values())

    def __len__(self) -> int:
        return len(self.items)

    # ------------------------------------------------------------------
    def schedule_costs(self) -> List[Dict[str, object]]:
        """Scheduler estimate vs measured wall, per root job, in LPT order.

        ``cost_estimate`` is the frequency-model number the scheduler
        ordered jobs by (:func:`~repro.core.ordering
        .estimate_prototype_cost`, arbitrary units); ``wall_seconds`` is
        the root pipeline's measured wall.  Side-by-side they show how
        faithful the static model's *ordering* was — the units differ, so
        only the relative shape is meaningful.
        """
        scheduler = self.scheduler
        return [
            {
                "name": name,
                "cost_estimate": scheduler.costs.get(name, 0.0),
                "wall_seconds": (
                    self.class_results[name].total_wall_seconds
                    if name in self.class_results
                    else 0.0
                ),
            }
            for name in scheduler.order
        ]

    def aux_view_totals(self) -> Dict[str, int]:
        """Auxiliary-view reuse summed over every class pipeline."""
        built = sum(r.aux_views_built for r in self.class_results.values())
        reuse = sum(r.aux_view_reuse for r in self.class_results.values())
        return {
            "built": built,
            "reuse": reuse,
            "shipped": self.scheduler.views_shipped,
        }

    def stats_document(self) -> Dict[str, object]:
        """Machine-readable batch summary (the CLI's ``--json`` output)."""
        library = self.library
        per_class = []
        for cls in library.classes:
            root = (
                cls.family.root.name if cls.family is not None else cls.name
            )
            result = self.class_results.get(root)
            per_class.append(
                {
                    "name": cls.name,
                    "template": cls.representative.name,
                    "k": cls.k,
                    "queries": cls.num_queries,
                    "root": root,
                    "reuse": cls.num_queries - 1,
                    "aux_views_built": result.aux_views_built if result else 0,
                    "aux_view_reuse": result.aux_view_reuse if result else 0,
                    "array_fallback_reason": (
                        result.array_fallback_reason if result else None
                    ),
                }
            )
        return {
            "queries": len(library.queries),
            "classes": len(library.classes),
            "root_runs": len(self.class_results),
            "families": [
                {
                    "root": family.root.name,
                    "k_eff": family.k_eff,
                    "members": sorted(family.members),
                }
                for family in library.families
            ],
            "schedule": list(self.scheduler.order),
            "schedule_costs": self.schedule_costs(),
            "mstar_memo": {"hits": self.memo.hits, "misses": self.memo.misses},
            "kernel_cache": dict(self.cache_deltas["kernel"]),
            "prototype_cache": dict(self.cache_deltas["prototype"]),
            "aux_views": {
                **self.aux_view_totals(),
                "view_sizes": [list(s) for s in self.scheduler.view_sizes],
            },
            "per_class": per_class,
            "items": {
                name: {
                    "class": item.class_name,
                    "absorbed": item.absorbed,
                    "matched_vertices": len(item.matched_vertices),
                    "match_mappings": item.match_mappings,
                    "distinct_matches": item.distinct_matches,
                }
                for name, item in sorted(self.items.items())
            },
            "wall_seconds": self.wall_seconds,
            "metrics": (
                self.metrics.snapshot() if self.metrics is not None else {}
            ),
        }

    def __repr__(self) -> str:
        return (
            f"BatchResult(queries={len(self.items)}, "
            f"root_runs={len(self.class_results)}, "
            f"wall_seconds={self.wall_seconds:.3f})"
        )


def _cache_delta(
    before: Dict[str, int], after: Dict[str, int]
) -> Dict[str, int]:
    return {key: after[key] - before.get(key, 0) for key in after}


def run_batch(
    graph: Graph,
    queries: Sequence[BatchQuery],
    options=None,
    library: Optional[TemplateLibrary] = None,
) -> BatchResult:
    """Execute a query batch over ``graph`` with cross-template sharing.

    Pass a pre-compiled ``library`` to reuse one compilation across
    graphs; otherwise the library is compiled from ``queries`` using
    ``options.max_prototypes`` as the budget.  Respects ``options``
    verbatim — enable ``options.aux_views`` to let both the scheduler's
    ``M*`` pre-pruning and the per-level re-materialization kick in.
    """
    from .pipeline import PipelineOptions

    if options is None:
        options = PipelineOptions()
    if library is None:
        library = TemplateLibrary(queries, max_prototypes=options.max_prototypes)
    else:
        queries = library.queries

    kernel_before = kernel_cache_stats()
    proto_before = prototype_cache_stats()
    memo = CandidateSetMemo()
    scheduler = TemplateBatchScheduler(graph, options, memo=memo)
    started = time.perf_counter()
    with options.tracer.span(
        "batch", queries=len(queries), classes=len(library.classes),
        families=len(library.families),
    ) as span:
        class_results = scheduler.run(library.jobs(graph))
        items: Dict[str, BatchItemResult] = {}
        for cls in library.classes:
            if cls.family is not None:
                family = cls.family
                result = class_results[family.root.name]
                _, proto, rep_iso = family.members[cls.name]
                outcome = result.outcome_for(proto.id)
            else:
                result = class_results[cls.name]
                outcome = None
                rep_iso = None
            for query, member_iso in zip(cls.queries, cls.isos):
                if rep_iso is not None:
                    iso = {v: rep_iso[member_iso[v]] for v in member_iso}
                else:
                    iso = dict(member_iso)
                items[query.name] = BatchItemResult(
                    query, cls.name, cls.family is not None, result, outcome, iso
                )
        wall = time.perf_counter() - started
        metrics = options.metrics
        metrics.counter("cache.mstar_memo.hits").inc(memo.hits)
        metrics.counter("cache.mstar_memo.misses").inc(memo.misses)
        if options.tracer.enabled:
            totals = sum(r.aux_views_built for r in class_results.values())
            span.add(
                root_runs=len(class_results),
                mstar_hits=memo.hits,
                aux_views_built=totals,
                views_shipped=scheduler.views_shipped,
            )
    return BatchResult(
        library,
        items,
        class_results,
        scheduler,
        memo,
        {
            "kernel": _cache_delta(kernel_before, kernel_cache_stats()),
            "prototype": _cache_delta(proto_before, prototype_cache_stats()),
        },
        wall,
        metrics=metrics,
    )


__all__ = [
    "BatchItemResult",
    "BatchQuery",
    "BatchResult",
    "TemplateClass",
    "TemplateFamily",
    "TemplateLibrary",
    "run_batch",
]
