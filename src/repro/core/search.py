"""Search routine for a single prototype (Alg. 2).

``search_prototype`` drives one prototype to its exact solution subgraph:

1. local constraint checking to a fixed point;
2. each non-local constraint in the configured order, re-running LCC after
   any constraint that eliminated something (Alg. 2 lines #7–9);
3. exactness: either the constraint set ends with the full-walk TDS check
   (which reduces the state to exactly the solution subgraph and counts
   match mappings as a by-product), the prototype is a distinct-labeled
   tree (LCC fixed point is provably exact), or — when the caller disabled
   the full walk — an enumeration-based verification pass.
"""

from __future__ import annotations

import time
from typing import Optional

from ..runtime.engine import Engine
from .constraints import FULL_WALK_KIND, ConstraintSet
from .enumeration import (
    astate_from_matches,
    count_match_mappings,
    distinct_match_count,
    enumerate_matches,
    enumerate_matches_array,
    state_from_matches,
)
from .arraystate import ArraySearchState
from .kernels import cached_role_kernel
from .lcc import local_constraint_checking
from .nlcc import non_local_constraint_checking
from .ordering import reorder_measured
from .prototypes import Prototype
from .results import PrototypeSearchOutcome
from .state import NlccCache, SearchState


def search_prototype(
    state: SearchState,
    prototype: Prototype,
    constraint_set: ConstraintSet,
    engine: Engine,
    cache: Optional[NlccCache] = None,
    recycle: bool = True,
    count_matches: bool = False,
    collect_matches: bool = False,
    verification: str = "auto",
    role_kernel: bool = True,
    delta_lcc: bool = True,
    array_state: bool = False,
    array_nlcc: bool = False,
    array_scope: Optional[ArraySearchState] = None,
    warm_mask=None,
    adaptive: bool = False,
    constraint_costs=None,
) -> PrototypeSearchOutcome:
    """Reduce ``state`` to the prototype's solution subgraph, in place.

    ``verification``:

    * ``"auto"`` — trust the constraint set when it guarantees exactness
      (full walk included, or distinct-labeled tree); otherwise fall back
      to enumeration;
    * ``"enumeration"`` — always verify by enumeration;
    * ``"constraints"`` — never enumerate; the outcome's ``exact`` flag
      reports whether the constraint set alone guarantees exactness.

    ``role_kernel`` compiles the prototype once into bitmask tables shared
    by every LCC re-run and NLCC traversal of this search; ``delta_lcc``
    enables the semi-naive LCC worklist and ``array_state`` the vectorized
    CSR fixpoint.  All preserve results exactly.

    With both ``array_state`` and ``array_nlcc`` (and a kernel within the
    mask width) the whole search body runs on one persistent
    :class:`~repro.core.arraystate.ArraySearchState` — every LCC fixpoint
    and token walk in array form, one ``write_back`` into ``state`` at the
    end.  ``array_scope`` supplies that array state pre-built by the caller
    (the level-persistent mode); it is mutated in place and kept in sync
    with ``state`` even through an enumeration-verification reduction.
    ``warm_mask`` warm-seeds the first LCC round's broadcast accounting
    (see :func:`~repro.core.lcc.local_constraint_checking`).

    ``adaptive`` turns on the two metrics-driven consumers: the
    dense/sparse round switch inside the array LCC fixpoint and — when
    ``constraint_costs`` (a
    :class:`~repro.runtime.metrics.ConstraintCostModel`) carries
    measurements from earlier prototypes — a measured-cost re-sort of the
    non-local constraint order.  Each NLCC constraint's wall time is fed
    back into ``constraint_costs`` whenever one is supplied, so costs
    recycle across the prototypes of a run (and across a batch when the
    executor shares one options object).  Both consumers preserve the
    match set exactly; see the respective docstrings.
    """
    outcome = PrototypeSearchOutcome(prototype)
    started = time.perf_counter()
    tracer = engine.tracer

    with tracer.span(
        "prototype",
        proto=prototype.id,
        label=prototype.name,
        distance=prototype.distance,
    ) as span:
        _search_prototype_body(
            state, prototype, constraint_set, engine, cache, recycle,
            count_matches, collect_matches, verification, role_kernel,
            delta_lcc, array_state, array_nlcc, array_scope, warm_mask,
            adaptive, constraint_costs, outcome,
        )
    if tracer.enabled:
        span.add(
            lcc_iterations=outcome.lcc_iterations,
            nlcc_constraints=outcome.nlcc_constraints_checked,
            nlcc_eliminated=outcome.nlcc_roles_eliminated,
            nlcc_recycled=outcome.nlcc_recycled,
            nlcc_tokens=outcome.nlcc_tokens_launched,
            nlcc_dedup_merged=outcome.nlcc_dedup_merged,
            solution_vertices=len(outcome.solution_vertices),
            solution_edges=len(outcome.solution_edges),
        )
    outcome.wall_seconds = time.perf_counter() - started
    return outcome


def _search_prototype_body(
    state: SearchState,
    prototype: Prototype,
    constraint_set: ConstraintSet,
    engine: Engine,
    cache: Optional[NlccCache],
    recycle: bool,
    count_matches: bool,
    collect_matches: bool,
    verification: str,
    role_kernel: bool,
    delta_lcc: bool,
    array_state: bool,
    array_nlcc: bool,
    array_scope: Optional[ArraySearchState],
    warm_mask,
    adaptive: bool,
    constraint_costs,
    outcome: PrototypeSearchOutcome,
) -> None:
    """Alg. 2 body; fills ``outcome`` (timing is the caller's job)."""
    kernel = cached_role_kernel(prototype.graph) if role_kernel else None
    astate = None
    if kernel is not None and array_state and array_nlcc:
        # Persistent array mode: LCC and NLCC share one array state for
        # the whole search, written back to the dict state exactly once.
        if array_scope is not None:
            astate = array_scope
        else:
            astate = ArraySearchState.from_search_state(
                state, roles=kernel.roles
            )
    elif array_scope is not None:
        # Caller prepared an array scope but this search can't run in
        # array form (e.g. the kernel is off) — materialize it so the
        # dict path sees the real starting state.
        array_scope.write_back(state)
    counter = astate if astate is not None else state
    outcome.lcc_iterations = local_constraint_checking(
        state, prototype.graph, engine,
        role_kernel=role_kernel, delta=delta_lcc, kernel=kernel,
        array_state=array_state, astate=astate, warm_mask=warm_mask,
        adaptive=adaptive,
    )
    (
        outcome.post_lcc_vertices,
        outcome.post_lcc_edges,
    ) = counter.active_counts()

    non_local = constraint_set.non_local
    if adaptive and constraint_costs is not None:
        # Measured-cost re-sort (no-op until earlier prototypes have
        # contributed above-resolution wall times).
        non_local = reorder_measured(non_local, constraint_costs)
    timing = constraint_costs is not None
    h_constraint = engine.metrics.histogram("nlcc.constraint_seconds")

    full_walk_ran = False
    full_walk_completions = 0
    full_walk_result = None
    for constraint in non_local:
        if not counter.num_active_vertices:
            break
        constraint_started = time.perf_counter() if timing else 0.0
        result = non_local_constraint_checking(
            state, constraint, engine, cache=cache, recycle=recycle,
            kernel=kernel, astate=astate, array_nlcc=array_nlcc,
        )
        if timing:
            wall = time.perf_counter() - constraint_started
            constraint_costs.observe(constraint.key, wall)
            h_constraint.observe(wall)
        outcome.nlcc_constraints_checked += 1
        outcome.nlcc_roles_eliminated += result.eliminated_roles
        outcome.nlcc_recycled += len(result.recycled)
        outcome.nlcc_tokens_launched += result.tokens_launched
        outcome.nlcc_completions += result.completions
        outcome.nlcc_dedup_merged += result.dedup_merged
        if constraint.kind == FULL_WALK_KIND:
            full_walk_ran = True
            full_walk_completions = result.completions
            # Keep the whole result: the array walk stores completions
            # as a dense path matrix, and reading .completed_mappings
            # here would materialize per-match dicts even when no one
            # collects them.
            full_walk_result = result
        elif result.changed:
            outcome.lcc_iterations += local_constraint_checking(
                state, prototype.graph, engine,
                role_kernel=role_kernel, delta=delta_lcc, kernel=kernel,
                array_state=array_state, astate=astate, adaptive=adaptive,
            )

    constraints_exact = full_walk_ran or constraint_set.exact_without_full_walk
    need_enumeration = verification == "enumeration" or (
        verification == "auto" and not constraints_exact
    )
    if astate is not None:
        # Array-native tail: enumeration (when needed) runs the vectorized
        # frontier backtracker on the array state directly and reduces it
        # in place, so the single write_back below is the only dict
        # materialization of the whole search.
        if need_enumeration:
            match_set = enumerate_matches_array(prototype, astate)
            astate_from_matches(astate, prototype, match_set)
            outcome.match_mappings = len(match_set)
            if collect_matches:
                outcome.matches = match_set.mappings()
                outcome.match_set = match_set
        elif collect_matches:
            if full_walk_ran:
                # Each completed full-walk token already is an exact match.
                outcome.matches = full_walk_result.completed_mappings
            else:
                match_set = enumerate_matches_array(prototype, astate)
                outcome.matches = match_set.mappings()
                outcome.match_set = match_set
            outcome.match_mappings = len(outcome.matches)
        elif full_walk_ran:
            outcome.match_mappings = full_walk_completions
        elif count_matches:
            outcome.match_mappings = len(
                enumerate_matches_array(prototype, astate)
            )
        astate.write_back(state)
    elif collect_matches and not need_enumeration:
        if full_walk_ran:
            # Each completed full-walk token already is an exact match.
            outcome.matches = full_walk_result.completed_mappings
        else:
            outcome.matches = list(enumerate_matches(prototype, state))
        outcome.match_mappings = len(outcome.matches)
    elif need_enumeration:
        matches = list(enumerate_matches(prototype, state))
        reduced = state_from_matches(state, prototype, matches)
        state.candidates = reduced.candidates
        state.active_edges = reduced.active_edges
        outcome.match_mappings = len(matches)
        if collect_matches:
            outcome.matches = matches
    elif full_walk_ran:
        outcome.match_mappings = full_walk_completions
    elif count_matches:
        outcome.match_mappings = count_match_mappings(prototype, state)

    outcome.exact = constraints_exact or need_enumeration
    if outcome.match_mappings is not None and (count_matches or collect_matches):
        outcome.distinct_matches = distinct_match_count(
            prototype, outcome.match_mappings
        )

    outcome.solution_vertices = set(state.candidates)
    outcome.solution_edges = set(state.active_edge_list())
