"""Search routine for a single prototype (Alg. 2).

``search_prototype`` drives one prototype to its exact solution subgraph:

1. local constraint checking to a fixed point;
2. each non-local constraint in the configured order, re-running LCC after
   any constraint that eliminated something (Alg. 2 lines #7–9);
3. exactness: either the constraint set ends with the full-walk TDS check
   (which reduces the state to exactly the solution subgraph and counts
   match mappings as a by-product), the prototype is a distinct-labeled
   tree (LCC fixed point is provably exact), or — when the caller disabled
   the full walk — an enumeration-based verification pass.
"""

from __future__ import annotations

import time
from typing import Optional

from ..runtime.engine import Engine
from .constraints import FULL_WALK_KIND, ConstraintSet
from .enumeration import (
    count_match_mappings,
    distinct_match_count,
    enumerate_matches,
    state_from_matches,
)
from .kernels import compile_role_kernel
from .lcc import local_constraint_checking
from .nlcc import non_local_constraint_checking
from .prototypes import Prototype
from .results import PrototypeSearchOutcome
from .state import NlccCache, SearchState


def search_prototype(
    state: SearchState,
    prototype: Prototype,
    constraint_set: ConstraintSet,
    engine: Engine,
    cache: Optional[NlccCache] = None,
    recycle: bool = True,
    count_matches: bool = False,
    collect_matches: bool = False,
    verification: str = "auto",
    role_kernel: bool = True,
    delta_lcc: bool = True,
    array_state: bool = False,
) -> PrototypeSearchOutcome:
    """Reduce ``state`` to the prototype's solution subgraph, in place.

    ``verification``:

    * ``"auto"`` — trust the constraint set when it guarantees exactness
      (full walk included, or distinct-labeled tree); otherwise fall back
      to enumeration;
    * ``"enumeration"`` — always verify by enumeration;
    * ``"constraints"`` — never enumerate; the outcome's ``exact`` flag
      reports whether the constraint set alone guarantees exactness.

    ``role_kernel`` compiles the prototype once into bitmask tables shared
    by every LCC re-run and NLCC traversal of this search; ``delta_lcc``
    enables the semi-naive LCC worklist and ``array_state`` the vectorized
    CSR fixpoint.  All preserve results exactly.
    """
    outcome = PrototypeSearchOutcome(prototype)
    started = time.perf_counter()
    tracer = engine.tracer

    with tracer.span(
        "prototype",
        proto=prototype.id,
        label=prototype.name,
        distance=prototype.distance,
    ) as span:
        _search_prototype_body(
            state, prototype, constraint_set, engine, cache, recycle,
            count_matches, collect_matches, verification, role_kernel,
            delta_lcc, array_state, outcome,
        )
    if tracer.enabled:
        span.add(
            lcc_iterations=outcome.lcc_iterations,
            nlcc_constraints=outcome.nlcc_constraints_checked,
            nlcc_eliminated=outcome.nlcc_roles_eliminated,
            nlcc_recycled=outcome.nlcc_recycled,
            solution_vertices=len(outcome.solution_vertices),
            solution_edges=len(outcome.solution_edges),
        )
    outcome.wall_seconds = time.perf_counter() - started
    return outcome


def _search_prototype_body(
    state: SearchState,
    prototype: Prototype,
    constraint_set: ConstraintSet,
    engine: Engine,
    cache: Optional[NlccCache],
    recycle: bool,
    count_matches: bool,
    collect_matches: bool,
    verification: str,
    role_kernel: bool,
    delta_lcc: bool,
    array_state: bool,
    outcome: PrototypeSearchOutcome,
) -> None:
    """Alg. 2 body; fills ``outcome`` (timing is the caller's job)."""
    kernel = compile_role_kernel(prototype.graph) if role_kernel else None
    outcome.lcc_iterations = local_constraint_checking(
        state, prototype.graph, engine,
        role_kernel=role_kernel, delta=delta_lcc, kernel=kernel,
        array_state=array_state,
    )
    (
        outcome.post_lcc_vertices,
        outcome.post_lcc_edges,
    ) = state.active_counts()

    full_walk_ran = False
    full_walk_completions = 0
    full_walk_matches = None
    for constraint in constraint_set.non_local:
        if not state.num_active_vertices:
            break
        result = non_local_constraint_checking(
            state, constraint, engine, cache=cache, recycle=recycle,
            kernel=kernel,
        )
        outcome.nlcc_constraints_checked += 1
        outcome.nlcc_roles_eliminated += result.eliminated_roles
        outcome.nlcc_recycled += len(result.recycled)
        if constraint.kind == FULL_WALK_KIND:
            full_walk_ran = True
            full_walk_completions = result.completions
            full_walk_matches = result.completed_mappings
        elif result.changed:
            outcome.lcc_iterations += local_constraint_checking(
                state, prototype.graph, engine,
                role_kernel=role_kernel, delta=delta_lcc, kernel=kernel,
                array_state=array_state,
            )

    constraints_exact = full_walk_ran or constraint_set.exact_without_full_walk
    need_enumeration = verification == "enumeration" or (
        verification == "auto" and not constraints_exact
    )
    if collect_matches and not need_enumeration:
        if full_walk_ran:
            # Each completed full-walk token already is an exact match.
            outcome.matches = full_walk_matches
        else:
            outcome.matches = list(enumerate_matches(prototype, state))
        outcome.match_mappings = len(outcome.matches)
    elif need_enumeration:
        matches = list(enumerate_matches(prototype, state))
        reduced = state_from_matches(state, prototype, matches)
        state.candidates = reduced.candidates
        state.active_edges = reduced.active_edges
        outcome.match_mappings = len(matches)
        if collect_matches:
            outcome.matches = matches
    elif full_walk_ran:
        outcome.match_mappings = full_walk_completions
    elif count_matches:
        outcome.match_mappings = count_match_mappings(prototype, state)

    outcome.exact = constraints_exact or need_enumeration
    if outcome.match_mappings is not None and (count_matches or collect_matches):
        outcome.distinct_matches = distinct_match_count(
            prototype, outcome.match_mappings
        )

    outcome.solution_vertices = set(state.candidates)
    outcome.solution_edges = set(state.active_edge_list())
