"""Constraint generation: the template as a set of checks (§3, Fig. 2).

A template prescribes, for every vertex and edge of a match:

* **Local constraints** — a matched vertex must have active neighbors whose
  labels cover the adjacency structure of its template vertex.  These drive
  :mod:`~repro.core.lcc`.
* **Non-local constraints** — directed *closed walks* in the template that
  a matched vertex must be able to reproduce in the background graph with
  consistent vertex identities.  Three kinds, as in Fig. 2:

  - ``CC`` cycle constraints: one walk around each simple cycle, generated
    rooted at every cycle vertex so each role is checked directly;
  - ``PC`` path constraints: for each pair of same-labeled template
    vertices, walk to the twin and back — verifies a *distinct* twin exists;
  - ``TDS`` template-driven search constraints: walks combining cycles that
    share edges (required for non-edge-monocyclic templates), and, as the
    final aggregate check, a *full walk* that covers every template edge —
    a token completing the full walk with all identity checks satisfied
    has, by construction, traced an exact match, which is what makes the
    pipeline's 100% precision guarantee unconditional.

Constraints carry a structural identity ``key`` — equal keys mean "the same
check" even when generated from different prototypes, enabling the
cross-prototype work recycling of Obs. 2 (Fig. 3(b)).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..errors import ConstraintError
from ..graph.algorithms import shortest_path, simple_cycles_upto
from ..graph.graph import Graph, canonical_edge

LOCAL_KIND = "local"
CYCLE_KIND = "cycle"
PATH_KIND = "path"
TDS_KIND = "tds"
FULL_WALK_KIND = "tds_full"


class LocalConstraint:
    """Adjacency requirement of one template vertex."""

    __slots__ = ("vertex", "label", "neighbor_labels")

    def __init__(self, vertex: int, label: int, neighbor_labels: Tuple[int, ...]) -> None:
        self.vertex = vertex
        self.label = label
        #: sorted multiset of labels required among the vertex's neighbors
        self.neighbor_labels = neighbor_labels

    def __repr__(self) -> str:
        return (
            f"LocalConstraint(vertex={self.vertex}, label={self.label}, "
            f"neighbors={self.neighbor_labels})"
        )


class NonLocalConstraint:
    """A closed identity-checked walk in the template.

    ``walk`` is a tuple of template vertices with ``walk[0] == walk[-1]``.
    A token reproducing the walk in the background graph must map equal
    template vertices to equal graph vertices and distinct template
    vertices to distinct graph vertices (checked incrementally hop by hop).
    """

    __slots__ = ("kind", "walk", "labels", "key", "proto_graph")

    def __init__(
        self,
        kind: str,
        walk: Sequence[int],
        labels: Sequence[int],
        proto_graph: "Graph | None" = None,
    ) -> None:
        if len(walk) < 3:
            raise ConstraintError("a closed walk needs at least three entries")
        if walk[0] != walk[-1]:
            raise ConstraintError("non-local constraint walks must be closed")
        self.kind = kind
        self.walk = tuple(walk)
        self.labels = tuple(labels)
        #: source prototype graph; consulted by NLCC for edge labels
        self.proto_graph = proto_graph
        key_edge_labels = ()
        if proto_graph is not None and proto_graph.has_edge_labels:
            # -1 encodes "no edge label" so keys stay totally orderable.
            key_edge_labels = tuple(
                -1
                if proto_graph.edge_label(walk[h - 1], walk[h]) is None
                else proto_graph.edge_label(walk[h - 1], walk[h])
                for h in range(1, len(walk))
            )
        self.key = (kind, self.labels, _identity_pattern(self.walk), key_edge_labels)

    @property
    def length(self) -> int:
        """Number of hops a token takes."""
        return len(self.walk) - 1

    @property
    def source(self) -> int:
        """Template vertex whose candidates initiate tokens."""
        return self.walk[0]

    def __repr__(self) -> str:
        return f"NonLocalConstraint({self.kind}, walk={self.walk})"


def _identity_pattern(walk: Sequence[int]) -> Tuple[int, ...]:
    """First-occurrence pattern of the walk (identity structure).

    ``(a, b, c, a)`` and ``(x, y, z, x)`` produce the same pattern
    ``(0, 1, 2, 0)`` — the check they describe is identical whenever the
    label sequences also agree.
    """
    first: Dict[int, int] = {}
    pattern = []
    for vertex in walk:
        if vertex not in first:
            first[vertex] = len(first)
        pattern.append(first[vertex])
    return tuple(pattern)


# ----------------------------------------------------------------------
# Local constraints
# ----------------------------------------------------------------------
def local_constraints(proto_graph: Graph) -> List[LocalConstraint]:
    """One :class:`LocalConstraint` per template vertex of a prototype."""
    constraints = []
    for vertex in sorted(proto_graph.vertices()):
        neighbor_labels = tuple(
            sorted(proto_graph.label(u) for u in proto_graph.neighbors(vertex))
        )
        constraints.append(
            LocalConstraint(vertex, proto_graph.label(vertex), neighbor_labels)
        )
    return constraints


# ----------------------------------------------------------------------
# Non-local constraints
# ----------------------------------------------------------------------
def cycle_constraints(proto_graph: Graph) -> List[NonLocalConstraint]:
    """CC constraints: each simple cycle, rooted at every cycle vertex."""
    constraints = []
    for cycle in simple_cycles_upto(proto_graph, proto_graph.num_vertices):
        n = len(cycle)
        for offset in range(n):
            walk = [cycle[(offset + i) % n] for i in range(n)]
            walk.append(walk[0])
            labels = [proto_graph.label(w) for w in walk]
            constraints.append(
                NonLocalConstraint(CYCLE_KIND, walk, labels, proto_graph)
            )
    return constraints


def path_constraints(proto_graph: Graph) -> List[NonLocalConstraint]:
    """PC constraints: walk to a same-labeled twin and back, per endpoint.

    Needed when the template repeats labels: a vertex must prove a twin
    *distinct from itself* sits at the prescribed distance (Fig. 2 bottom).
    """
    constraints = []
    by_label: Dict[int, List[int]] = {}
    for vertex in sorted(proto_graph.vertices()):
        by_label.setdefault(proto_graph.label(vertex), []).append(vertex)
    for vertices in by_label.values():
        for i, u in enumerate(vertices):
            for w in vertices[i + 1 :]:
                path = shortest_path(proto_graph, u, w)
                if path is None:  # pragma: no cover - prototypes are connected
                    continue
                for rooted in (path, path[::-1]):  # root at u and at w
                    there_and_back = rooted + rooted[-2::-1]
                    labels = [proto_graph.label(x) for x in there_and_back]
                    constraints.append(
                        NonLocalConstraint(
                            PATH_KIND, there_and_back, labels, proto_graph
                        )
                    )
    return constraints


def tds_constraints(proto_graph: Graph) -> List[NonLocalConstraint]:
    """TDS constraints from pairs of simple cycles sharing an edge (Fig. 2).

    The combined walk goes around the first cycle and then the second,
    starting from a shared vertex; identity checks tie the shared edge to
    the *same* background vertices in both cycles.
    """
    cycles = simple_cycles_upto(proto_graph, proto_graph.num_vertices)
    constraints = []
    for i, first in enumerate(cycles):
        first_edges = _cycle_edges(first)
        for second in cycles[i + 1 :]:
            shared = first_edges & _cycle_edges(second)
            if not shared:
                continue
            u, _v = next(iter(sorted(shared)))
            walk = _rotate_closed(first, u) + _rotate_closed(second, u)[1:]
            labels = [proto_graph.label(x) for x in walk]
            constraints.append(
                NonLocalConstraint(TDS_KIND, walk, labels, proto_graph)
            )
    return constraints


def full_walk_constraint(
    proto_graph: Graph, root: Optional[int] = None
) -> NonLocalConstraint:
    """The aggregate TDS constraint: a closed walk covering every edge.

    Built by a DFS from ``root`` that walks down to each child and back,
    adding an out-and-back detour for every non-tree edge, so each template
    edge appears as at least one consecutive pair of the walk.  A completed
    token is therefore a full exact match containing its initiator.
    """
    if proto_graph.num_vertices == 0:
        raise ConstraintError("cannot build a walk on an empty graph")
    if root is None:
        root = min(proto_graph.vertices())
    walk: List[int] = [root]
    visited: Set[int] = {root}
    covered: Set[Tuple[int, int]] = set()

    def dfs(vertex: int) -> None:
        for nbr in sorted(proto_graph.neighbors(vertex)):
            edge = canonical_edge(vertex, nbr)
            if nbr not in visited:
                visited.add(nbr)
                covered.add(edge)
                walk.append(nbr)
                dfs(nbr)
                walk.append(vertex)
            elif edge not in covered:
                covered.add(edge)
                walk.append(nbr)
                walk.append(vertex)

    dfs(root)
    if len(walk) == 1:  # single-vertex template: trivially closed walk
        walk.append(root)
    labels = [proto_graph.label(x) for x in walk]
    return NonLocalConstraint(FULL_WALK_KIND, walk, labels, proto_graph)


def _cycle_edges(cycle: Sequence[int]) -> Set[Tuple[int, int]]:
    n = len(cycle)
    return {canonical_edge(cycle[i], cycle[(i + 1) % n]) for i in range(n)}


def _rotate_closed(cycle: Sequence[int], start: int) -> List[int]:
    """Cycle as a closed walk starting and ending at ``start``."""
    idx = list(cycle).index(start)
    n = len(cycle)
    walk = [cycle[(idx + i) % n] for i in range(n)]
    walk.append(start)
    return walk


def is_edge_monocyclic(proto_graph: Graph) -> bool:
    """True if every edge belongs to at most one simple cycle.

    Edge-monocyclic templates with distinct labels do not require TDS
    constraints (Fig. 2's caption); everything else gets the full walk.
    """
    seen: Dict[Tuple[int, int], int] = {}
    for cycle in simple_cycles_upto(proto_graph, proto_graph.num_vertices):
        for edge in _cycle_edges(cycle):
            seen[edge] = seen.get(edge, 0) + 1
            if seen[edge] > 1:
                return False
    return True


def has_duplicate_labels(proto_graph: Graph) -> bool:
    counts = proto_graph.label_counts()
    return any(count > 1 for count in counts.values())


def is_tree(proto_graph: Graph) -> bool:
    return proto_graph.num_edges == proto_graph.num_vertices - 1


class ConstraintSet:
    """All constraints of one prototype, in checking order."""

    def __init__(
        self,
        local: List[LocalConstraint],
        non_local: List[NonLocalConstraint],
        exact_without_full_walk: bool,
    ) -> None:
        self.local = local
        self.non_local = non_local
        #: True when LCC (+ the cheap non-local checks) provably leaves
        #: exactly the solution subgraph, so no full walk was appended.
        self.exact_without_full_walk = exact_without_full_walk

    def full_walk(self) -> Optional[NonLocalConstraint]:
        for constraint in self.non_local:
            if constraint.kind == FULL_WALK_KIND:
                return constraint
        return None

    def __repr__(self) -> str:
        kinds = [c.kind for c in self.non_local]
        return f"ConstraintSet(local={len(self.local)}, non_local={kinds})"


def generate_constraints(
    proto_graph: Graph,
    label_frequencies: Optional[Dict[int, int]] = None,
    include_full_walk: str = "auto",
) -> ConstraintSet:
    """The constraint set guaranteeing exactness for one prototype.

    ``include_full_walk``:

    * ``"auto"`` — append the full walk unless the prototype is a tree with
      all-distinct labels (where iterated local checking is provably exact);
    * ``True`` / ``False`` — force or suppress it (``False`` gives the
      paper's cheap-constraints-only mode; combine with enumeration-based
      verification for exactness).
    """
    local = local_constraints(proto_graph)
    non_local: List[NonLocalConstraint] = []
    non_local.extend(cycle_constraints(proto_graph))
    if has_duplicate_labels(proto_graph):
        non_local.extend(path_constraints(proto_graph))
    if not is_edge_monocyclic(proto_graph):
        non_local.extend(tds_constraints(proto_graph))

    provably_exact = is_tree(proto_graph) and not has_duplicate_labels(proto_graph)
    want_full = (
        include_full_walk is True
        or (include_full_walk == "auto" and not provably_exact)
    )
    if want_full:
        root = _rarest_label_vertex(proto_graph, label_frequencies)
        non_local.append(full_walk_constraint(proto_graph, root=root))
    return ConstraintSet(local, non_local, exact_without_full_walk=provably_exact)


def _rarest_label_vertex(
    proto_graph: Graph, label_frequencies: Optional[Dict[int, int]]
) -> int:
    """Root choice heuristic: start walks at the rarest-label vertex (§5.4)."""
    if not label_frequencies:
        return min(proto_graph.vertices())
    return min(
        proto_graph.vertices(),
        key=lambda v: (label_frequencies.get(proto_graph.label(v), 0), v),
    )
