"""The approximate matching pipeline (Alg. 1).

Bottom-up edit-distance sweep: generate prototypes, build the maximum
candidate set, then search each level — starting from the furthest
edit-distance — inside the union of the previous level's solution
subgraphs (the containment rule), recycling non-local constraint results
across prototypes, and producing the per-vertex approximate match vectors.

Every optimization of §4/§5.4 is a :class:`PipelineOptions` knob, so the
ablation benchmarks (naïve / X / Y / Z scenarios of Fig. 8) are plain
option combinations of the same code path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..runtime.parallel import PrototypeSearchPool
    from .arraystate import ArraySearchState

from ..errors import PipelineError
from ..graph.graph import Graph
from ..runtime.engine import Engine
from ..runtime.messages import CostModel, MessageStats
from ..runtime.metrics import ConstraintCostModel, MetricsRegistry
from ..runtime.partition import PartitionedGraph, balanced_assignment, hash_assignment
from ..runtime.trace import NULL_TRACER
from .constraints import generate_constraints
from .enumeration import (
    distinct_match_count,
    extend_from_child_matches,
    state_from_matches,
)
from .candidate_set import CandidateSetMemo, max_candidate_set
from .ordering import (
    estimate_prototype_cost,
    order_constraints,
    parallel_makespan,
    schedule_prototypes,
)
from .prototypes import Prototype, PrototypeSet, generate_prototypes
from .results import LevelReport, PipelineResult, PrototypeSearchOutcome
from .search import search_prototype
from .state import NlccCache, SearchState
from .template import PatternTemplate


@dataclass
class PipelineOptions:
    """Configuration of one pipeline run.

    Defaults correspond to the paper's fully optimized system (scenario Y
    of Fig. 8 — bottom-up with search-space reduction and work recycling);
    set ``load_balance``/``reload_ranks``/``parallel_deployments`` for
    scenario Z, or disable groups of options for the ablations and the
    naïve baseline (see :func:`repro.core.naive.naive_options`).
    """

    #: simulated MPI ranks of the primary deployment
    num_ranks: int = 4
    #: ranks sharing a physical node (locality experiments, Fig. 12)
    ranks_per_node: int = 1
    #: degree threshold for delegate (hub) partitioning; None disables
    delegate_degree_threshold: Optional[int] = None
    #: initial vertex-to-rank assignment: "hash" (HavoqGT default) or
    #: "block" (contiguous ids — skew-prone, the no-load-balancing strawman)
    partition_strategy: str = "hash"
    #: visitors processed per rank before the scheduler rotates
    batch_size: int = 64
    #: search-space reduction: compute M* before any search (§3.1)
    use_max_candidate_set: bool = True
    #: bitmask role kernels for the LCC/NLCC hot paths (results identical)
    role_kernel: bool = True
    #: semi-naive (delta/worklist) LCC fixpoint — fewer visitors/messages,
    #: same fixed point; only effective together with ``role_kernel``
    delta_lcc: bool = True
    #: vectorized CSR/bit-vector fixpoint state (core/arraystate) for the
    #: LCC and M* hot loops — same fixed points, batched visitor payloads;
    #: only effective together with ``role_kernel``
    array_state: bool = True
    #: batched array token frontiers for NLCC (core/arraystate walk), plus
    #: level-persistent array search state in the in-process pipeline —
    #: identical results, token storms collapsed by the dedup fold; only
    #: effective together with ``role_kernel`` and ``array_state``, and
    #: falls back losslessly to the dict token walk otherwise
    array_nlcc: bool = True
    #: search-space reduction: containment rule across levels (Obs. 1)
    use_containment: bool = True
    #: redundant work elimination: recycle NLCC results (Obs. 2)
    work_recycling: bool = True
    #: NLCC constraint ordering: True (rare-labels-first heuristic, §5.4),
    #: False (kind/length order only), or "walk-cost" (the [65]-style
    #: statistics-driven pruning-efficiency order)
    constraint_ordering: object = True
    #: append the exactness-guaranteeing full-walk TDS check ("auto"/True/False)
    include_full_walk: object = "auto"
    #: "auto" | "enumeration" | "constraints" (see search_prototype)
    verification: str = "auto"
    #: count match mappings / distinct matches per prototype
    count_matches: bool = False
    #: keep the enumerated match mappings in each outcome
    collect_matches: bool = False
    #: derive matches of level-δ prototypes from level-δ+1 matches (§4)
    enumeration_optimization: bool = False
    #: "none" or "reshuffle" (Fig. 9(a))
    load_balance: str = "none"
    #: reload the pruned graph on this many ranks (§5.4 deployment table)
    reload_ranks: Optional[int] = None
    #: number of replica deployments searching prototypes in parallel
    parallel_deployments: int = 1
    #: LPT prototype scheduling across replicas (Fig. 9(b) middle)
    prototype_ordering: bool = True
    #: cost estimates used for scheduling: "estimate" or "measured"
    prototype_cost_source: str = "estimate"
    cost_model: CostModel = field(default_factory=CostModel)
    #: guard against prototype explosion
    max_prototypes: Optional[int] = 200_000
    #: OS worker processes that actually execute prototype searches in
    #: parallel (1 = in-process).  Orthogonal to `parallel_deployments`,
    #: which models replica deployments in the simulated cost.
    worker_processes: int = 1
    #: pooled runs share one graph CSR via a shared-memory segment and
    #: ship scopes as packed bitmaps (when the array stack is eligible);
    #: False forces the legacy per-task dict payloads
    shm_pool: bool = True
    #: GraphMini-style auxiliary pruned graphs: when a level's solution
    #: union has pruned the scope far enough, pack the surviving
    #: adjacency into a compact ``GraphCsr.induced_view`` and run every
    #: remaining level on the view instead of ``G`` (in-process array
    #: sweep only; results are bit-identical, original vertex ids are
    #: preserved)
    aux_views: bool = False
    #: materialize a view only when the union keeps at most this fraction
    #: of the background graph's vertices (re-checked per level, so views
    #: nest as the sweep keeps pruning)
    aux_view_ratio: float = 0.6
    #: span tracer (:class:`repro.runtime.trace.Tracer`) threaded into
    #: every engine of the run; the default NULL_TRACER records nothing
    #: and costs one attribute check per guarded site.
    tracer: object = NULL_TRACER
    #: always-on metrics registry threaded into every engine of the run
    #: and merged with pooled workers' exported registries; snapshot
    #: surfaces as ``stats_document["metrics"]`` and ``repro metrics``
    metrics: object = field(default_factory=MetricsRegistry)
    #: metrics-driven adaptive execution: the dense/sparse round switch in
    #: the array LCC fixpoint and the measured-cost NLCC constraint
    #: re-sort — both preserve the match set exactly (see
    #: :func:`repro.core.search.search_prototype`)
    adaptive: bool = True
    #: EWMA store of measured per-constraint NLCC wall seconds, recycled
    #: across prototypes (and across a batch when the executor shares one
    #: options object); consulted only when ``adaptive`` is on
    constraint_costs: object = field(default_factory=ConstraintCostModel)

    def __post_init__(self) -> None:
        if self.parallel_deployments <= 0:
            raise PipelineError("parallel_deployments must be positive")
        if self.load_balance not in ("none", "reshuffle"):
            raise PipelineError(f"unknown load_balance mode {self.load_balance!r}")
        if self.verification not in ("auto", "enumeration", "constraints"):
            raise PipelineError(f"unknown verification mode {self.verification!r}")
        if self.prototype_cost_source not in ("estimate", "measured"):
            raise PipelineError(
                f"unknown prototype_cost_source {self.prototype_cost_source!r}"
            )
        if self.partition_strategy not in ("hash", "block"):
            raise PipelineError(
                f"unknown partition_strategy {self.partition_strategy!r}"
            )
        if self.constraint_ordering not in (True, False, "walk-cost"):
            raise PipelineError(
                f"unknown constraint_ordering {self.constraint_ordering!r}"
            )
        if self.worker_processes < 1:
            raise PipelineError("worker_processes must be at least 1")
        if not 0.0 < self.aux_view_ratio <= 1.0:
            raise PipelineError("aux_view_ratio must be in (0, 1]")
        if self.worker_processes > 1 and (
            self.collect_matches or self.enumeration_optimization
        ):
            raise PipelineError(
                "worker_processes > 1 does not support collect_matches / "
                "enumeration_optimization (match lists are not shipped "
                "across processes)"
            )


#: simulated seconds per active edge to checkpoint + reload a pruned graph
REBALANCE_COST_PER_EDGE = 2.0e-6


def run_pipeline(
    graph: Graph,
    template: PatternTemplate,
    k: int,
    options: Optional[PipelineOptions] = None,
    prototype_set: Optional[PrototypeSet] = None,
    candidate_memo: Optional["CandidateSetMemo"] = None,
) -> PipelineResult:
    """Find all matches within edit-distance ``k`` of ``template``.

    Returns a :class:`~repro.core.results.PipelineResult` with per-vertex
    match vectors, per-prototype exact solution subgraphs, per-level
    timing/size breakdowns and aggregated message statistics.

    When ``options.tracer`` is an enabled tracer, the whole run is
    recorded as one ``pipeline`` span containing per-level, per-prototype
    and per-phase child spans (see :mod:`repro.runtime.trace`).

    ``candidate_memo`` (batched runs; see :mod:`repro.core.batch`) shares
    the edit-distance-independent ``M*`` fixed point across pipelines over
    the same background graph — it must be scoped to one graph by the
    caller.
    """
    options = options or PipelineOptions()
    with options.tracer.span(
        "pipeline", template=template.name, k=k, mode="bottom-up"
    ):
        return _run_bottom_up(
            graph, template, k, options, prototype_set, candidate_memo
        )


def _run_bottom_up(
    graph: Graph,
    template: PatternTemplate,
    k: int,
    options: PipelineOptions,
    prototype_set: Optional[PrototypeSet],
    candidate_memo: Optional["CandidateSetMemo"] = None,
) -> PipelineResult:
    """Alg. 1 body; the caller owns the enclosing ``pipeline`` span."""
    from .kernels import kernel_cache_stats
    from .prototypes import prototype_cache_stats

    tracer = options.tracer
    wall_start = time.perf_counter()
    # Process-wide compile caches: this run's traffic is the delta against
    # the totals at entry, folded into the per-run registry at the end.
    kernel_cache_before = kernel_cache_stats()
    prototype_cache_before = prototype_cache_stats()
    protos = prototype_set or generate_prototypes(
        template, k, max_prototypes=options.max_prototypes
    )
    label_frequencies = graph.label_counts()

    walk_stats = None
    if options.constraint_ordering == "walk-cost":
        from .cost_estimation import GraphStatistics, order_constraints_by_cost

        walk_stats = GraphStatistics.from_graph(graph)
    constraint_sets = {}
    for proto in protos:
        constraint_set = generate_constraints(
            proto.graph, label_frequencies, options.include_full_walk
        )
        if walk_stats is not None:
            constraint_set.non_local = order_constraints_by_cost(
                constraint_set.non_local, walk_stats
            )
        else:
            constraint_set.non_local = order_constraints(
                constraint_set.non_local,
                label_frequencies,
                optimize=bool(options.constraint_ordering),
            )
        constraint_sets[proto.id] = constraint_set

    result = PipelineResult(template.name, k, protos)
    all_stats: List[MessageStats] = []
    cache = NlccCache() if options.work_recycling else None
    cost_model = options.cost_model

    # ------------------------------------------------------------- M*
    base_pgraph = PartitionedGraph(
        graph,
        options.num_ranks,
        assignment=_initial_assignment(graph, options.num_ranks, options),
        delegate_degree_threshold=options.delegate_degree_threshold,
        ranks_per_node=options.ranks_per_node,
    )
    mcs_stats = MessageStats(options.num_ranks)
    mcs_engine = Engine(
        base_pgraph, mcs_stats, options.batch_size, tracer=tracer,
        metrics=options.metrics,
    )
    if options.use_max_candidate_set:
        base_state = max_candidate_set(
            graph, template, mcs_engine,
            role_kernel=options.role_kernel, delta=options.delta_lcc,
            array_state=options.array_state,
            memo=candidate_memo,
            adaptive=options.adaptive,
        )
    else:
        base_state = SearchState.initial(graph, template)
    all_stats.append(mcs_stats)
    (
        result.candidate_set_vertices,
        result.candidate_set_edges,
    ) = base_state.active_counts()
    result.candidate_set_seconds = cost_model.makespan(mcs_stats)

    # ---------------------------------------------- search deployment
    # `reload_ranks` is Optional[int]; reload_ranks=0 must disable the
    # reload exactly like None instead of leaking a falsy int into the
    # flag or the rank arithmetic (repro-lint R1).
    reload_requested = (
        options.reload_ranks is not None and options.reload_ranks != 0
    )
    search_ranks = (
        options.reload_ranks if reload_requested else options.num_ranks
    )
    deployment_ranks = max(1, search_ranks // options.parallel_deployments)
    infrastructure = 0.0
    rebalancing = options.load_balance == "reshuffle" or reload_requested
    if rebalancing:
        pruned = base_state.to_graph()
        infrastructure += REBALANCE_COST_PER_EDGE * (
            2 * pruned.num_edges + pruned.num_vertices
        )
        assignment = _initial_assignment(graph, deployment_ranks, options)
        assignment.update(balanced_assignment(pruned, deployment_ranks))
        search_pgraph = PartitionedGraph(
            graph,
            deployment_ranks,
            assignment=assignment,
            delegate_degree_threshold=options.delegate_degree_threshold,
            ranks_per_node=options.ranks_per_node,
        )
    elif deployment_ranks == options.num_ranks:
        search_pgraph = base_pgraph
    else:
        search_pgraph = PartitionedGraph(
            graph,
            deployment_ranks,
            assignment=_initial_assignment(graph, deployment_ranks, options),
            delegate_degree_threshold=options.delegate_degree_threshold,
            ranks_per_node=options.ranks_per_node,
        )

    # ------------------------------------------------------ level sweep
    want_matches = options.count_matches or options.collect_matches
    # Per-child stored matches for the enumeration optimization: dense
    # ArrayMatchSet tables on the array path, per-match dict lists
    # otherwise (full-walk collections, dict-path searches).
    stored_matches: Dict[int, Any] = {}
    # The previous level's union lives in whichever form the level that
    # produced it used — dict (in-process / legacy pooled) or array
    # (shm-pooled).  Exactly one of the two is non-None after a level;
    # conversions happen lazily, at most once per level transition.
    union_prev: Optional[SearchState] = None
    union_aprev: Optional["ArraySearchState"] = None
    deepest = protos.max_distance

    # Level-persistent array mode: the scope state (M* / previous level's
    # union) is converted to array form once per level, each prototype's
    # starting scope is derived in array form (with a warm-seeded first
    # LCC round when it comes from the union), and the whole search runs
    # on that one array state.
    fallback_reason = array_fallback_reason(template, options)
    array_level = fallback_reason is None
    base_astate = None
    if array_level:
        from .arraystate import ArraySearchState

        template_roles = sorted(template.graph.vertices())
        base_astate = ArraySearchState.from_search_state(
            base_state, roles=template_roles
        )
    else:
        result.array_fallback_reason = fallback_reason
        if tracer.enabled:
            with tracer.span(
                "array_fallback", reason=fallback_reason
            ) as fb_span:
                fb_span.add(dict_path_levels=deepest + 1)

    pool = None
    if options.worker_processes > 1:
        from ..runtime.parallel import PrototypeSearchPool

        pool = PrototypeSearchPool(
            graph, template, protos.max_distance, options,
            options.worker_processes,
        )

    try:
        for distance in range(deepest, -1, -1):
            with tracer.span("level", distance=distance) as level_span:
                level_wall = time.perf_counter()
                level = LevelReport(distance)
                level_states: List[SearchState] = []
                next_stored: Dict[int, Any] = {}

                if pool is not None and len(protos.at(distance)) > 1:
                    if pool.array_payloads:
                        assert base_astate is not None
                        if union_aprev is None and union_prev is not None:
                            union_aprev = ArraySearchState.from_search_state(
                                union_prev, roles=template_roles
                            )
                        union_aprev = _pooled_level_array(
                            pool, protos, distance, deepest, base_astate,
                            union_aprev, options, level, result,
                        )
                        union_prev = None
                        union: "SearchState | ArraySearchState" = union_aprev
                    else:
                        if union_prev is None and union_aprev is not None:
                            union_prev = union_aprev.to_search_state()
                        union_prev = _pooled_level(
                            pool, protos, distance, deepest, base_state,
                            union_prev, options, level, result,
                        )
                        union_aprev = None
                        union = union_prev
                    _finish_level(
                        level, result, options, label_frequencies, union,
                        rebalancing, distance, level_wall, span=level_span,
                    )
                    stored_matches = {}
                    continue

                union_astate = None
                if array_level:
                    if union_aprev is not None:
                        union_astate = union_aprev
                    elif union_prev is not None:
                        # One conversion per level: every prototype scope below
                        # is derived from this array form without a dict round
                        # trip.
                        union_astate = ArraySearchState.from_search_state(
                            union_prev, roles=template_roles
                        )
                elif union_prev is None and union_aprev is not None:
                    union_prev = union_aprev.to_search_state()

                for proto in protos.at(distance):
                    extended = None
                    if options.enumeration_optimization and distance < deepest:
                        extended = _try_extension(proto, stored_matches, graph)
                    if extended is not None:
                        outcome, proto_state = extended
                        next_stored[proto.id] = (
                            outcome.match_set
                            if outcome.match_set is not None
                            else outcome.matches
                        )
                    else:
                        array_scope = warm_mask = None
                        if array_level:
                            # The dict state is only materialized by the
                            # search's final write_back.
                            proto_state = SearchState.empty(graph)
                            array_scope, warm_mask = _starting_astate(
                                proto, distance, deepest, base_astate,
                                union_astate, options,
                            )
                            if base_astate.csr.parent is not None:
                                result.aux_view_reuse += 1
                        else:
                            proto_state = _starting_state(
                                proto, distance, deepest, base_state, union_prev,
                                options,
                            )
                        stats = MessageStats(deployment_ranks)
                        engine = Engine(
                            search_pgraph, stats, options.batch_size,
                            tracer=tracer, metrics=options.metrics,
                        )
                        outcome = search_prototype(
                            proto_state,
                            proto,
                            constraint_sets[proto.id],
                            engine,
                            cache=cache,
                            recycle=options.work_recycling,
                            count_matches=options.count_matches,
                            collect_matches=(
                                options.collect_matches or options.enumeration_optimization
                            ),
                            verification=options.verification,
                            role_kernel=options.role_kernel,
                            delta_lcc=options.delta_lcc,
                            array_state=options.array_state,
                            array_nlcc=options.array_nlcc,
                            array_scope=array_scope,
                            warm_mask=warm_mask,
                            adaptive=options.adaptive,
                            constraint_costs=options.constraint_costs,
                        )
                        outcome.simulated_seconds = cost_model.makespan(stats)
                        outcome.messages = stats.total_messages
                        outcome.remote_messages = stats.total_remote_messages
                        all_stats.append(stats)
                        if outcome.matches is not None and options.enumeration_optimization:
                            next_stored[proto.id] = (
                                outcome.match_set
                                if outcome.match_set is not None
                                else outcome.matches
                            )
                    if not options.collect_matches:
                        outcome.matches = None
                    level.outcomes.append(outcome)
                    level_states.append(proto_state)
                    for vertex in outcome.solution_vertices:
                        result.match_vectors.setdefault(vertex, set()).add(proto.id)

                # Union of this level's solution subgraphs = next level's scope.
                union_dict = SearchState.empty(graph)
                for state in level_states:
                    union_dict.union_with(state)
                union_prev = union_dict
                union_aprev = None
                _finish_level(
                    level, result, options, label_frequencies, union_dict,
                    rebalancing, distance, level_wall, span=level_span,
                )
                stored_matches = next_stored

                # GraphMini-style auxiliary graph: once the union has
                # pruned far enough, pack the surviving adjacency into a
                # compact CSR sub-view and run the remaining levels on it.
                # Sound only when every remaining prototype starts from
                # the union (child-linked + containment on): the view is
                # vertex-induced, so Obs. 1's readmitted background edges
                # between surviving vertices are all present and the
                # restricted scopes are bit-identical to the full-graph
                # ones.  Views nest as later levels keep pruning.
                if (
                    options.aux_views
                    and array_level
                    and pool is None
                    and distance > 0
                    and options.use_containment
                    and not rebalancing
                    and level.union_vertices > 0
                    and level.union_vertices
                    <= options.aux_view_ratio * base_astate.csr.num_vertices
                    and all(
                        p.child_links
                        for d in range(distance)
                        for p in protos.at(d)
                    )
                ):
                    union_arr = ArraySearchState.from_search_state(
                        union_dict, roles=template_roles
                    )
                    view = base_astate.csr.induced_view(
                        union_arr.vertex_active
                    )
                    graph = view.graph
                    base_astate = base_astate.restrict_to_view(view)
                    union_aprev = union_arr.restrict_to_view(view)
                    union_prev = None
                    search_pgraph = PartitionedGraph(
                        graph,
                        deployment_ranks,
                        assignment=_initial_assignment(
                            graph, deployment_ranks, options
                        ),
                        delegate_degree_threshold=(
                            options.delegate_degree_threshold
                        ),
                        ranks_per_node=options.ranks_per_node,
                    )
                    result.aux_views_built += 1
                    result.aux_view_sizes.append(
                        (view.num_vertices, view.num_directed_edges // 2)
                    )
                    if tracer.enabled:
                        with tracer.span(
                            "aux_view", distance=distance
                        ) as view_span:
                            view_span.add(
                                vertices=view.num_vertices,
                                edges=view.num_directed_edges // 2,
                            )
    finally:
        if pool is not None:
            pool.close()

    # ------------------------------------------------------------ totals
    result.total_infrastructure_seconds = infrastructure + sum(
        level.infrastructure_seconds for level in result.levels
    )
    result.total_simulated_seconds = (
        result.candidate_set_seconds
        + sum(level.search_seconds for level in result.levels)
        + result.total_infrastructure_seconds
    )
    result.total_wall_seconds = time.perf_counter() - wall_start
    result.message_summary = merge_message_stats(all_stats)
    if cache is not None:
        constraints, entries = cache.size()
        result.nlcc_cache_stats = {
            "hits": cache.hits,
            "misses": cache.misses,
            "constraints": constraints,
            "entries": entries,
        }
    metrics = options.metrics
    for name, before, after in (
        ("cache.kernel", kernel_cache_before, kernel_cache_stats()),
        ("cache.prototype", prototype_cache_before, prototype_cache_stats()),
    ):
        for kind in ("hits", "misses"):
            delta = after[kind] - before[kind]
            if delta:
                metrics.counter(f"{name}.{kind}").inc(delta)
    result.metrics = metrics
    return result


def _initial_assignment(
    graph: Graph, num_ranks: int, options: PipelineOptions
) -> Dict[int, int]:
    """Initial vertex-to-rank map per the configured strategy."""
    if options.partition_strategy == "block":
        from ..runtime.partition import block_assignment

        return block_assignment(sorted(graph.vertices()), num_ranks)
    return hash_assignment(graph.vertices(), num_ranks)


def _finish_level(
    level: LevelReport,
    result: PipelineResult,
    options: PipelineOptions,
    label_frequencies: Dict[int, int],
    union: "SearchState | ArraySearchState",
    rebalancing: bool,
    distance: int,
    level_wall: float,
    span: Any = None,
) -> None:
    """Shared level epilogue: scheduling time, union sizes, bookkeeping.

    ``span`` is the level's trace span (or a null span); the computed
    union/post-LCC sizes double as its counters.
    """
    costs = [o.simulated_seconds for o in level.outcomes]
    if options.parallel_deployments > 1 and len(costs) > 1:
        if options.prototype_cost_source == "measured":
            schedule_costs = costs
        else:
            schedule_costs = [
                estimate_prototype_cost(o.prototype, label_frequencies)
                for o in level.outcomes
            ]
        batches = schedule_prototypes(
            schedule_costs,
            options.parallel_deployments,
            optimize=options.prototype_ordering,
        )
        level.search_seconds = parallel_makespan(costs, batches)
    else:
        level.search_seconds = sum(costs)
    # One O(E) pass for the union sizes, shared by the report fields and
    # the rebalancing cost below (num_active_edges itself is O(E)).
    union_vertices, union_edges = union.active_counts()
    level.union_vertices = union_vertices
    level.union_edges = union_edges
    level.post_lcc_vertices = sum(o.post_lcc_vertices for o in level.outcomes)
    level.post_lcc_edges = sum(o.post_lcc_edges for o in level.outcomes)
    if span is not None:
        span.add(
            prototypes=len(level.outcomes),
            union_vertices=union_vertices,
            union_edges=union_edges,
            post_lcc_vertices=level.post_lcc_vertices,
            post_lcc_edges=level.post_lcc_edges,
        )
    if rebalancing and distance > 0:
        level.infrastructure_seconds = REBALANCE_COST_PER_EDGE * (
            2 * union_edges + union_vertices
        )
    level.wall_seconds = time.perf_counter() - level_wall
    result.levels.append(level)


def _pooled_level(
    pool: "PrototypeSearchPool",
    protos: PrototypeSet,
    distance: int,
    deepest: int,
    base_state: SearchState,
    union_prev: Optional[SearchState],
    options: PipelineOptions,
    level: LevelReport,
    result: PipelineResult,
) -> SearchState:
    """Execute one level's searches on the pool (legacy dict payloads)."""
    from ..runtime.parallel import dict_task, payload_to_outcome

    tasks = []
    for proto in protos.at(distance):
        scoped = _starting_state(
            proto, distance, deepest, base_state, union_prev, options
        )
        tasks.append(dict_task(proto.id, scoped))
    union = SearchState.empty(base_state.graph)
    tracer = options.tracer
    for payload in pool.search_level(tasks):
        proto = protos.by_id(payload["proto_id"])
        outcome = payload_to_outcome(
            proto, payload, tracer=tracer, metrics=options.metrics
        )
        level.outcomes.append(outcome)
        for vertex in outcome.solution_vertices:
            result.match_vectors.setdefault(vertex, set()).add(proto.id)
        # Rebuild the union scope from the exact solution subgraph.
        for vertex in outcome.solution_vertices:
            union.candidates.setdefault(vertex, set())
            union.active_edges.setdefault(vertex, set())
        for u, v in outcome.solution_edges:
            union.active_edges.setdefault(u, set()).add(v)
            union.active_edges.setdefault(v, set()).add(u)
    return union


def _pooled_level_array(
    pool: "PrototypeSearchPool",
    protos: PrototypeSet,
    distance: int,
    deepest: int,
    base_astate: "ArraySearchState",
    union_aprev: Optional["ArraySearchState"],
    options: PipelineOptions,
    level: LevelReport,
    result: PipelineResult,
) -> "ArraySearchState":
    """Execute one level's searches on the pool, arrays end to end.

    Scopes are cut by :func:`_starting_astate` and shipped as packed
    bitmaps over the pool's shared CSR — no dict ``SearchState`` is ever
    materialized on this path.  Workers return packed solution bitmaps
    that are OR-ed into an array-form union whose role masks stay zero,
    exactly like the dict pooled union's empty candidate role sets.
    """
    from ..runtime.parallel import array_task, payload_to_outcome
    from .arraystate import ArraySearchState, unpack_bits

    tasks = []
    for proto in protos.at(distance):
        scoped, warm_mask = _starting_astate(
            proto, distance, deepest, base_astate, union_aprev, options
        )
        tasks.append(array_task(proto.id, scoped, warm_mask))
    csr = base_astate.csr
    union = ArraySearchState.empty(base_astate.graph)
    tracer = options.tracer
    for payload in pool.search_level(tasks):
        proto = protos.by_id(payload["proto_id"])
        outcome = payload_to_outcome(
            proto, payload, tracer=tracer, metrics=options.metrics
        )
        level.outcomes.append(outcome)
        for vertex in outcome.solution_vertices:
            result.match_vectors.setdefault(vertex, set()).add(proto.id)
        vertex_bits, edge_bits = payload["solution_bits"]
        union.vertex_active |= unpack_bits(vertex_bits, csr.num_vertices)
        union.edge_alive |= unpack_bits(edge_bits, csr.num_directed_edges)
    return union


def array_fallback_reason(
    template: PatternTemplate, options: PipelineOptions
) -> Optional[str]:
    """Why this run cannot keep level state in array form, or ``None``.

    Only the explicit option switches remain: the array path is total —
    multi-word role masks cover any template width, naive mode starts
    from ``ArraySearchState.initial``, and the enumeration optimization
    chains dense :class:`~repro.core.enumeration.ArrayMatchSet` tables —
    so a run leaves array form only when the caller turned a stage of the
    array stack off (role kernel + array LCC + array NLCC).  Batched runs
    surface the returned string per class member so a library compile can
    report exactly which templates lost the fast path.
    """
    if not options.role_kernel:
        return "role_kernel disabled"
    if not options.array_state:
        return "array_state disabled"
    if not options.array_nlcc:
        return "array_nlcc disabled"
    return None


def _array_level_eligible(template: PatternTemplate, options: PipelineOptions) -> bool:
    """Whether the in-process sweep can keep search state in array form."""
    return array_fallback_reason(template, options) is None


def _starting_astate(
    proto: Prototype,
    distance: int,
    deepest: int,
    base_astate: "ArraySearchState",
    union_astate: Optional["ArraySearchState"],
    options: PipelineOptions,
) -> Tuple["ArraySearchState", Optional[Any]]:
    """Array-form scope for one prototype search, per the containment rule.

    Returns ``(scope, warm_mask)``.  When the scope derives from the
    previous level's union, ``warm_mask`` flags the vertices whose state
    actually differs from that union (activity changes plus endpoints of
    aliveness changes) — the surviving worklist that seeds the first LCC
    round's broadcast accounting instead of a cold full broadcast.  Scopes
    cut fresh from M* keep the cold broadcast (``warm_mask=None``), like
    the dict pipeline.
    """
    import numpy as np

    from .arraystate import ArraySearchState

    use_union = (
        options.use_containment
        and distance < deepest
        and union_astate is not None
        and proto.child_links
    )
    if not use_union:
        if not options.use_max_candidate_set:
            # Naive mode: a fresh, fully-unpruned array state per
            # prototype — the same full-adjacency start the dict path's
            # ``SearchState.initial`` pays, in array form.
            return (
                ArraySearchState.initial(base_astate.graph, proto.graph),
                None,
            )
        return base_astate.for_prototype_search(proto), None
    link = proto.child_links[0]
    a, b = link.removed_edge
    template_graph = proto.template.graph
    pair = (template_graph.label(a), template_graph.label(b))
    scoped = union_astate.for_prototype_search(proto, readmit_label_pairs=[pair])
    warm = scoped.vertex_active != union_astate.vertex_active
    csr = scoped.csr
    diff = np.nonzero(scoped.edge_alive != union_astate.edge_alive)[0]
    warm[csr.src[diff]] = True
    warm[csr.indices[diff]] = True
    return scoped, warm


def _starting_state(
    proto: Prototype,
    distance: int,
    deepest: int,
    base_state: SearchState,
    union_prev: Optional[SearchState],
    options: PipelineOptions,
) -> SearchState:
    """Scope for one prototype search, per the containment rule."""
    use_union = (
        options.use_containment
        and distance < deepest
        and union_prev is not None
        and proto.child_links
    )
    if not use_union:
        if not options.use_max_candidate_set:
            # Naive mode: a fresh, fully-unpruned state per prototype --
            # the per-prototype re-pruning cost the pipeline avoids.
            return SearchState.initial(base_state.graph, proto.graph)
        return base_state.for_prototype_search(proto)
    link = proto.child_links[0]
    a, b = link.removed_edge
    template_graph = proto.template.graph
    pair = (template_graph.label(a), template_graph.label(b))
    return union_prev.for_prototype_search(proto, readmit_label_pairs=[pair])


def _try_extension(
    proto: Prototype,
    stored_matches: Dict[int, Any],
    graph: Graph,
) -> Optional[Tuple[PrototypeSearchOutcome, SearchState]]:
    """Derive this prototype's result from a child's stored matches (§4).

    Children searched on the array path store dense
    :class:`~repro.core.enumeration.ArrayMatchSet` tables; those extend
    through the batched array probe and keep the chain in array form.
    Dict match lists (full-walk collections, dict-path searches) use the
    per-match probe.
    """
    from .enumeration import ArrayMatchSet, extend_from_child_matches_array

    for link in proto.child_links:
        stored = stored_matches.get(link.child.id)
        if stored is None:
            continue
        started = time.perf_counter()
        if isinstance(stored, ArrayMatchSet):
            match_set = extend_from_child_matches_array(
                proto, link.child, stored
            )
            matches = match_set.mappings()
        else:
            match_set = None
            matches = extend_from_child_matches(
                proto, link.child, stored, graph
            )
        outcome = PrototypeSearchOutcome(proto)
        outcome.matches = matches
        outcome.match_set = match_set
        outcome.match_mappings = len(matches)
        outcome.distinct_matches = distinct_match_count(proto, len(matches))
        state = state_from_matches(SearchState.empty(graph), proto, matches)
        outcome.solution_vertices = set(state.candidates)
        outcome.solution_edges = set(state.active_edge_list())
        outcome.exact = True
        outcome.wall_seconds = time.perf_counter() - started
        # Simulated cost: one edge probe per child match.
        outcome.simulated_seconds = 1.0e-7 * max(len(stored), 1)
        return outcome, state
    return None


def merge_message_stats(stats_list: List[MessageStats]) -> Dict[str, object]:
    """Aggregate message accounting across all engines of a run."""
    total = 0
    remote = 0
    visits = 0
    barriers = 0
    control = 0
    peak_interval_messages = 0
    phases: Dict[str, Dict[str, int]] = {}
    for stats in stats_list:
        total += stats.total_messages
        remote += stats.total_remote_messages
        visits += stats.total_visits
        barriers += stats.total_barriers
        control += stats.control_messages
        if stats.intervals:
            peak_interval_messages = max(
                peak_interval_messages,
                max(interval[1] for interval in stats.intervals),
            )
        for name, counters in stats.phases.items():
            bucket = phases.setdefault(
                name, {"messages": 0, "remote_messages": 0, "visits": 0}
            )
            bucket["messages"] += counters.messages
            bucket["remote_messages"] += counters.remote_messages
            bucket["visits"] += counters.visits
    return {
        "total_messages": total,
        "remote_messages": remote,
        "remote_fraction": remote / total if total else 0.0,
        "total_visits": visits,
        "barriers": barriers,
        "control_messages": control,
        "peak_interval_messages": peak_interval_messages,
        "phases": phases,
    }
