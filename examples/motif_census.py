#!/usr/bin/env python
"""Motif counting (§5.6): a 3- and 4-vertex motif census of a graph.

The paper maps motif counting onto the approximate-matching pipeline:
the maximal-edge motif (the s-clique, unlabeled) is the template, the
remaining motifs are its prototypes, and the pipeline counts matches for
all of them in one run.  This example runs the census on a scale-free
graph and cross-checks against the Arabesque-style embedding-expansion
baseline.

Run:  python examples/motif_census.py
"""

from repro import PipelineOptions
from repro.analysis import format_count, format_seconds, format_table
from repro.baselines import arabesque_count_motifs
from repro.core import count_motifs
from repro.graph.generators import gnm_graph
from repro.graph.isomorphism import canonical_form


def main() -> None:
    graph = gnm_graph(500, 1200, num_labels=1, seed=17)
    print(f"Graph: {graph.num_vertices} vertices, {graph.num_edges} edges "
          f"(unlabeled)")

    for size in (3, 4):
        counts = count_motifs(graph, size, PipelineOptions(num_ranks=4))
        reference = arabesque_count_motifs(graph, size, num_ranks=4)
        ref_by_form = dict(reference.counts)

        rows = []
        for proto in sorted(counts.prototypes, key=lambda p: -p.num_edges):
            form = canonical_form(proto.graph)
            rows.append([
                proto.name,
                proto.num_edges,
                format_count(counts.noninduced[proto.id]),
                format_count(counts.induced[proto.id]),
                format_count(ref_by_form.get(form, 0)),
            ])
        print(f"\n{size}-vertex motifs ({len(counts.prototypes)} kinds):")
        print(format_table(
            ["motif", "edges", "non-induced", "induced", "arabesque"], rows
        ))
        agreement = counts.total_induced() == reference.total_embeddings()
        print(f"Totals agree with the TLE baseline: {agreement}")
        print(f"HGT simulated time: "
              f"{format_seconds(counts.result.total_simulated_seconds)}; "
              f"Arabesque simulated time: "
              f"{format_seconds(reference.simulated_seconds)}")


if __name__ == "__main__":
    main()
